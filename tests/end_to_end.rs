//! End-to-end behavioral tests: rule effects on plan shape, EI-join
//! ablation, resource-guard behavior, optimization statistics.

use relgo::core::graph_plan::GraphOp;
use relgo::prelude::*;
use relgo::workloads::snb_queries::{self, SnbSchema};

fn session() -> (Session, SnbSchema) {
    Session::snb(0.05, 42).expect("session")
}

fn count_ops(op: &GraphOp, pred: &dyn Fn(&GraphOp) -> bool) -> usize {
    let own = pred(op) as usize;
    own + match op {
        GraphOp::ScanVertex { .. } | GraphOp::ScanEdge { .. } => 0,
        GraphOp::Expand { input, .. }
        | GraphOp::ExpandIntersect { input, .. }
        | GraphOp::FilterVertex { input, .. } => count_ops(input, pred),
        GraphOp::JoinSub { left, right, .. } => count_ops(left, pred) + count_ops(right, pred),
    }
}

#[test]
fn filter_into_match_moves_predicate_into_pattern() {
    let (session, schema) = session();
    let q = snb_queries::ic1(&schema, 2, 5).unwrap();
    let (with_rule, _) = session.optimize(&q, OptimizerMode::RelGo).unwrap();
    let (without_rule, _) = session.optimize(&q, OptimizerMode::RelGoNoRule).unwrap();
    assert!(with_rule.pattern.has_predicates());
    assert!(!without_rule.pattern.has_predicates());
    // Both still agree on results.
    let a = session.execute(&with_rule, OptimizerMode::RelGo).unwrap();
    let b = session
        .execute(&without_rule, OptimizerMode::RelGoNoRule)
        .unwrap();
    assert_eq!(a.sorted_rows(), b.sorted_rows());
}

#[test]
fn trim_and_fuse_produces_fused_expands() {
    let (session, schema) = session();
    let qr = snb_queries::qr_queries(&schema).unwrap();
    // QR3 projects only the endpoint name; every knows-edge is trimmable.
    let q = &qr[2].query;
    let (plan, _) = session.optimize(q, OptimizerMode::RelGo).unwrap();
    let g = plan.root.graph_plan().unwrap();
    let fused = count_ops(g, &|op| {
        matches!(
            op,
            GraphOp::Expand {
                emit_edge: false,
                ..
            }
        )
    });
    assert!(fused >= 1, "expected fused EXPANDs:\n{}", plan.explain());
    let (norule, _) = session.optimize(q, OptimizerMode::RelGoNoRule).unwrap();
    let g2 = norule.root.graph_plan().unwrap();
    let fused2 = count_ops(g2, &|op| {
        matches!(
            op,
            GraphOp::Expand {
                emit_edge: false,
                ..
            }
        )
    });
    assert_eq!(fused2, 0, "NoRule keeps EXPAND_EDGE+GET_VERTEX pairs");
}

#[test]
fn qc_triangle_uses_intersect_only_in_ei_modes() {
    let (session, schema) = session();
    let qc = snb_queries::qc_queries(&schema).unwrap();
    let q = &qc[0].query; // triangle
    let (relgo, _) = session.optimize(q, OptimizerMode::RelGo).unwrap();
    assert!(relgo.root.graph_plan().unwrap().uses_intersect());
    let (noei, _) = session.optimize(q, OptimizerMode::RelGoNoEI).unwrap();
    assert!(!noei.root.graph_plan().unwrap().uses_intersect());
    // Agnostic baselines never intersect.
    for mode in [
        OptimizerMode::DuckDbLike,
        OptimizerMode::GRainDb,
        OptimizerMode::UmbraLike,
    ] {
        let (p, _) = session.optimize(q, mode).unwrap();
        assert!(!p.root.graph_plan().unwrap().uses_intersect(), "{mode:?}");
    }
}

#[test]
fn row_limit_models_oom_for_noei_clique() {
    // A tiny row budget kills the NoEI 4-clique (hash-join intermediates
    // explode) while the EI plan — whose intermediates stay bounded by the
    // true result size — survives. This mirrors the paper's QC3 OOM.
    let (db, mapping) =
        relgo::datagen::generate_snb(&relgo::datagen::SnbParams { sf: 0.3, seed: 42 });
    let session = Session::open_with(
        db,
        mapping,
        SessionOptions {
            row_limit: 200_000,
            ..SessionOptions::default()
        },
    )
    .unwrap();
    let schema = SnbSchema::resolve(session.view().schema()).unwrap();
    let qc = snb_queries::qc_queries(&schema).unwrap();
    let clique = &qc[2].query;
    let relgo_run = session.run(clique, OptimizerMode::RelGo);
    let noei_run = session.run(clique, OptimizerMode::RelGoNoEI);
    assert!(relgo_run.is_ok(), "EI plan fits: {relgo_run:?}");
    match noei_run {
        Err(RelGoError::ResourceExhausted(_)) => {}
        other => {
            // On some seeds the NoEI plan may also fit; accept but require
            // it to be at least as expensive in intermediate volume — we
            // can't observe that directly, so only accept Ok.
            assert!(other.is_ok(), "unexpected failure kind: {other:?}");
        }
    }
}

#[test]
fn optimization_stats_populated() {
    let (session, schema) = session();
    let q = snb_queries::ic1(&schema, 2, 5).unwrap();
    let (_, relgo_stats) = session.optimize(&q, OptimizerMode::RelGo).unwrap();
    assert!(relgo_stats.elapsed.as_nanos() > 0);
    let (_, calcite_stats) = session.optimize(&q, OptimizerMode::CalciteLike).unwrap();
    assert!(calcite_stats.plans_visited > 0);
}

#[test]
fn calcite_like_explodes_on_long_paths() {
    let (session, schema) = session();
    // Optimization *time* comparison (Fig 4b's mechanism): plans visited by
    // the unmemoized enumerator grow explosively with path length.
    let short = snb_queries::ic1(&schema, 1, 5).unwrap();
    let long = snb_queries::ic1(&schema, 3, 5).unwrap();
    let (_, s1) = session
        .optimize(&short, OptimizerMode::CalciteLike)
        .unwrap();
    let (_, s3) = session.optimize(&long, OptimizerMode::CalciteLike).unwrap();
    assert!(
        s3.plans_visited > 4 * s1.plans_visited.max(1),
        "visited {} vs {}",
        s3.plans_visited,
        s1.plans_visited
    );
}

#[test]
fn explain_outputs_are_mode_specific() {
    let (session, schema) = session();
    let q = snb_queries::ic7(&schema, 5).unwrap();
    let relgo = session.explain(&q, OptimizerMode::RelGo).unwrap();
    let duck = session.explain(&q, OptimizerMode::DuckDbLike).unwrap();
    assert!(relgo.contains("SCAN_GRAPH_TABLE"));
    assert!(duck.contains("SCAN_GRAPH_TABLE"));
    assert_ne!(relgo, duck);
}

#[test]
fn distinct_edges_semantics_respected_end_to_end() {
    // A two-likes wedge under no-repeated-edge semantics: rows where both
    // pattern edges map to the same data edge are dropped.
    let (session, schema) = session();
    let mut pb = PatternBuilder::new();
    let p = pb.vertex("p", schema.person);
    let m = pb.vertex("m", schema.message);
    pb.edge(p, m, schema.likes).unwrap();
    pb.edge(p, m, schema.likes).unwrap();
    pb.semantics(MatchSemantics::DistinctEdges);
    let pattern = pb.build().unwrap();
    let mut b = SpjmBuilder::new(pattern);
    let pid = b.vertex_id(p, "p_id");
    b.aggregate(relgo::storage::ops::AggFunc::Count, pid);
    let q = b.build();
    let expected = session.oracle(&q).unwrap();
    for mode in [OptimizerMode::RelGo, OptimizerMode::DuckDbLike] {
        let out = session.run(&q, mode).unwrap();
        assert_eq!(out.table.sorted_rows(), expected.sorted_rows(), "{mode:?}");
    }
}

#[test]
fn hybrid_query_join_path_exercised() {
    let (session, schema) = session();
    let q = snb_queries::fig1_example(&schema, "Ada").unwrap();
    let (plan, _) = session.optimize(&q, OptimizerMode::RelGo).unwrap();
    let s = plan.explain();
    assert!(s.contains("SCAN_TABLE Place"), "{s}");
    assert!(s.contains("HASH_JOIN"), "{s}");
}

#[test]
fn order_by_and_limit_agree_with_oracle() {
    let (session, schema) = session();
    let mut pb = PatternBuilder::new();
    let p = pb.vertex("p", schema.person);
    let m = pb.vertex("m", schema.message);
    pb.edge(p, m, schema.likes).unwrap();
    let pattern = pb.build().unwrap();
    let mut b = SpjmBuilder::new(pattern);
    let p_name = b.vertex_column(p, 1, "p_name");
    let m_date = b.vertex_column(m, 2, "m_date");
    b.project(&[p_name, m_date]);
    b.order_by(1, true); // most recent messages first
    b.order_by(0, false);
    b.limit(7);
    let q = b.build();
    let expected = session.oracle(&q).unwrap();
    assert_eq!(expected.num_rows(), 7);
    for mode in [
        OptimizerMode::RelGo,
        OptimizerMode::DuckDbLike,
        OptimizerMode::KuzuLike,
    ] {
        let out = session.run(&q, mode).unwrap();
        // ORDER BY makes the row *sequence* deterministic up to ties; the
        // sort is stable over a deterministic input order only in the
        // oracle, so compare as sorted multisets plus the sorted-ness
        // property itself.
        assert_eq!(out.table.num_rows(), 7, "{mode:?}");
        assert_eq!(out.table.sorted_rows(), expected.sorted_rows(), "{mode:?}");
        let dates: Vec<i64> = (0..7)
            .map(|r| out.table.value(r, 1).as_int().unwrap())
            .collect();
        assert!(
            dates.windows(2).all(|w| w[0] >= w[1]),
            "{mode:?}: {dates:?}"
        );
    }
}

#[test]
fn explain_shows_order_and_limit() {
    let (session, schema) = session();
    let mut q = snb_queries::ic1(&schema, 1, 5).unwrap();
    q.order_by.push(relgo::storage::ops::SortKey {
        column: 0,
        descending: false,
    });
    q.limit = Some(3);
    let s = session.explain(&q, OptimizerMode::RelGo).unwrap();
    assert!(s.contains("LIMIT 3"), "{s}");
    assert!(s.contains("ORDER_BY"), "{s}");
}

#[test]
fn spj_to_spjm_conversion_runs_end_to_end() {
    use relgo::core::convert::{evaluate_spj, spj_to_spjm, SpjJoin, SpjQuery, SpjTable};
    let (session, _) = session();
    // Friends-of-friends as plain SPJ: Person p ⋈ Knows k1 ⋈ Person f
    // ⋈ Knows k2 ⋈ Person g, WHERE p.id = 5.
    let spj = SpjQuery {
        tables: vec![
            SpjTable {
                table: "Person".into(),
                predicate: Some(ScalarExpr::col_eq(0, 5i64)),
            },
            SpjTable {
                table: "Knows".into(),
                predicate: None,
            },
            SpjTable {
                table: "Person".into(),
                predicate: None,
            },
            SpjTable {
                table: "Knows".into(),
                predicate: None,
            },
            SpjTable {
                table: "Person".into(),
                predicate: None,
            },
        ],
        joins: vec![
            SpjJoin {
                left: (1, 1),
                right: (0, 0),
            },
            SpjJoin {
                left: (1, 2),
                right: (2, 0),
            },
            SpjJoin {
                left: (3, 1),
                right: (2, 0),
            },
            SpjJoin {
                left: (3, 2),
                right: (4, 0),
            },
        ],
        projection: vec![(4, 1), (4, 0)],
    };
    let plain = evaluate_spj(&spj, &session.db()).unwrap();
    let conv = spj_to_spjm(&spj, &session.view(), &session.db()).unwrap();
    assert_eq!(conv.query.pattern.vertex_count(), 3);
    assert_eq!(conv.query.pattern.edge_count(), 2);
    for mode in [OptimizerMode::RelGo, OptimizerMode::DuckDbLike] {
        let out = session.run(&conv.query, mode).unwrap();
        assert_eq!(
            out.table.sorted_rows(),
            plain.sorted_rows(),
            "converted SPJM under {mode:?} must equal the plain SPJ evaluation"
        );
    }
}
