//! Crash-recovery differential harness for the write-ahead log.
//!
//! Each proptest case re-runs this test binary as a **child process** whose
//! WAL is armed with `WalOptions::crash_after_bytes`: after a randomized
//! byte budget, the next flush writes a torn prefix of the record, fsyncs
//! it, and `abort()`s — a power cut in the middle of a commit. The parent
//! then recovers the log into a fresh session (`Session::recover`) and
//! asserts:
//!
//! * the recovered state is the **committed prefix**: some `k ≤ commits`
//!   whole commits, never a partial one;
//! * tables and query results are bit-identical to a never-crashed oracle
//!   session that applies the same first `k` commits — across `run`,
//!   `run_cached` and prepared `execute`, under both optimizer modes;
//! * recovery is idempotent: a second open of the same log finds the same
//!   records and nothing left to truncate.
//!
//! The child re-enters through the `wal_child_entry` test below, selected
//! with `--exact`; with the env var unset (the normal suite) it no-ops.
//!
//! A second harness (`ckpt_child_entry` + `run_ckpt_crash_case`) kills the
//! *checkpointer* instead of the committer: the child takes one successful
//! checkpoint, commits more, then runs a checkpoint armed with
//! [`CheckpointCrash`] — aborting mid-temp-file-write (at a randomized byte
//! offset), after the full write but before the atomic rename, or after the
//! rename but before the WAL truncation. Recovery must restore **every**
//! committed epoch bit-identically in all three cases, falling back to the
//! earlier checkpoint when the doomed snapshot never became visible and
//! skipping already-covered log records when it did.

use proptest::prelude::*;
use relgo::prelude::*;
use relgo::workloads::templates::snb_templates;
use relgo::{CheckpointCrash, CheckpointRequest, CheckpointStore};
use relgo_storage::Database;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One deterministic delta operation (shared by the crashing child and the
/// never-crashed oracle, so both replay the exact same stream).
enum Op {
    Insert(&'static str, Vec<Value>),
    Delete(&'static str, i64),
}

/// The ops of commit number `chunk`: person/knows/likes inserts with
/// chunk-unique primary keys plus a few base-edge deletes, derived from a
/// SplitMix64 stream so child and parent agree without sharing state.
fn chunk_ops(seed: u64, chunk: usize, ops: usize) -> Vec<Op> {
    let mut state = seed ^ ((chunk as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15));
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let mut out = Vec::with_capacity(ops);
    for i in 0..ops {
        // Unique across every chunk: inserts never collide, deletes never
        // repeat, so any prefix of commits is valid.
        let uid = (chunk * ops + i) as i64;
        match next() % 4 {
            0 => out.push(Op::Insert(
                "Person",
                vec![
                    Value::Int(7_000_000 + uid),
                    Value::str(format!("crash_{uid}")),
                    Value::Date(18_000 + (next() % 400) as i64),
                ],
            )),
            1 => out.push(Op::Insert(
                "Knows",
                vec![
                    Value::Int(8_000_000 + uid),
                    Value::Int((next() % 5) as i64),
                    Value::Int(5 + (next() % 7) as i64),
                    Value::Date(18_000 + (next() % 400) as i64),
                ],
            )),
            2 => out.push(Op::Insert(
                "Likes",
                vec![
                    Value::Int(9_000_000 + uid),
                    Value::Int((next() % 5) as i64),
                    Value::Int((next() % 5) as i64),
                    Value::Date(18_000 + (next() % 400) as i64),
                ],
            )),
            // Only small uids: the base dataset is guaranteed to have these
            // Knows rows, and uid-uniqueness means no double delete.
            _ if uid < 8 => out.push(Op::Delete("Knows", uid)),
            _ => out.push(Op::Insert(
                "Person",
                vec![
                    Value::Int(7_500_000 + uid),
                    Value::str(format!("crash_alt_{uid}")),
                    Value::Date(18_000 + (next() % 400) as i64),
                ],
            )),
        }
    }
    out
}

fn stage_and_commit(session: &Session, seed: u64, chunk: usize, ops: usize) {
    let mut batch = session.begin_ingest();
    for op in chunk_ops(seed, chunk, ops) {
        match op {
            Op::Insert(table, row) => batch.insert_row(table, row).unwrap(),
            Op::Delete(table, key) => batch.delete_row(table, key).unwrap(),
        }
    }
    batch.commit().unwrap();
}

/// The shared base dataset for the parent process (children rebuild it —
/// they are fresh processes, which is the point).
fn base() -> &'static (Database, relgo::graph::RGMapping) {
    static CELL: OnceLock<(Database, relgo::graph::RGMapping)> = OnceLock::new();
    CELL.get_or_init(|| {
        relgo::datagen::generate_snb(&relgo::datagen::SnbParams { sf: 0.03, seed: 42 })
    })
}

fn bit_identical(a: &Table, b: &Table) -> bool {
    a.num_rows() == b.num_rows() && (0..a.num_rows() as u32).all(|r| a.row(r) == b.row(r))
}

/// Child-process entry point. Inert in the normal suite; when the parent
/// sets `RELGO_WAL_CHILD_PATH` it opens a durable session with an armed
/// crash hook and commits until it either finishes or the hook aborts the
/// process mid-flush.
#[test]
fn wal_child_entry() {
    let Some(path) = std::env::var_os("RELGO_WAL_CHILD_PATH") else {
        return;
    };
    let getenv = |k: &str| std::env::var(k).unwrap().parse::<u64>().unwrap();
    let seed = getenv("RELGO_WAL_CHILD_SEED");
    let commits = getenv("RELGO_WAL_CHILD_COMMITS") as usize;
    let ops = getenv("RELGO_WAL_CHILD_OPS") as usize;
    let crash = getenv("RELGO_WAL_CHILD_CRASH");
    let (db, mapping) =
        relgo::datagen::generate_snb(&relgo::datagen::SnbParams { sf: 0.03, seed: 42 });
    let (session, recovered) = Session::open_durable(
        db,
        mapping,
        SessionOptions::default(),
        &path,
        WalOptions {
            crash_after_bytes: Some(crash),
            ..WalOptions::default()
        },
    )
    .unwrap();
    assert_eq!(recovered.records, 0, "child starts on an empty log");
    for chunk in 0..commits {
        stage_and_commit(&session, seed, chunk, ops);
    }
    // Reached only when the byte budget outlives the whole stream.
    println!("WAL_CHILD_COMPLETED_ALL");
}

/// Child-process entry point for checkpoint-phase crash injection. Inert in
/// the normal suite; when the parent sets `RELGO_CKPT_CHILD_PATH` it takes
/// one successful checkpoint, commits a tail past it, then runs a
/// checkpoint armed to abort inside the phase `RELGO_CKPT_CHILD_PHASE`
/// selects (0 = mid-temp-write at byte `RELGO_CKPT_CHILD_OFFSET`,
/// 1 = before the atomic rename, 2 = after the rename but before the WAL
/// truncation).
#[test]
fn ckpt_child_entry() {
    let Some(path) = std::env::var_os("RELGO_CKPT_CHILD_PATH") else {
        return;
    };
    let getenv = |k: &str| std::env::var(k).unwrap().parse::<u64>().unwrap();
    let seed = getenv("RELGO_CKPT_CHILD_SEED");
    let pre = getenv("RELGO_CKPT_CHILD_PRE") as usize;
    let post = getenv("RELGO_CKPT_CHILD_POST") as usize;
    let ops = getenv("RELGO_CKPT_CHILD_OPS") as usize;
    let phase = getenv("RELGO_CKPT_CHILD_PHASE");
    let offset = getenv("RELGO_CKPT_CHILD_OFFSET");
    let (db, mapping) =
        relgo::datagen::generate_snb(&relgo::datagen::SnbParams { sf: 0.03, seed: 42 });
    let (session, recovered) = Session::open_durable(
        db,
        mapping,
        SessionOptions::default(),
        &path,
        WalOptions::default(),
    )
    .unwrap();
    assert_eq!(recovered.records, 0, "child starts on an empty log");
    for chunk in 0..pre {
        stage_and_commit(&session, seed, chunk, ops);
    }
    // A first, successful checkpoint: depending on the crash phase below,
    // recovery either falls back to this one or supersedes it.
    session.checkpoint().unwrap();
    for chunk in pre..pre + post {
        stage_and_commit(&session, seed, chunk, ops);
    }
    let crash = match phase {
        0 => CheckpointCrash::MidTempWrite(offset),
        1 => CheckpointCrash::BeforeRename,
        _ => CheckpointCrash::AfterRename,
    };
    let _ = session.checkpoint_with(CheckpointRequest {
        crash: Some(crash),
        ..CheckpointRequest::default()
    });
    // The armed checkpoint aborts the process inside the chosen phase; the
    // parent asserts this line was never reached.
    println!("CKPT_CHILD_SURVIVED_CRASH");
}

/// Remove the WAL, every checkpoint sibling, and any stray temp file a
/// mid-write crash left behind.
fn ckpt_cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    for (_, p) in CheckpointStore::for_wal(path).list().unwrap_or_default() {
        let _ = std::fs::remove_file(p);
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".ckpt.tmp");
    let _ = std::fs::remove_file(std::path::PathBuf::from(tmp));
}

/// Spawn a child that crashes inside checkpoint phase `phase`, recover in
/// this process, and differential-check every table and query result
/// against a never-crashed oracle replaying the same commit stream.
fn run_ckpt_crash_case(
    phase: u64,
    offset: u64,
    seed: u64,
    pre: usize,
    post: usize,
    ops: usize,
    template_idx: usize,
    draw: u64,
) {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "relgo_ckpt_recovery_{}_{}.wal",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    ckpt_cleanup(&path);

    // --- run the doomed checkpointer in a child process ------------------
    let out = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "ckpt_child_entry",
            "--exact",
            "--test-threads=1",
            "--nocapture",
        ])
        .env("RELGO_CKPT_CHILD_PATH", &path)
        .env("RELGO_CKPT_CHILD_SEED", seed.to_string())
        .env("RELGO_CKPT_CHILD_PRE", pre.to_string())
        .env("RELGO_CKPT_CHILD_POST", post.to_string())
        .env("RELGO_CKPT_CHILD_OPS", ops.to_string())
        .env("RELGO_CKPT_CHILD_PHASE", phase.to_string())
        .env("RELGO_CKPT_CHILD_OFFSET", offset.to_string())
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("CKPT_CHILD_SURVIVED_CRASH"),
        "armed checkpoint did not abort (phase {phase})"
    );
    assert!(
        out.status.code().is_none(),
        "child must die by the crash hook's abort, got {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status,
        stdout,
        String::from_utf8_lossy(&out.stderr)
    );

    // --- recover in this (fresh) process ---------------------------------
    let total = pre + post;
    let (db, mapping) = base();
    let (session, report) = Session::recover(db.clone(), mapping.clone(), &path).unwrap();
    assert!(report.checkpoint_loaded, "a valid checkpoint always exists");
    assert_eq!(
        report.truncated_bytes, 0,
        "a checkpoint crash never tears the WAL itself"
    );
    assert_eq!(
        session.epoch(),
        total as u64,
        "every committed epoch survives a phase-{phase} checkpoint crash"
    );
    match phase {
        0 | 1 => {
            // The doomed snapshot never became visible (no rename): recovery
            // starts from the earlier checkpoint and replays the whole tail.
            assert_eq!(report.checkpoint_epoch, pre as u64);
            assert_eq!(report.records, post);
            assert_eq!(report.skipped_records, 0);
        }
        _ => {
            // Renamed before the abort: the new snapshot is authoritative,
            // and the log records it already covers (the truncation never
            // ran) are skipped instead of replayed twice.
            assert_eq!(report.checkpoint_epoch, total as u64);
            assert_eq!(report.records, 0);
            assert_eq!(report.skipped_records, post);
        }
    }

    // --- the never-crashed oracle: same stream, plain commits ------------
    let oracle =
        Session::open_with(db.clone(), mapping.clone(), SessionOptions::default()).unwrap();
    for chunk in 0..total {
        stage_and_commit(&oracle, seed, chunk, ops);
    }
    {
        let recovered_db = session.db();
        let oracle_db = oracle.db();
        for name in ["Person", "Knows", "Likes"] {
            assert!(
                bit_identical(
                    recovered_db.table(name).unwrap(),
                    oracle_db.table(name).unwrap()
                ),
                "table {name} diverges after a phase-{phase} checkpoint crash"
            );
        }
    }
    let schema = SnbSchema::resolve(session.view().schema()).unwrap();
    let t = &snb_templates(&schema)[template_idx];
    let q = t.instantiate(draw).unwrap();
    for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
        let want = oracle.run(&q, mode).unwrap().table;
        let got = session.run(&q, mode).unwrap().table;
        assert!(bit_identical(&want, &got), "{} run diverges", mode.name());
        let cached = session.run_cached(&q, mode).unwrap().table;
        assert!(
            bit_identical(&want, &cached),
            "{} run_cached diverges",
            mode.name()
        );
        let stmt = session.prepare(&t.instantiate(0).unwrap(), mode).unwrap();
        let prepared = stmt.execute(&t.bindings(draw).unwrap()).unwrap().table;
        assert!(
            bit_identical(&want, &prepared),
            "{} prepared execute diverges",
            mode.name()
        );
    }

    // --- recovery is idempotent ------------------------------------------
    drop(session);
    let (session2, report2) = Session::recover(db.clone(), mapping.clone(), &path).unwrap();
    assert_eq!(session2.epoch(), total as u64);
    assert_eq!(report2.truncated_bytes, 0);
    assert_eq!(
        (report2.records, report2.skipped_records),
        (report.records, report.skipped_records),
        "second recovery of the same files sees the same split"
    );
    drop(session2);
    ckpt_cleanup(&path);
}

/// Deterministic sweep: kill the checkpointer inside each of the three
/// phases (mid-temp-write both at offset 0 — an empty temp file — and
/// deeper into the image), and recover bit-identically every time.
#[test]
fn checkpoint_crash_at_every_phase_recovers_bit_identically() {
    for (phase, offset) in [(0u64, 0u64), (0, 129), (1, 0), (2, 0)] {
        run_ckpt_crash_case(phase, offset, 1_000 + phase * 64 + offset, 2, 2, 3, 1, 7);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Randomized checkpoint-phase kills: any phase, any mid-write byte
    /// offset, any commit split — recovery always restores all committed
    /// epochs bit-identically.
    #[test]
    fn killed_checkpointer_recovers_all_committed_epochs(
        phase in 0u64..3,
        offset in 0u64..8_192,
        seed in 0u64..1_000,
        pre in 1usize..4,
        post in 1usize..4,
        ops in 2usize..5,
        template_idx in 0usize..5,
        draw in 0u64..40,
    ) {
        run_ckpt_crash_case(phase, offset, seed, pre, post, ops, template_idx, draw);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Kill a writer at a random byte offset mid-commit; recovery must land
    /// on a committed prefix that is bit-identical to a never-crashed
    /// oracle replaying the same prefix.
    #[test]
    fn killed_writer_recovers_to_a_committed_prefix(
        commits in 2usize..5,
        ops in 2usize..6,
        seed in 0u64..1_000,
        crash_bytes in 16u64..2_048,
        template_idx in 0usize..5,
        draw in 0u64..40,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "relgo_wal_recovery_{}_{}.wal",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);

        // --- run the doomed writer in a child process ------------------
        let out = std::process::Command::new(std::env::current_exe().unwrap())
            .args(["wal_child_entry", "--exact", "--test-threads=1", "--nocapture"])
            .env("RELGO_WAL_CHILD_PATH", &path)
            .env("RELGO_WAL_CHILD_SEED", seed.to_string())
            .env("RELGO_WAL_CHILD_COMMITS", commits.to_string())
            .env("RELGO_WAL_CHILD_OPS", ops.to_string())
            .env("RELGO_WAL_CHILD_CRASH", crash_bytes.to_string())
            .output()
            .unwrap();
        let stdout = String::from_utf8_lossy(&out.stdout);
        let completed = stdout.contains("WAL_CHILD_COMPLETED_ALL");
        if completed {
            prop_assert!(out.status.success(), "completed child must exit cleanly");
        } else {
            // The crash hook dies via abort(): killed by signal, not a
            // panic-driven test failure (which would exit with a code).
            prop_assert!(
                out.status.code().is_none(),
                "child must die by the crash hook's abort, got {:?}\nstdout:\n{}\nstderr:\n{}",
                out.status,
                stdout,
                String::from_utf8_lossy(&out.stderr)
            );
        }

        // --- recover in this (fresh) process ---------------------------
        let (db, mapping) = base();
        let (session, report) =
            Session::recover(db.clone(), mapping.clone(), &path).unwrap();
        let k = report.records;
        prop_assert!(k <= commits, "recovered {k} of {commits} commits");
        if completed {
            prop_assert_eq!(k, commits, "a clean run loses nothing");
        }
        prop_assert_eq!(session.epoch(), k as u64);
        prop_assert!(session.is_durable());
        prop_assert_eq!(report.epoch, k as u64);

        // --- the never-crashed oracle: same prefix, plain commits ------
        let oracle =
            Session::open_with(db.clone(), mapping.clone(), SessionOptions::default()).unwrap();
        for chunk in 0..k {
            stage_and_commit(&oracle, seed, chunk, ops);
        }
        {
            let recovered_db = session.db();
            let oracle_db = oracle.db();
            for name in ["Person", "Knows", "Likes"] {
                prop_assert!(
                    bit_identical(
                        recovered_db.table(name).unwrap(),
                        oracle_db.table(name).unwrap()
                    ),
                    "table {} diverges after recovering {} commits",
                    name,
                    k
                );
            }
        }
        let schema = SnbSchema::resolve(session.view().schema()).unwrap();
        let t = &snb_templates(&schema)[template_idx];
        let q = t.instantiate(draw).unwrap();
        for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
            let want = oracle.run(&q, mode).unwrap().table;
            let got = session.run(&q, mode).unwrap().table;
            prop_assert!(bit_identical(&want, &got), "{} run diverges", mode.name());
            let cached = session.run_cached(&q, mode).unwrap().table;
            prop_assert!(
                bit_identical(&want, &cached),
                "{} run_cached diverges",
                mode.name()
            );
            let stmt = session.prepare(&t.instantiate(0).unwrap(), mode).unwrap();
            let prepared = stmt.execute(&t.bindings(draw).unwrap()).unwrap().table;
            prop_assert!(
                bit_identical(&want, &prepared),
                "{} prepared execute diverges",
                mode.name()
            );
        }

        // --- recovery is idempotent -------------------------------------
        // The first recovery already truncated the torn tail; a second open
        // of the same log finds only whole records and the same epoch.
        drop(session);
        let (session2, report2) =
            Session::recover(db.clone(), mapping.clone(), &path).unwrap();
        prop_assert_eq!(report2.records, k);
        prop_assert_eq!(report2.truncated_bytes, 0, "nothing left to truncate");
        prop_assert_eq!(session2.epoch(), k as u64);

        let _ = std::fs::remove_file(&path);
    }
}

/// Commits appended *after* a recovery extend the same log: a third session
/// recovering later sees the pre-crash prefix plus the post-recovery
/// commits, in order.
#[test]
fn post_recovery_commits_extend_the_recovered_log() {
    let path = std::env::temp_dir().join(format!(
        "relgo_wal_recovery_extend_{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let (db, mapping) = base();

    let (first, rec) = Session::recover(db.clone(), mapping.clone(), &path).unwrap();
    assert_eq!(rec.records, 0);
    stage_and_commit(&first, 77, 0, 4);
    stage_and_commit(&first, 77, 1, 4);
    assert_eq!(first.wal_stats().unwrap().records, 2);
    drop(first);

    let (second, rec) = Session::recover(db.clone(), mapping.clone(), &path).unwrap();
    assert_eq!(rec.records, 2);
    assert_eq!(rec.truncated_bytes, 0);
    assert_eq!(second.epoch(), 2);
    assert!(rec.rows_replayed > 0);
    stage_and_commit(&second, 77, 2, 4);
    assert_eq!(second.epoch(), 3);
    drop(second);

    let (third, rec) = Session::recover(db.clone(), mapping.clone(), &path).unwrap();
    assert_eq!(rec.records, 3);
    assert_eq!(third.epoch(), 3);

    // And the final state equals three plain commits on a fresh session.
    let oracle =
        Session::open_with(db.clone(), mapping.clone(), SessionOptions::default()).unwrap();
    for chunk in 0..3 {
        stage_and_commit(&oracle, 77, chunk, 4);
    }
    let recovered_db = third.db();
    let oracle_db = oracle.db();
    for name in ["Person", "Knows", "Likes"] {
        assert!(
            bit_identical(
                recovered_db.table(name).unwrap(),
                oracle_db.table(name).unwrap()
            ),
            "table {name} diverges"
        );
    }
    let _ = std::fs::remove_file(&path);
}
