//! JOB-style workload correctness on the IMDB-like dataset: all 33 queries
//! under the converged optimizer and the key baselines must agree with the
//! oracle.

use relgo::prelude::*;
use relgo::workloads::job_queries::{self, ImdbSchema};

fn session() -> (Session, ImdbSchema) {
    Session::imdb(0.08, 7).expect("imdb session")
}

#[test]
fn all_job_queries_relgo_vs_oracle() {
    let (session, schema) = session();
    let mut nonempty = 0usize;
    for w in job_queries::job_queries(&schema).unwrap() {
        let expected = session.oracle(&w.query).unwrap();
        let out = session
            .run(&w.query, OptimizerMode::RelGo)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            out.table.sorted_rows(),
            expected.sorted_rows(),
            "{}",
            w.name
        );
        // MIN aggregates always return exactly one row; count how many have
        // a non-NULL minimum (i.e. the pattern matched at all).
        assert_eq!(out.table.num_rows(), 1, "{}", w.name);
        if !out.table.value(0, 0).is_null() {
            nonempty += 1;
        }
    }
    assert!(
        nonempty >= 20,
        "most JOB queries should match something, got {nonempty}/33"
    );
}

#[test]
fn job_subset_parallel_vs_oracle_and_serial() {
    // Intra-query parallel execution: same oracle agreement, and the
    // result table is bit-identical (row order included) to the serial
    // session's — morsel outputs merge deterministically.
    let opts = |threads| SessionOptions {
        threads,
        ..SessionOptions::default()
    };
    let (serial, schema) = Session::imdb_with(0.08, 7, opts(1)).expect("imdb serial");
    let (parallel, _) = Session::imdb_with(0.08, 7, opts(3)).expect("imdb parallel");
    let all = job_queries::job_queries(&schema).unwrap();
    for w in &all[..8] {
        let expected = serial.oracle(&w.query).unwrap().sorted_rows();
        let base = serial.run(&w.query, OptimizerMode::RelGo).unwrap();
        let out = parallel
            .run(&w.query, OptimizerMode::RelGo)
            .unwrap_or_else(|e| panic!("{} (parallel): {e}", w.name));
        assert_eq!(out.table.sorted_rows(), expected, "{} vs oracle", w.name);
        assert_eq!(out.table.num_rows(), base.table.num_rows(), "{}", w.name);
        for r in 0..base.table.num_rows() as u32 {
            assert_eq!(out.table.row(r), base.table.row(r), "{} row {r}", w.name);
        }
    }
}

#[test]
fn job_subset_all_modes_vs_oracle() {
    let (session, schema) = session();
    let all = job_queries::job_queries(&schema).unwrap();
    // The Fig 10 subset: the first 10 queries.
    for w in &all[..10] {
        let expected = session.oracle(&w.query).unwrap().sorted_rows();
        for mode in OptimizerMode::ALL {
            let out = session
                .run(&w.query, mode)
                .unwrap_or_else(|e| panic!("{} under {mode:?}: {e}", w.name));
            assert_eq!(out.table.sorted_rows(), expected, "{} {mode:?}", w.name);
        }
    }
}

#[test]
fn job17_case_study_plans_differ_by_mode() {
    let (session, schema) = session();
    let q = job_queries::build_job(&schema, &job_queries::job_specs()[16]).unwrap();
    let relgo_plan = session.explain(&q, OptimizerMode::RelGo).unwrap();
    let graindb_plan = session.explain(&q, OptimizerMode::GRainDb).unwrap();
    let duckdb_plan = session.explain(&q, OptimizerMode::DuckDbLike).unwrap();
    // RelGo's plan is expand-based (Fig 12b): continuous expansion.
    assert!(relgo_plan.contains("EXPAND"), "{relgo_plan}");
    // DuckDB's agnostic plan is join-based (Fig 12c/d analog).
    assert!(duckdb_plan.contains("HASH_JOIN"), "{duckdb_plan}");
    assert!(!duckdb_plan.contains("EXPAND"), "{duckdb_plan}");
    // GRainDB upgrades some joins to predefined joins (expands).
    assert!(graindb_plan.contains("EXPAND"), "{graindb_plan}");
    // All three compute the same answer.
    let expected = session.oracle(&q).unwrap().sorted_rows();
    for mode in [
        OptimizerMode::RelGo,
        OptimizerMode::GRainDb,
        OptimizerMode::DuckDbLike,
        OptimizerMode::UmbraLike,
    ] {
        assert_eq!(
            session.run(&q, mode).unwrap().table.sorted_rows(),
            expected,
            "{mode:?}"
        );
    }
}

#[test]
fn job_results_change_with_scale() {
    let (s1, schema1) = Session::imdb(0.05, 7).unwrap();
    let (s2, schema2) = Session::imdb(0.15, 7).unwrap();
    let q1 = job_queries::build_job(&schema1, &job_queries::job_specs()[5]).unwrap();
    let q2 = job_queries::build_job(&schema2, &job_queries::job_specs()[5]).unwrap();
    let r1 = s1.oracle(&q1).unwrap();
    let r2 = s2.oracle(&q2).unwrap();
    // Both run; the larger dataset dominates the smaller's minimum (weak
    // sanity check that scale changes data, not determinism).
    assert_eq!(r1.num_rows(), 1);
    assert_eq!(r2.num_rows(), 1);
}

#[test]
fn mode_names_are_unique_and_stable() {
    let mut names: Vec<&str> = OptimizerMode::ALL.iter().map(|m| m.name()).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate mode names");
    assert!(OptimizerMode::RelGo.is_graph_aware());
    assert!(!OptimizerMode::GRainDb.is_graph_aware());
    assert!(OptimizerMode::GRainDb.uses_graph_index());
    assert!(!OptimizerMode::RelGoHash.uses_graph_index());
}

#[test]
fn job_histogram_estimation_keeps_umbra_competitive() {
    // The Umbra-like mode consults histograms; its plans must never be
    // *catastrophically* worse than RelGo's on the year-filtered queries
    // it is supposed to estimate well (JOB26 has year_gt 2010, a skewed
    // range the heuristic prior badly misjudges).
    let (session, schema) = session();
    let jobs = job_queries::job_queries(&schema).unwrap();
    let j26 = &jobs[25];
    let expected = session.oracle(&j26.query).unwrap().sorted_rows();
    for mode in [OptimizerMode::UmbraLike, OptimizerMode::RelGo] {
        let out = session.run(&j26.query, mode).unwrap();
        assert_eq!(out.table.sorted_rows(), expected, "{mode:?}");
    }
}

#[test]
fn aggregates_with_order_and_limit_compose() {
    // MIN over a limited, ordered subquery shape is out of SPJM scope, but
    // ORDER BY/LIMIT after aggregation must behave (single row in, single
    // row out).
    let (session, schema) = session();
    let mut q = job_queries::build_job(&schema, &job_queries::job_specs()[0]).unwrap();
    q.order_by.push(relgo::storage::ops::SortKey {
        column: 0,
        descending: false,
    });
    q.limit = Some(1);
    let out = session.run(&q, OptimizerMode::RelGo).unwrap();
    assert_eq!(out.table.num_rows(), 1);
    assert_eq!(
        out.table.sorted_rows(),
        session.oracle(&q).unwrap().sorted_rows()
    );
}
