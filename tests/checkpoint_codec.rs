//! Property tests for the checkpoint snapshot codec
//! (`relgo_delta::checkpoint`): randomized databases — any mix of the six
//! [`Value`] variants (nulls included), empty tables, non-ASCII and
//! embedded-separator strings, optional primary keys — must round-trip
//! through `encode_checkpoint`/`decode_checkpoint` bit-identically, and any
//! single flipped byte anywhere in the image must be rejected rather than
//! decoded into a silently different database.

use proptest::prelude::*;
use relgo::delta::checkpoint::{decode_checkpoint, encode_checkpoint};
use relgo::prelude::*;
use relgo::storage::table::table_of;

/// String seeds exercising the encoder's length-prefixed UTF-8 path: empty,
/// multi-byte Greek/CJK/emoji, combining marks, and bytes that would break
/// a delimiter-based format.
const ALPHABET: &[&str] = &[
    "",
    "a",
    "Zed",
    "Ωμέγα",
    "测试",
    "🦀🦀",
    "naïve",
    "line\nbreak",
    "pipe|sep",
    "nul\u{0}byte",
];

fn dtype_of(tag: u8) -> DataType {
    match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        _ => DataType::Date,
    }
}

/// A deterministic cell value for dtype `tag` from one random pick. Every
/// seventh pick is a Null tombstone (the key column never takes this path),
/// and floats include the -0.0 / fractional cases a naive text codec drops.
fn value_for(tag: u8, pick: u64) -> Value {
    if pick.is_multiple_of(7) {
        return Value::Null;
    }
    match tag {
        0 => Value::Int(pick as i64 - 500),
        1 => {
            if pick.is_multiple_of(11) {
                Value::Float(-0.0)
            } else {
                Value::Float((pick as f64 - 500.0) / 8.0)
            }
        }
        2 => Value::str(format!(
            "{}_{pick}",
            ALPHABET[pick as usize % ALPHABET.len()]
        )),
        3 => Value::Bool(pick.is_multiple_of(2)),
        _ => Value::Date(pick as i64 - 300),
    }
}

/// One random table: field dtypes (field 0 always Int, the key column),
/// random cell picks (possibly zero rows), and whether a primary key is
/// declared on the key column.
#[derive(Debug, Clone)]
struct TableSpec {
    dtypes: Vec<u8>,
    cells: Vec<Vec<u64>>,
    with_pk: bool,
}

fn table_spec() -> impl Strategy<Value = TableSpec> {
    (
        proptest::collection::vec(0u8..5, 1..5),
        0usize..8,
        any::<bool>(),
    )
        .prop_flat_map(|(mut dtypes, n_rows, with_pk)| {
            dtypes[0] = 0; // the key column is always Int
            let fields = dtypes.len();
            let cells = proptest::collection::vec(
                proptest::collection::vec(1u64..100_000, fields..fields + 1),
                n_rows..n_rows + 1,
            );
            (Just(dtypes), cells, Just(with_pk)).prop_map(|(dtypes, cells, with_pk)| TableSpec {
                dtypes,
                cells,
                with_pk,
            })
        })
}

fn build_db(specs: &[TableSpec]) -> Database {
    let mut db = Database::new();
    for (t, spec) in specs.iter().enumerate() {
        let name = format!("T{t}");
        let fields: Vec<(String, DataType)> = spec
            .dtypes
            .iter()
            .enumerate()
            .map(|(i, &d)| (format!("c{i}"), dtype_of(d)))
            .collect();
        let field_refs: Vec<(&str, DataType)> =
            fields.iter().map(|(n, d)| (n.as_str(), *d)).collect();
        let rows: Vec<Vec<Value>> = spec
            .cells
            .iter()
            .enumerate()
            .map(|(r, picks)| {
                picks
                    .iter()
                    .enumerate()
                    // Row index as the key value: unique by construction, so
                    // a declared primary key always validates (and decode's
                    // key-index re-warm re-checks that uniqueness).
                    .map(|(i, &p)| {
                        if i == 0 {
                            Value::Int(r as i64)
                        } else {
                            value_for(spec.dtypes[i], p)
                        }
                    })
                    .collect()
            })
            .collect();
        db.add_table(table_of(&name, &field_refs, rows));
        if spec.with_pk {
            db.set_primary_key(&name, "c0").unwrap();
        }
    }
    db
}

fn dbs_identical(a: &Database, b: &Database) -> bool {
    let names_a = a.table_names();
    if names_a != b.table_names() {
        return false;
    }
    for name in names_a {
        let (ta, tb) = (a.table(name).unwrap(), b.table(name).unwrap());
        if ta.schema() != tb.schema() || ta.num_rows() != tb.num_rows() {
            return false;
        }
        if (0..ta.num_rows() as u32).any(|r| ta.row(r) != tb.row(r)) {
            return false;
        }
        if a.primary_key(name) != b.primary_key(name) {
            return false;
        }
    }
    a.foreign_keys() == b.foreign_keys()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → decode is the identity on tables, rows, values, and key
    /// metadata, whatever the shape of the database.
    #[test]
    fn codec_round_trips_random_databases(
        specs in proptest::collection::vec(table_spec(), 1..4),
        epoch in 0u64..1_000_000,
    ) {
        let db = build_db(&specs);
        let image = encode_checkpoint(epoch, &db);
        let (got_epoch, decoded) = decode_checkpoint(&image).unwrap();
        prop_assert_eq!(got_epoch, epoch);
        prop_assert!(dbs_identical(&db, &decoded), "decoded database diverges");
    }

    /// Flipping any single byte of the image — header, CRC, length, or
    /// payload — is detected: decode errors instead of returning a
    /// different database.
    #[test]
    fn single_byte_corruption_never_decodes(
        specs in proptest::collection::vec(table_spec(), 1..3),
        epoch in 0u64..1_000,
        pos_pick in 0u64..1_000_000_000,
        mask in 1u8..255,
    ) {
        let db = build_db(&specs);
        let mut image = encode_checkpoint(epoch, &db);
        let pos = (pos_pick % image.len() as u64) as usize;
        image[pos] ^= mask;
        prop_assert!(
            decode_checkpoint(&image).is_err(),
            "flipped byte {pos} (mask {mask:#04x}) decoded anyway"
        );
    }

    /// Truncating the image at any point is detected.
    #[test]
    fn truncated_images_never_decode(
        specs in proptest::collection::vec(table_spec(), 1..3),
        cut_pick in 0u64..1_000_000_000,
    ) {
        let db = build_db(&specs);
        let image = encode_checkpoint(9, &db);
        let cut = (cut_pick % image.len() as u64) as usize;
        prop_assert!(
            decode_checkpoint(&image[..cut]).is_err(),
            "torn image (cut at {cut}/{}) decoded anyway",
            image.len()
        );
    }
}
