//! Cross-mode correctness: every optimizer mode (DuckDB-like, GRainDB,
//! Umbra-like, Calcite-like, Kùzu-like, RelGo and its three ablations) must
//! produce row-identical results to the naive backtracking oracle on the
//! SNB-like workloads.

use relgo::prelude::*;
use relgo::workloads::snb_queries::{self, SnbSchema};

fn session() -> (Session, SnbSchema) {
    Session::snb(0.05, 42).expect("session build")
}

fn check_all_modes(session: &Session, name: &str, query: &SpjmQuery) {
    let expected = session.oracle(query).expect("oracle").sorted_rows();
    for mode in OptimizerMode::ALL {
        let outcome = session
            .run(query, mode)
            .unwrap_or_else(|e| panic!("{name} under {mode:?}: {e}"));
        assert_eq!(
            outcome.table.sorted_rows(),
            expected,
            "{name} under {mode:?} disagrees with the oracle"
        );
    }
}

#[test]
fn fig1_example_agrees_across_modes() {
    let (session, schema) = session();
    // Sweep every distinct person name in the dataset until one produces
    // matches, checking mode agreement for the first few names either way.
    let db = session.db();
    let person = db.table("Person").unwrap();
    let mut names: Vec<String> = (0..person.num_rows() as u32)
        .filter_map(|r| person.value(r, 1).as_str().map(str::to_string))
        .collect();
    names.sort();
    names.dedup();
    let mut saw_rows = false;
    let mut checked = 0;
    for name in &names {
        let q = snb_queries::fig1_example(&schema, name).unwrap();
        let rows = session.oracle(&q).unwrap().num_rows();
        if checked < 3 || (rows > 0 && !saw_rows) {
            check_all_modes(&session, &format!("Fig1({name})"), &q);
            checked += 1;
        }
        if rows > 0 {
            saw_rows = true;
        }
        if saw_rows && checked >= 4 {
            break;
        }
    }
    assert!(
        saw_rows,
        "at least one of the {} person names should produce matches",
        names.len()
    );
}

#[test]
fn ic_short_paths_agree_across_modes() {
    let (session, schema) = session();
    for l in 1..=2 {
        let q = snb_queries::ic1(&schema, l, 5).unwrap();
        check_all_modes(&session, &format!("IC1-{l}"), &q);
    }
    let q = snb_queries::ic2(&schema, 5, 18_500).unwrap();
    check_all_modes(&session, "IC2", &q);
    let q = snb_queries::ic3(&schema, 1, 5, "country_3").unwrap();
    check_all_modes(&session, "IC3-1", &q);
    let q = snb_queries::ic4(&schema, 5, 15_500, 18_500).unwrap();
    check_all_modes(&session, "IC4", &q);
}

#[test]
fn cyclic_ic_queries_agree_across_modes() {
    let (session, schema) = session();
    let q = snb_queries::ic5(&schema, 1, 5, 14_000).unwrap();
    check_all_modes(&session, "IC5-1", &q);
    let q = snb_queries::ic7(&schema, 5).unwrap();
    check_all_modes(&session, "IC7", &q);
}

#[test]
fn deep_ic_queries_agree_across_modes() {
    let (session, schema) = session();
    let q = snb_queries::ic8(&schema, 5).unwrap();
    check_all_modes(&session, "IC8", &q);
    let q = snb_queries::ic9(&schema, 1, 5, 17_000).unwrap();
    check_all_modes(&session, "IC9-1", &q);
    let q = snb_queries::ic11(&schema, 1, 5, "country_2").unwrap();
    check_all_modes(&session, "IC11-1", &q);
    let q = snb_queries::ic12(&schema, 5, "class_1").unwrap();
    check_all_modes(&session, "IC12", &q);
}

#[test]
fn qr_rule_queries_agree_across_modes() {
    let (session, schema) = session();
    for w in snb_queries::qr_queries(&schema).unwrap() {
        check_all_modes(&session, &w.name, &w.query);
    }
}

#[test]
fn qc_cyclic_counts_agree_across_modes() {
    let (session, schema) = session();
    for w in snb_queries::qc_queries(&schema).unwrap() {
        let expected = session.oracle(&w.query).unwrap();
        let count = expected.value(0, 0).as_int().unwrap();
        assert!(count > 0, "{}: cyclic pattern should have matches", w.name);
        check_all_modes(&session, &w.name, &w.query);
    }
}

#[test]
fn full_ic_workload_relgo_vs_oracle() {
    // The full 18-query IC workload under the converged optimizer only
    // (keeps runtime reasonable while covering every query shape).
    let (session, schema) = session();
    for w in snb_queries::ldbc_interactive(&schema).unwrap() {
        let expected = session.oracle(&w.query).unwrap().sorted_rows();
        let out = session
            .run(&w.query, OptimizerMode::RelGo)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(out.table.sorted_rows(), expected, "{}", w.name);
    }
}

#[test]
fn full_ic_workload_umbra_and_kuzu_vs_oracle() {
    let (session, schema) = session();
    for w in snb_queries::ldbc_interactive(&schema).unwrap() {
        let expected = session.oracle(&w.query).unwrap().sorted_rows();
        for mode in [OptimizerMode::UmbraLike, OptimizerMode::KuzuLike] {
            let out = session
                .run(&w.query, mode)
                .unwrap_or_else(|e| panic!("{} under {mode:?}: {e}", w.name));
            assert_eq!(out.table.sorted_rows(), expected, "{} {mode:?}", w.name);
        }
    }
}

#[test]
fn results_are_stable_across_seeds() {
    // Different data seeds produce different results, but each mode still
    // matches the oracle.
    for seed in [1, 99] {
        let (session, schema) = Session::snb(0.04, seed).unwrap();
        let q = snb_queries::ic7(&schema, 5).unwrap();
        let expected = session.oracle(&q).unwrap().sorted_rows();
        for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
            let out = session.run(&q, mode).unwrap();
            assert_eq!(out.table.sorted_rows(), expected, "seed {seed} {mode:?}");
        }
    }
}
