//! Property-based tests: random graphs × random patterns × every optimizer
//! mode ≡ the naive oracle; rule rewrites preserve results; canonical codes
//! are isomorphism-invariant; the EV/VE indexes round-trip edges.

use proptest::prelude::*;
use relgo::common::LabelId;
use relgo::common::Schema as CommonSchema;
use relgo::core::spjm::SpjmBuilder;
use relgo::pattern::canonical_code;
use relgo::prelude::*;
use relgo_storage::table::TableBuilder;

/// A random two-label property graph description.
#[derive(Debug, Clone)]
struct RandomGraph {
    n_a: usize,
    n_b: usize,
    /// Edges of label X: A → B.
    x_edges: Vec<(usize, usize)>,
    /// Edges of label Y: A → A.
    y_edges: Vec<(usize, usize)>,
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    (2usize..6, 2usize..5).prop_flat_map(|(n_a, n_b)| {
        let x = proptest::collection::vec((0..n_a, 0..n_b), 0..12);
        let y = proptest::collection::vec((0..n_a, 0..n_a), 0..10);
        (Just(n_a), Just(n_b), x, y).prop_map(|(n_a, n_b, x_edges, y_edges)| RandomGraph {
            n_a,
            n_b,
            x_edges,
            y_edges: y_edges.into_iter().filter(|(s, t)| s != t).collect(),
        })
    })
}

fn build_session(g: &RandomGraph) -> Session {
    let mut db = Database::new();
    let mut t = TableBuilder::new(
        "A",
        CommonSchema::of(&[("id", DataType::Int), ("score", DataType::Int)]),
    );
    for i in 0..g.n_a {
        t.push_row(vec![Value::Int(i as i64), Value::Int((i % 3) as i64)])
            .unwrap();
    }
    db.add_table(t.finish());
    let mut t = TableBuilder::new(
        "B",
        CommonSchema::of(&[("id", DataType::Int), ("tag", DataType::Int)]),
    );
    for i in 0..g.n_b {
        t.push_row(vec![Value::Int(i as i64), Value::Int((i % 2) as i64)])
            .unwrap();
    }
    db.add_table(t.finish());
    let mut t = TableBuilder::new(
        "X",
        CommonSchema::of(&[
            ("id", DataType::Int),
            ("a", DataType::Int),
            ("b", DataType::Int),
        ]),
    );
    for (i, &(s, d)) in g.x_edges.iter().enumerate() {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::Int(s as i64),
            Value::Int(d as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    let mut t = TableBuilder::new(
        "Y",
        CommonSchema::of(&[
            ("id", DataType::Int),
            ("s", DataType::Int),
            ("t", DataType::Int),
        ]),
    );
    for (i, &(s, d)) in g.y_edges.iter().enumerate() {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::Int(s as i64),
            Value::Int(d as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("A", "id").unwrap();
    db.set_primary_key("B", "id").unwrap();
    db.set_primary_key("X", "id").unwrap();
    db.set_primary_key("Y", "id").unwrap();
    let mapping = RGMapping::new()
        .vertex("A")
        .vertex("B")
        .edge("X", "a", "A", "b", "B")
        .edge("Y", "s", "A", "t", "A");
    Session::open(db, mapping).expect("session")
}

/// A small random connected pattern over labels A(0)/B(1), X(0)/Y(1).
#[derive(Debug, Clone)]
enum PatternShape {
    /// A --X--> B
    EdgeX,
    /// A --Y--> A
    EdgeY,
    /// A -Y-> A -X-> B path
    Path,
    /// (a1)-X->(b), (a2)-X->(b) wedge
    Wedge,
    /// (a1)-Y->(a2), (a1)-X->(b), (a2)-X->(b) triangle
    Triangle,
    /// A -Y-> A -Y-> A
    YPath,
}

fn pattern_of(shape: &PatternShape) -> Pattern {
    let a = LabelId(0);
    let b = LabelId(1);
    let x = LabelId(0);
    let y = LabelId(1);
    let mut pb = PatternBuilder::new();
    match shape {
        PatternShape::EdgeX => {
            let v0 = pb.vertex("a", a);
            let v1 = pb.vertex("b", b);
            pb.edge(v0, v1, x).unwrap();
        }
        PatternShape::EdgeY => {
            let v0 = pb.vertex("a1", a);
            let v1 = pb.vertex("a2", a);
            pb.edge(v0, v1, y).unwrap();
        }
        PatternShape::Path => {
            let v0 = pb.vertex("a1", a);
            let v1 = pb.vertex("a2", a);
            let v2 = pb.vertex("b", b);
            pb.edge(v0, v1, y).unwrap();
            pb.edge(v1, v2, x).unwrap();
        }
        PatternShape::Wedge => {
            let v0 = pb.vertex("a1", a);
            let v1 = pb.vertex("a2", a);
            let v2 = pb.vertex("b", b);
            pb.edge(v0, v2, x).unwrap();
            pb.edge(v1, v2, x).unwrap();
        }
        PatternShape::Triangle => {
            let v0 = pb.vertex("a1", a);
            let v1 = pb.vertex("a2", a);
            let v2 = pb.vertex("b", b);
            pb.edge(v0, v1, y).unwrap();
            pb.edge(v0, v2, x).unwrap();
            pb.edge(v1, v2, x).unwrap();
        }
        PatternShape::YPath => {
            let v0 = pb.vertex("a1", a);
            let v1 = pb.vertex("a2", a);
            let v2 = pb.vertex("a3", a);
            pb.edge(v0, v1, y).unwrap();
            pb.edge(v1, v2, y).unwrap();
        }
    }
    pb.build().unwrap()
}

fn shapes() -> impl Strategy<Value = PatternShape> {
    prop_oneof![
        Just(PatternShape::EdgeX),
        Just(PatternShape::EdgeY),
        Just(PatternShape::Path),
        Just(PatternShape::Wedge),
        Just(PatternShape::Triangle),
        Just(PatternShape::YPath),
    ]
}

fn query_for(pattern: Pattern, with_filter: bool) -> SpjmQuery {
    let n = pattern.vertex_count();
    let mut b = SpjmBuilder::new(pattern);
    let mut cols = Vec::new();
    for v in 0..n {
        cols.push(b.vertex_id(v, &format!("v{v}_id")));
    }
    // Also project an attribute of vertex 0 so FilterIntoMatch has a target.
    let attr = b.vertex_column(0, 1, "v0_attr");
    if with_filter {
        b.select(ScalarExpr::col_eq(attr, 1i64));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_modes_agree_with_oracle(g in random_graph(), shape in shapes(), filt in any::<bool>()) {
        let session = build_session(&g);
        let query = query_for(pattern_of(&shape), filt);
        let expected = session.oracle(&query).unwrap().sorted_rows();
        for mode in OptimizerMode::ALL {
            let out = session.run(&query, mode).unwrap();
            prop_assert_eq!(
                out.table.sorted_rows(),
                expected.clone(),
                "{:?} on {:?}", mode, shape
            );
        }
    }

    #[test]
    fn distinct_vertex_semantics_agree(g in random_graph(), shape in shapes()) {
        let session = build_session(&g);
        let pattern = pattern_of(&shape).with_semantics(MatchSemantics::DistinctVertices);
        let query = query_for(pattern, false);
        let expected = session.oracle(&query).unwrap().sorted_rows();
        for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb, OptimizerMode::KuzuLike] {
            let out = session.run(&query, mode).unwrap();
            prop_assert_eq!(out.table.sorted_rows(), expected.clone(), "{:?}", mode);
        }
    }

    #[test]
    fn rule_rewrites_preserve_results(g in random_graph(), shape in shapes()) {
        let session = build_session(&g);
        let query = query_for(pattern_of(&shape), true);
        let with_rules = session.run(&query, OptimizerMode::RelGo).unwrap();
        let without_rules = session.run(&query, OptimizerMode::RelGoNoRule).unwrap();
        prop_assert_eq!(
            with_rules.table.sorted_rows(),
            without_rules.table.sorted_rows()
        );
    }

    #[test]
    fn glogue_exact_counts_match_oracle(g in random_graph(), shape in shapes()) {
        let session = build_session(&g);
        let pattern = pattern_of(&shape);
        let oracle_count = relgo::exec::oracle::match_pattern(&session.view(), &pattern)
            .unwrap()
            .len() as f64;
        let glogue_count = session.glogue().cardinality(&pattern).unwrap();
        prop_assert!((glogue_count - oracle_count).abs() < 1e-6,
            "glogue {} vs oracle {}", glogue_count, oracle_count);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn canonical_codes_invariant_under_relabeling(
        perm_seed in 0usize..24,
        shape in shapes()
    ) {
        // Relabel the triangle/wedge vertices by inserting them in a
        // different order; codes must match.
        let p1 = pattern_of(&shape);
        // Rebuild with permuted insertion order via sub_pattern extraction
        // (identity set) — exercises the extraction path too.
        use relgo::pattern::decompose::{full_set, sub_pattern};
        let (p2, _) = sub_pattern(&p1, full_set(p1.vertex_count()));
        let _ = perm_seed;
        prop_assert_eq!(canonical_code(&p1), canonical_code(&p2));
    }

    #[test]
    fn ev_index_roundtrips_edges(g in random_graph()) {
        let session = build_session(&g);
        let view = session.view();
        let index = view.index().unwrap();
        let x = view.schema().edge_label_id("X").unwrap();
        for (i, &(s, d)) in g.x_edges.iter().enumerate() {
            prop_assert_eq!(index.edge_src(x, i as u32) as usize, s);
            prop_assert_eq!(index.edge_dst(x, i as u32) as usize, d);
            // VE-index contains the reverse mapping.
            let (es, ns) = index.neighbors(x, relgo::graph::Direction::Out, s as u32);
            let pos = es.iter().position(|&e| e == i as u32);
            prop_assert!(pos.is_some());
            prop_assert_eq!(ns[pos.unwrap()] as usize, d);
        }
    }
}
