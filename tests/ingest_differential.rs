//! Randomized differential testing of the ingest subsystem.
//!
//! The core property: a session that ingests a randomized delta stream
//! (person/knows/likes inserts and edge-row deletes, split across several
//! commits) returns **bit-identical** rows to a fresh session built from
//! the final merged dataset — across all four execution regimes
//! (`run`, `run_cached`, prepared `execute`, prepared `execute_batch`),
//! both optimizer modes, and 1/4 intra-query threads. Any divergence is an
//! incremental-maintenance bug: the merged tables, the label-shared graph
//! index, or the carried-over GLogue statistics disagree with a
//! from-scratch build.
//!
//! A second property pins the statistics themselves: after an arbitrary
//! committed delta stream, `GraphStats` and warm GLogue pattern counts must
//! equal a from-scratch recompute on the merged data — under both the
//! incremental refresh (staleness 1.0) and the full rebuild (staleness
//! 0.0) commit paths.
//!
//! A third property exercises the MVCC write path: N threads commit
//! overlapping randomized batches concurrently; per contested primary key
//! exactly one commit wins, every loser observes the retryable typed
//! `CommitError::Conflict`, and the surviving state is bit-identical to a
//! serial replay of the winning commits in epoch order.
//!
//! Plain tests cover snapshot isolation: a reader pinned to an old epoch
//! sees neither uncommitted nor later-committed rows.

use proptest::prelude::*;
use relgo::prelude::*;
use relgo::workloads::templates::{snb_templates, QueryTemplate};
use relgo_storage::Database;
use std::sync::OnceLock;

/// One delta-stream operation (prefix-safe: generated so that any split of
/// the stream into ordered commits is valid).
#[derive(Debug, Clone)]
enum Op {
    Insert(&'static str, Vec<Value>),
    Delete(&'static str, i64),
}

/// The shared base dataset (building data dominates test time; sessions are
/// rebuilt per case from clones of this).
fn base() -> &'static (Database, relgo::graph::RGMapping) {
    static CELL: OnceLock<(Database, relgo::graph::RGMapping)> = OnceLock::new();
    CELL.get_or_init(|| {
        let (db, mapping) =
            relgo::datagen::generate_snb(&relgo::datagen::SnbParams { sf: 0.03, seed: 42 });
        (db, mapping)
    })
}

fn max_key(db: &Database, table: &str) -> i64 {
    let t = db.table(table).unwrap();
    (0..t.num_rows() as u32)
        .filter_map(|r| t.value(r, 0).as_int())
        .max()
        .unwrap_or(-1)
}

/// Deterministic randomized delta stream over the base dataset: person,
/// knows and likes inserts plus knows/likes edge-row deletes.
fn gen_ops(db: &Database, seed: u64, n: usize) -> Vec<Op> {
    // SplitMix64 (self-contained so the stream is stable regardless of the
    // vendored rand shim's evolution).
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let n_person = db.table("Person").unwrap().num_rows() as i64;
    let n_message = db.table("Message").unwrap().num_rows() as i64;
    let mut next_person = max_key(db, "Person") + 1;
    let mut next_knows = max_key(db, "Knows") + 1;
    let mut next_likes = max_key(db, "Likes") + 1;
    let mut persons: Vec<i64> = (0..n_person).collect();
    let mut deletable_knows: Vec<i64> = (0..=max_key(db, "Knows")).collect();
    let mut deletable_likes: Vec<i64> = (0..=max_key(db, "Likes")).collect();
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        match next() % 6 {
            0 => {
                let id = next_person;
                next_person += 1;
                ops.push(Op::Insert(
                    "Person",
                    vec![
                        Value::Int(id),
                        Value::str(format!("delta_{id}")),
                        Value::Date(18_000 + (next() % 500) as i64),
                    ],
                ));
                persons.push(id);
            }
            1 | 2 => {
                let p = persons[(next() % persons.len() as u64) as usize];
                let mut q = persons[(next() % persons.len() as u64) as usize];
                if q == p {
                    q = persons
                        [(persons.iter().position(|&x| x == p).unwrap() + 1) % persons.len()];
                }
                if q == p {
                    continue;
                }
                let id = next_knows;
                next_knows += 1;
                ops.push(Op::Insert(
                    "Knows",
                    vec![
                        Value::Int(id),
                        Value::Int(p),
                        Value::Int(q),
                        Value::Date(18_000 + (next() % 500) as i64),
                    ],
                ));
            }
            3 => {
                let p = persons[(next() % persons.len() as u64) as usize];
                let m = (next() % n_message as u64) as i64;
                let id = next_likes;
                next_likes += 1;
                ops.push(Op::Insert(
                    "Likes",
                    vec![
                        Value::Int(id),
                        Value::Int(p),
                        Value::Int(m),
                        Value::Date(18_000 + (next() % 500) as i64),
                    ],
                ));
            }
            4 if !deletable_knows.is_empty() => {
                let i = (next() % deletable_knows.len() as u64) as usize;
                ops.push(Op::Delete("Knows", deletable_knows.swap_remove(i)));
            }
            _ if !deletable_likes.is_empty() => {
                let i = (next() % deletable_likes.len() as u64) as usize;
                ops.push(Op::Delete("Likes", deletable_likes.swap_remove(i)));
            }
            _ => {}
        }
    }
    ops
}

/// Apply `ops` split into `commits` ordered batches.
fn apply_ops(session: &Session, ops: &[Op], commits: usize) -> Vec<IngestReport> {
    let commits = commits.clamp(1, ops.len().max(1));
    let per = ops.len().div_ceil(commits);
    let mut reports = Vec::new();
    for chunk in ops.chunks(per.max(1)) {
        let mut batch = session.begin_ingest();
        for op in chunk {
            match op {
                Op::Insert(table, row) => batch.insert_row(table, row.clone()).unwrap(),
                Op::Delete(table, key) => batch.delete_row(table, *key).unwrap(),
            }
        }
        reports.push(batch.commit().unwrap());
    }
    reports
}

fn options(threads: usize, staleness: f64) -> SessionOptions {
    SessionOptions {
        threads,
        stats_staleness: staleness,
        ..SessionOptions::default()
    }
}

/// Row-for-row table equality (stricter than set equality).
fn bit_identical(a: &Table, b: &Table) -> bool {
    a.num_rows() == b.num_rows() && (0..a.num_rows() as u32).all(|r| a.row(r) == b.row(r))
}

/// Run one template draw through the ingested session's four regimes and
/// the fresh session's `run`; assert bit-identity everywhere.
fn differential_case(
    ingested: &Session,
    fresh: &Session,
    t: &QueryTemplate,
    draw: u64,
    mode: OptimizerMode,
) -> Table {
    let name = t.name();
    let q = t.instantiate(draw).unwrap();
    let expected = fresh.run(&q, mode).unwrap().table;
    let direct = ingested.run(&q, mode).unwrap().table;
    assert!(
        bit_identical(&expected, &direct),
        "{name} draw {draw} {}: ingested run diverges from fresh session",
        mode.name()
    );
    let cached = ingested.run_cached(&q, mode).unwrap().table;
    assert!(
        bit_identical(&expected, &cached),
        "{name} draw {draw} {}: ingested run_cached diverges",
        mode.name()
    );
    let stmt = ingested.prepare(&t.instantiate(0).unwrap(), mode).unwrap();
    let prepared = stmt.execute(&t.bindings(draw).unwrap()).unwrap().table;
    assert!(
        bit_identical(&expected, &prepared),
        "{name} draw {draw} {}: ingested prepared execute diverges",
        mode.name()
    );
    let batch: Vec<Vec<Value>> = (draw..draw + 2).map(|d| t.bindings(d).unwrap()).collect();
    let out = stmt.execute_batch(&batch).unwrap();
    assert!(
        bit_identical(&expected, &out.tables[0]),
        "{name} draw {draw} {}: ingested batched execute diverges",
        mode.name()
    );
    let twin = fresh.run(&t.instantiate(draw + 1).unwrap(), mode).unwrap();
    assert!(
        bit_identical(&twin.table, &out.tables[1]),
        "{name} draw {} {}: batch member 1 diverges",
        draw + 1,
        mode.name()
    );
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The headline differential: ingest ≡ fresh across regimes, modes and
    /// thread counts.
    #[test]
    fn ingested_session_matches_fresh_session(
        seed in 0u64..1_000,
        n_ops in 1usize..14,
        commits in 1usize..4,
        template_idx in 0usize..5,
        draw in 0u64..40,
    ) {
        let (db, mapping) = base();
        let ops = gen_ops(db, seed, n_ops);
        let mut per_threads: Vec<Table> = Vec::new();
        for threads in [1usize, 4] {
            // Alternate commit staleness by seed so both refresh paths are
            // continuously differentially tested.
            let staleness = if seed % 2 == 0 { 1.0 } else { 0.0 };
            let (ingested, schema) = {
                let session = Session::open_with(
                    db.clone(),
                    mapping.clone(),
                    options(threads, staleness),
                ).unwrap();
                let schema = SnbSchema::resolve(session.view().schema()).unwrap();
                (session, schema)
            };
            // Warm caches/statistics *before* the delta so the commit path
            // has real state to maintain.
            let t = &snb_templates(&schema)[template_idx];
            ingested.run_cached(&t.instantiate(draw).unwrap(), OptimizerMode::RelGo).unwrap();
            let reports = apply_ops(&ingested, &ops, commits);
            prop_assert!(reports.last().unwrap().epoch >= 1);
            let fresh = Session::open_with(
                (*ingested.db()).clone(),
                mapping.clone(),
                options(threads, 0.2),
            ).unwrap();
            for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
                let expected = differential_case(&ingested, &fresh, t, draw, mode);
                if mode == OptimizerMode::RelGo {
                    per_threads.push(expected);
                }
            }
        }
        prop_assert!(
            bit_identical(&per_threads[0], &per_threads[1]),
            "1-thread and 4-thread results diverge"
        );
    }

    /// Statistics equality: after an arbitrary committed delta stream, the
    /// label statistics and warm GLogue pattern counts equal a from-scratch
    /// recompute over the merged data — for both the incremental and the
    /// full-rebuild commit paths.
    #[test]
    fn delta_statistics_equal_recompute(
        seed in 0u64..1_000,
        n_ops in 1usize..16,
        commits in 1usize..3,
        incremental in any::<bool>(),
    ) {
        use relgo::pattern::PatternBuilder;

        let (db, mapping) = base();
        let ops = gen_ops(db, seed, n_ops);
        let staleness = if incremental { 1.0 } else { 0.0 };
        let session = Session::open_with(db.clone(), mapping.clone(), options(1, staleness)).unwrap();
        let schema = SnbSchema::resolve(session.view().schema()).unwrap();

        // Small probe patterns over the labels the delta touches (and one
        // it never touches).
        let patterns = {
            let mut out = Vec::new();
            let mut b = PatternBuilder::new();
            b.vertex("p", schema.person);
            out.push(b.build().unwrap());
            let mut b = PatternBuilder::new();
            let p1 = b.vertex("p1", schema.person);
            let p2 = b.vertex("p2", schema.person);
            b.edge(p1, p2, schema.knows).unwrap();
            out.push(b.build().unwrap());
            let mut b = PatternBuilder::new();
            let p = b.vertex("p", schema.person);
            let m = b.vertex("m", schema.message);
            b.edge(p, m, schema.likes).unwrap();
            out.push(b.build().unwrap());
            let mut b = PatternBuilder::new();
            let t = b.vertex("t", schema.tag);
            let c = b.vertex("c", schema.tagclass);
            b.edge(t, c, schema.tag_has_type).unwrap();
            out.push(b.build().unwrap());
            out
        };
        // Warm the GLogue before the delta: retained counts must survive
        // the commit *and* still be correct.
        for p in &patterns {
            session.glogue().cardinality(p).unwrap();
        }
        apply_ops(&session, &ops, commits);

        let fresh = Session::open_with((*session.db()).clone(), mapping.clone(), options(1, 0.2)).unwrap();
        // Label statistics match exactly.
        let got = session.glogue();
        let want = fresh.glogue();
        let stats = got.graph_stats();
        let fresh_stats = want.graph_stats();
        let nv = fresh.view().schema().vertex_label_count();
        let ne = fresh.view().schema().edge_label_count();
        for l in 0..nv as u16 {
            let l = relgo::common::LabelId(l);
            prop_assert_eq!(stats.vertex_count(l), fresh_stats.vertex_count(l));
        }
        for l in 0..ne as u16 {
            let l = relgo::common::LabelId(l);
            prop_assert_eq!(stats.edge_count(l), fresh_stats.edge_count(l));
            for dir in [relgo::graph::Direction::Out, relgo::graph::Direction::In] {
                let a = stats.avg_degree(l, dir);
                let b = fresh_stats.avg_degree(l, dir);
                prop_assert!((a - b).abs() < 1e-12, "avg degree {l:?} {dir:?}: {a} vs {b}");
            }
        }
        // Pattern counts match a from-scratch recompute.
        for p in &patterns {
            let a = got.cardinality(p).unwrap();
            let b = want.cardinality(p).unwrap();
            prop_assert!((a - b).abs() < 1e-9, "pattern count {a} vs {b}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// MVCC first-committer-wins: N writer threads stage batches against the
    /// same base epoch — disjoint private rows plus one contested row per
    /// conflict group — and commit simultaneously. Exactly one writer per
    /// group wins; every loser gets the typed retryable conflict naming the
    /// contested key; and the surviving state is bit-identical to a serial
    /// replay of the winning batches in commit (epoch) order.
    #[test]
    fn concurrent_writers_one_winner_per_contested_key(
        writers in 2usize..5,
        groups in 1usize..3,
        private_rows in 1usize..5,
        template_idx in 0usize..5,
        draw in 0u64..40,
    ) {
        const SHARED: i64 = 5_000_000;
        const PRIVATE: i64 = 6_000_000;

        let (db, mapping) = base();
        let groups = groups.min(writers);
        let session = Session::open_with(db.clone(), mapping.clone(), options(1, 1.0)).unwrap();
        let schema = SnbSchema::resolve(session.view().schema()).unwrap();
        let barrier = std::sync::Barrier::new(writers);

        // Each writer stages against epoch 0; the barrier sits between
        // staging and commit so nobody validates against an already-published
        // competitor by accident of scheduling.
        let results: Vec<(usize, Vec<Op>, std::result::Result<IngestReport, CommitError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..writers)
                    .map(|w| {
                        let (session, barrier) = (&session, &barrier);
                        scope.spawn(move || {
                            let group = w % groups;
                            let mut staged: Vec<Op> = Vec::new();
                            let mut batch = session.begin_ingest();
                            for i in 0..private_rows {
                                let row = vec![
                                    Value::Int(PRIVATE + (w * 100 + i) as i64),
                                    Value::str(format!("w{w}_r{i}")),
                                    Value::Date(18_000 + i as i64),
                                ];
                                batch.insert_row("Person", row.clone()).unwrap();
                                staged.push(Op::Insert("Person", row));
                            }
                            // The contested row: identical for every writer in
                            // the group, so the survivor is the same no matter
                            // which thread wins the race.
                            let contested = vec![
                                Value::Int(SHARED + group as i64),
                                Value::str(format!("group_{group}")),
                                Value::Date(18_500),
                            ];
                            batch.insert_row("Person", contested.clone()).unwrap();
                            staged.push(Op::Insert("Person", contested));
                            barrier.wait();
                            (group, staged, batch.commit())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

        let mut winners: Vec<(u64, &Vec<Op>)> = Vec::new();
        let mut winners_per_group = vec![0usize; groups];
        for (group, staged, result) in &results {
            match result {
                Ok(report) => {
                    winners.push((report.epoch, staged));
                    winners_per_group[*group] += 1;
                }
                Err(err) => {
                    prop_assert!(err.is_conflict(), "losers must see a retryable error: {err}");
                    match err {
                        CommitError::Conflict { table, key, committed_epoch } => {
                            prop_assert_eq!(table.as_str(), "Person");
                            prop_assert_eq!(*key, SHARED + *group as i64);
                            prop_assert!(*committed_epoch >= 1);
                        }
                        other => prop_assert!(false, "expected Conflict, got {other:?}"),
                    }
                }
            }
        }
        // Exactly one winner per conflict group, losers everywhere else.
        prop_assert_eq!(&winners_per_group, &vec![1usize; groups]);
        prop_assert_eq!(winners.len(), groups);
        prop_assert_eq!(session.epoch(), groups as u64);

        // Serial replay of the winning batches in commit order reproduces the
        // surviving state bit-for-bit — tables and query results alike.
        let oracle = Session::open_with(db.clone(), mapping.clone(), options(1, 1.0)).unwrap();
        winners.sort_by_key(|(epoch, _)| *epoch);
        for (_, staged) in &winners {
            let mut batch = oracle.begin_ingest();
            for op in staged.iter() {
                match op {
                    Op::Insert(table, row) => batch.insert_row(table, row.clone()).unwrap(),
                    Op::Delete(table, key) => batch.delete_row(table, *key).unwrap(),
                }
            }
            batch.commit().unwrap();
        }
        prop_assert_eq!(oracle.epoch(), session.epoch());
        {
            let live = session.db();
            let replayed = oracle.db();
            for name in ["Person", "Knows", "Likes"] {
                prop_assert!(
                    bit_identical(live.table(name).unwrap(), replayed.table(name).unwrap()),
                    "table {} diverges from serial replay of the winners",
                    name
                );
            }
        }
        let t = &snb_templates(&schema)[template_idx];
        let q = t.instantiate(draw).unwrap();
        for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
            let want = oracle.run(&q, mode).unwrap().table;
            let got = session.run(&q, mode).unwrap().table;
            prop_assert!(bit_identical(&want, &got), "{} run diverges", mode.name());
            let cached = session.run_cached(&q, mode).unwrap().table;
            prop_assert!(bit_identical(&want, &cached), "{} run_cached diverges", mode.name());
        }
    }
}

/// A reader pinned to an old epoch sees neither uncommitted nor
/// later-committed rows — and its query results stay frozen too.
#[test]
fn snapshot_isolation_pins_query_results() {
    let (db, mapping) = base();
    let (session, schema) = {
        let s = Session::open_with(db.clone(), mapping.clone(), options(1, 1.0)).unwrap();
        let schema = SnbSchema::resolve(s.view().schema()).unwrap();
        (s, schema)
    };
    let t = &snb_templates(&schema)[0]; // IC1-2 over Knows
    let q = t.instantiate(3).unwrap();
    let snap = session.snapshot();
    let frozen = snap.run(&q, OptimizerMode::RelGo).unwrap().table;

    // Uncommitted rows are invisible to everyone.
    let ops = gen_ops(db, 9, 10);
    let mut batch = session.begin_ingest();
    for op in &ops {
        match op {
            Op::Insert(table, row) => batch.insert_row(table, row.clone()).unwrap(),
            Op::Delete(table, key) => batch.delete_row(table, *key).unwrap(),
        }
    }
    assert!(bit_identical(
        &frozen,
        &session.run(&q, OptimizerMode::RelGo).unwrap().table
    ));
    batch.commit().unwrap();

    // The pinned snapshot still serves the old epoch, bit-for-bit — through
    // the direct, cached and oracle paths.
    assert_eq!(snap.epoch(), 0);
    assert_eq!(session.epoch(), 1);
    assert!(bit_identical(
        &frozen,
        &snap.run(&q, OptimizerMode::RelGo).unwrap().table
    ));
    assert!(bit_identical(
        &frozen,
        &snap.run_cached(&q, OptimizerMode::RelGo).unwrap().table
    ));
    assert_eq!(frozen.sorted_rows(), snap.oracle(&q).unwrap().sorted_rows());
    // A fresh snapshot sees the new epoch.
    assert_eq!(session.snapshot().epoch(), 1);
}

/// The two commit paths report what they did: incremental refresh retains
/// warm counts, the full path drops them; both serve correct plans after.
#[test]
fn commit_reports_describe_the_refresh() {
    let (db, mapping) = base();
    for (staleness, expect_full) in [(1.0, false), (0.0, true)] {
        let session =
            Session::open_with(db.clone(), mapping.clone(), options(1, staleness)).unwrap();
        let schema = SnbSchema::resolve(session.view().schema()).unwrap();
        // Warm a Likes-only count plus a TagHasType count (the delta below
        // never touches tags).
        let t = &snb_templates(&schema)[1]; // IC2 (knows + has_creator)
        session
            .run(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
            .unwrap();
        let warm = session.glogue().cached_patterns();
        assert!(warm > 0);

        let ops = gen_ops(db, 5, 6);
        let report = apply_ops(&session, &ops, 1).pop().unwrap();
        match (expect_full, report.stats) {
            (true, StatsRefresh::Full) => {
                assert_eq!(session.glogue().cached_patterns(), 0);
            }
            (false, StatsRefresh::Incremental { retained, evicted }) => {
                assert_eq!(session.glogue().cached_patterns(), retained);
                assert_eq!(retained + evicted, warm);
            }
            (want, got) => panic!("staleness {staleness}: wanted full={want}, got {got:?}"),
        }
        assert!(report.commit_time >= report.stats_time);
    }
}
