//! Morsel-parallel execution is *bit-identical* to serial execution: the
//! scheduler merges per-morsel outputs in morsel order, so thread count
//! must never change a result — not even row order. Property tests sweep
//! random graphs × random patterns × thread counts (1, 2, 8) through both
//! the indexed and the hash-fallback execution regimes, and through the
//! seed-partitioned homomorphism counter.

use proptest::prelude::*;
use relgo::common::LabelId;
use relgo::common::Schema as CommonSchema;
use relgo::core::spjm::SpjmBuilder;
use relgo::glogue::count_homomorphisms_par;
use relgo::prelude::*;
use relgo_storage::table::TableBuilder;

/// A random two-label property graph description.
#[derive(Debug, Clone)]
struct RandomGraph {
    n_a: usize,
    n_b: usize,
    /// Edges of label X: A → B.
    x_edges: Vec<(usize, usize)>,
    /// Edges of label Y: A → A.
    y_edges: Vec<(usize, usize)>,
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    (2usize..6, 2usize..5).prop_flat_map(|(n_a, n_b)| {
        let x = proptest::collection::vec((0..n_a, 0..n_b), 0..12);
        let y = proptest::collection::vec((0..n_a, 0..n_a), 0..10);
        (Just(n_a), Just(n_b), x, y).prop_map(|(n_a, n_b, x_edges, y_edges)| RandomGraph {
            n_a,
            n_b,
            x_edges,
            y_edges: y_edges.into_iter().filter(|(s, t)| s != t).collect(),
        })
    })
}

fn build_session(g: &RandomGraph, threads: usize) -> Session {
    let mut db = Database::new();
    let mut t = TableBuilder::new(
        "A",
        CommonSchema::of(&[("id", DataType::Int), ("score", DataType::Int)]),
    );
    for i in 0..g.n_a {
        t.push_row(vec![Value::Int(i as i64), Value::Int((i % 3) as i64)])
            .unwrap();
    }
    db.add_table(t.finish());
    let mut t = TableBuilder::new(
        "B",
        CommonSchema::of(&[("id", DataType::Int), ("tag", DataType::Int)]),
    );
    for i in 0..g.n_b {
        t.push_row(vec![Value::Int(i as i64), Value::Int((i % 2) as i64)])
            .unwrap();
    }
    db.add_table(t.finish());
    let mut t = TableBuilder::new(
        "X",
        CommonSchema::of(&[
            ("id", DataType::Int),
            ("a", DataType::Int),
            ("b", DataType::Int),
        ]),
    );
    for (i, &(s, d)) in g.x_edges.iter().enumerate() {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::Int(s as i64),
            Value::Int(d as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    let mut t = TableBuilder::new(
        "Y",
        CommonSchema::of(&[
            ("id", DataType::Int),
            ("s", DataType::Int),
            ("t", DataType::Int),
        ]),
    );
    for (i, &(s, d)) in g.y_edges.iter().enumerate() {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::Int(s as i64),
            Value::Int(d as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("A", "id").unwrap();
    db.set_primary_key("B", "id").unwrap();
    db.set_primary_key("X", "id").unwrap();
    db.set_primary_key("Y", "id").unwrap();
    let mapping = RGMapping::new()
        .vertex("A")
        .vertex("B")
        .edge("X", "a", "A", "b", "B")
        .edge("Y", "s", "A", "t", "A");
    let options = SessionOptions {
        threads,
        ..SessionOptions::default()
    };
    Session::open_with(db, mapping, options).expect("session")
}

/// A small random connected pattern over labels A(0)/B(1), X(0)/Y(1).
#[derive(Debug, Clone)]
enum PatternShape {
    /// A --X--> B
    EdgeX,
    /// A -Y-> A -X-> B path
    Path,
    /// (a1)-X->(b), (a2)-X->(b) wedge
    Wedge,
    /// (a1)-Y->(a2), (a1)-X->(b), (a2)-X->(b) triangle
    Triangle,
    /// A -Y-> A -Y-> A
    YPath,
}

fn pattern_of(shape: &PatternShape) -> Pattern {
    let a = LabelId(0);
    let b = LabelId(1);
    let x = LabelId(0);
    let y = LabelId(1);
    let mut pb = PatternBuilder::new();
    match shape {
        PatternShape::EdgeX => {
            let v0 = pb.vertex("a", a);
            let v1 = pb.vertex("b", b);
            pb.edge(v0, v1, x).unwrap();
        }
        PatternShape::Path => {
            let v0 = pb.vertex("a1", a);
            let v1 = pb.vertex("a2", a);
            let v2 = pb.vertex("b", b);
            pb.edge(v0, v1, y).unwrap();
            pb.edge(v1, v2, x).unwrap();
        }
        PatternShape::Wedge => {
            let v0 = pb.vertex("a1", a);
            let v1 = pb.vertex("a2", a);
            let v2 = pb.vertex("b", b);
            pb.edge(v0, v2, x).unwrap();
            pb.edge(v1, v2, x).unwrap();
        }
        PatternShape::Triangle => {
            let v0 = pb.vertex("a1", a);
            let v1 = pb.vertex("a2", a);
            let v2 = pb.vertex("b", b);
            pb.edge(v0, v1, y).unwrap();
            pb.edge(v0, v2, x).unwrap();
            pb.edge(v1, v2, x).unwrap();
        }
        PatternShape::YPath => {
            let v0 = pb.vertex("a1", a);
            let v1 = pb.vertex("a2", a);
            let v2 = pb.vertex("a3", a);
            pb.edge(v0, v1, y).unwrap();
            pb.edge(v1, v2, y).unwrap();
        }
    }
    pb.build().unwrap()
}

fn shapes() -> impl Strategy<Value = PatternShape> {
    prop_oneof![
        Just(PatternShape::EdgeX),
        Just(PatternShape::Path),
        Just(PatternShape::Wedge),
        Just(PatternShape::Triangle),
        Just(PatternShape::YPath),
    ]
}

fn query_for(pattern: Pattern, with_filter: bool) -> SpjmQuery {
    let n = pattern.vertex_count();
    let mut b = SpjmBuilder::new(pattern);
    for v in 0..n {
        b.vertex_id(v, &format!("v{v}_id"));
    }
    // Also project an attribute of vertex 0 so FilterIntoMatch has a target.
    let attr = b.vertex_column(0, 1, "v0_attr");
    if with_filter {
        b.select(ScalarExpr::col_eq(attr, 1i64));
    }
    b.build()
}

/// Row-for-row table equality — stricter than the set-equality used by the
/// oracle comparisons.
fn bit_identical(a: &Table, b: &Table) -> bool {
    a.num_rows() == b.num_rows() && (0..a.num_rows() as u32).all(|r| a.row(r) == b.row(r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_execution_is_bit_identical_to_serial(
        g in random_graph(),
        shape in shapes(),
        filt in any::<bool>(),
    ) {
        let serial = build_session(&g, 1);
        let query = query_for(pattern_of(&shape), filt);
        // RelGo exercises the indexed expansions, RelGoHash the hash-
        // fallback adjacency (flat multimap) path.
        for mode in [OptimizerMode::RelGo, OptimizerMode::RelGoHash] {
            let base = serial.run(&query, mode).unwrap();
            for threads in [2usize, 8] {
                let par = build_session(&g, threads);
                let out = par.run(&query, mode).unwrap();
                prop_assert!(
                    bit_identical(&base.table, &out.table),
                    "{:?} with {} threads diverges on {:?}",
                    mode, threads, shape
                );
            }
        }
        // And the parallel run still agrees with the oracle.
        let par = build_session(&g, 8);
        let expected = serial.oracle(&query).unwrap().sorted_rows();
        prop_assert_eq!(par.run(&query, OptimizerMode::RelGo).unwrap().table.sorted_rows(), expected);
    }

    #[test]
    fn parallel_counting_is_count_identical_to_serial(
        g in random_graph(),
        shape in shapes(),
        stride in 1usize..4,
    ) {
        let session = build_session(&g, 1);
        let pattern = pattern_of(&shape);
        let view = session.view();
        let serial = count_homomorphisms_par(&view, &pattern, stride, 1).unwrap();
        for threads in [2usize, 8] {
            let par = count_homomorphisms_par(&view, &pattern, stride, threads).unwrap();
            prop_assert_eq!(par, serial, "{} threads, stride {}", threads, stride);
        }
    }
}

#[test]
fn parallel_session_composes_with_plan_cache() {
    // run_cached on a threads>1 session: hits rebind and execute in
    // parallel; results equal the serial cold run.
    let g = RandomGraph {
        n_a: 5,
        n_b: 4,
        x_edges: vec![(0, 1), (1, 1), (2, 3), (4, 0), (3, 2), (1, 0)],
        y_edges: vec![(0, 1), (1, 2), (2, 0), (3, 4)],
    };
    let serial = build_session(&g, 1);
    let par = build_session(&g, 4);
    let query = query_for(pattern_of(&PatternShape::Triangle), false);
    let base = serial.run(&query, OptimizerMode::RelGo).unwrap();
    let cold = par.run_cached(&query, OptimizerMode::RelGo).unwrap();
    let warm = par.run_cached(&query, OptimizerMode::RelGo).unwrap();
    assert!(!cold.cached);
    assert!(warm.cached);
    assert!(bit_identical(&base.table, &cold.table));
    assert!(bit_identical(&base.table, &warm.table));
}
