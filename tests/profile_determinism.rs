//! Operator profiling is an *observer*, never a participant: turning it on
//! must not change a single result row, and the per-operator row counts it
//! reports must be a deterministic property of the plan and the data — not
//! of the thread count or the serving regime.
//!
//! Property tests sweep random SNB/JOB template draws through
//!
//! 1. `Session::run_profiled` (fresh optimization),
//! 2. `Session::run_cached_profiled` (plan-cache probe + rebind),
//! 3. `PreparedStatement::execute_profiled` (pinned skeleton), and
//! 4. `Session::explain_analyze` (the rendered-report path),
//!
//! at 1, 2, and 8 intra-query threads, and assert that every profiled
//! result is **bit-identical** to the unprofiled `Session::run` twin, and
//! that the per-operator `(kind, rows_in, rows_out)` sequence is identical
//! across all four regimes and all three thread counts.

use proptest::prelude::*;
use relgo::prelude::*;
use relgo::workloads::templates::{job_templates, snb_templates, QueryTemplate};
use std::sync::OnceLock;

const THREADS: [usize; 3] = [1, 2, 8];

fn options(threads: usize) -> SessionOptions {
    SessionOptions {
        threads,
        ..SessionOptions::default()
    }
}

/// Shared sessions (data + index + GLogue construction dominates test
/// time): one per thread count per dataset.
fn snb_sessions() -> &'static [(Session, SnbSchema); 3] {
    static CELL: OnceLock<[(Session, SnbSchema); 3]> = OnceLock::new();
    CELL.get_or_init(|| THREADS.map(|t| Session::snb_with(0.03, 42, options(t)).unwrap()))
}

fn job_sessions() -> &'static [(Session, ImdbSchema); 3] {
    static CELL: OnceLock<[(Session, ImdbSchema); 3]> = OnceLock::new();
    CELL.get_or_init(|| THREADS.map(|t| Session::imdb_with(0.05, 7, options(t)).unwrap()))
}

/// Row-for-row table equality (stricter than set equality).
fn bit_identical(a: &Table, b: &Table) -> bool {
    a.num_rows() == b.num_rows() && (0..a.num_rows() as u32).all(|r| a.row(r) == b.row(r))
}

/// The deterministic core of a [`PlanReport`]: operator kind and measured
/// cardinalities in operator-id order. Wall times, morsel counts, and
/// budget charges legitimately vary across threads and runs; row counts
/// must not.
fn op_rows(report: &relgo::prelude::PlanReport) -> Vec<(&'static str, u64, u64)> {
    report
        .ops
        .iter()
        .map(|op| (op.meta.kind, op.prof.rows_in, op.prof.rows_out))
        .collect()
}

/// Run one template draw through every profiled regime on one session;
/// returns the shared `(kind, rows_in, rows_out)` sequence for the
/// cross-thread-count comparison.
fn profiled_case(
    session: &Session,
    t: &QueryTemplate,
    draw: u64,
    mode: OptimizerMode,
) -> Vec<(&'static str, u64, u64)> {
    let name = t.name();
    let q = t.instantiate(draw).unwrap();
    let plain = session.run(&q, mode).unwrap().table;

    let (outcome, run_report) = session.run_profiled(&q, mode).unwrap();
    assert!(
        bit_identical(&plain, &outcome.table),
        "{name} draw {draw} {}: run_profiled changed the result",
        mode.name()
    );
    run_report.reconcile().unwrap();
    assert_eq!(
        run_report.root().map(|r| r.prof.rows_out),
        Some(plain.num_rows() as u64),
        "{name} draw {draw} {}: root cardinality disagrees with the result",
        mode.name()
    );

    let (outcome, cached_report) = session.run_cached_profiled(&q, mode, None).unwrap();
    assert!(
        bit_identical(&plain, &outcome.table),
        "{name} draw {draw} {}: run_cached_profiled changed the result",
        mode.name()
    );

    // Prepare from the draw-0 instance so execute_profiled really rebinds.
    let stmt = session.prepare(&t.instantiate(0).unwrap(), mode).unwrap();
    let (outcome, prepared_report) = stmt
        .execute_profiled(&t.bindings(draw).unwrap(), None)
        .unwrap();
    assert!(
        bit_identical(&plain, &outcome.table),
        "{name} draw {draw} {}: execute_profiled changed the result",
        mode.name()
    );

    let ea = session.explain_analyze(&q, mode).unwrap();
    assert!(
        bit_identical(&plain, &ea.outcome.table),
        "{name} draw {draw} {}: explain_analyze changed the result",
        mode.name()
    );

    let rows = op_rows(&run_report);
    for (regime, report) in [
        ("run_cached_profiled", &cached_report),
        ("execute_profiled", &prepared_report),
        ("explain_analyze", &ea.report),
    ] {
        assert_eq!(
            rows,
            op_rows(report),
            "{name} draw {draw} {}: {regime} measured different operator rows",
            mode.name()
        );
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn snb_profiles_are_regime_and_thread_invariant(
        idx in 0usize..5,
        draw in 0u64..60,
        relgo_mode in any::<bool>(),
    ) {
        let mode = if relgo_mode { OptimizerMode::RelGo } else { OptimizerMode::GRainDb };
        let mut per_threads = Vec::new();
        for (session, schema) in snb_sessions() {
            let t = &snb_templates(schema)[idx];
            per_threads.push(profiled_case(session, t, draw, mode));
        }
        prop_assert_eq!(&per_threads[0], &per_threads[1],
            "SNB template {} draw {}: 1- and 2-thread operator rows diverge", idx, draw);
        prop_assert_eq!(&per_threads[0], &per_threads[2],
            "SNB template {} draw {}: 1- and 8-thread operator rows diverge", idx, draw);
    }

    #[test]
    fn job_profiles_are_regime_and_thread_invariant(
        idx in 0usize..3,
        draw in 0u64..60,
        relgo_mode in any::<bool>(),
    ) {
        let mode = if relgo_mode { OptimizerMode::RelGo } else { OptimizerMode::GRainDb };
        let mut per_threads = Vec::new();
        for (session, schema) in job_sessions() {
            let t = &job_templates(schema)[idx];
            per_threads.push(profiled_case(session, t, draw, mode));
        }
        prop_assert_eq!(&per_threads[0], &per_threads[1],
            "JOB template {} draw {}: 1- and 2-thread operator rows diverge", idx, draw);
        prop_assert_eq!(&per_threads[0], &per_threads[2],
            "JOB template {} draw {}: 1- and 8-thread operator rows diverge", idx, draw);
    }
}

/// The no-profiling serving path must stay untaxed and untouched: a
/// session that has profiled once still answers unprofiled queries with
/// the same rows, and EXPLAIN (no analyze) never executes.
#[test]
fn explain_does_not_execute_and_profiling_leaves_no_residue() {
    let (session, schema) = Session::snb_with(0.03, 42, options(2)).unwrap();
    let t = &snb_templates(&schema)[0];
    let q = t.instantiate(3).unwrap();
    let before = session.run(&q, OptimizerMode::RelGo).unwrap().table;

    let rendered = session.explain(&q, OptimizerMode::RelGo).unwrap();
    assert!(rendered.contains("[op=0 est="), "{rendered}");
    assert!(
        !rendered.contains(" act="),
        "EXPLAIN must not execute: {rendered}"
    );

    let (_, report) = session.run_profiled(&q, OptimizerMode::RelGo).unwrap();
    assert_eq!(rendered.lines().count(), report.ops.len());

    let after = session.run(&q, OptimizerMode::RelGo).unwrap().table;
    assert!(bit_identical(&before, &after));
}
