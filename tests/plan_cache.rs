//! Integration tests for the plan-cache serving path: `run_cached` must be
//! row-identical to the uncached `run` path (and the naive oracle) on
//! templated workloads, the warm path must skip the optimizer, and the
//! cache must behave deterministically under multi-threaded replay,
//! invalidation and capacity pressure.

use relgo::prelude::*;
use relgo::workloads::templates::{job_templates, snb_templates};

/// `run_cached` output is row-identical to `run` and the oracle for every
/// templated SNB query, across modes including RelGo — both the priming
/// (miss) instance and the rebound (hit) instances.
#[test]
fn snb_run_cached_matches_oracle_across_modes() {
    let (session, schema) = Session::snb(0.04, 42).unwrap();
    for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
        for t in snb_templates(&schema) {
            for draw in [0, 7, 13] {
                let q = t.instantiate(draw).unwrap();
                let expected = session.oracle(&q).unwrap().sorted_rows();
                let uncached = session.run(&q, mode).unwrap();
                let cached = session.run_cached(&q, mode).unwrap();
                assert_eq!(
                    cached.table.sorted_rows(),
                    expected,
                    "{} draw {draw} vs oracle under {}",
                    t.name(),
                    mode.name()
                );
                assert_eq!(
                    cached.table.sorted_rows(),
                    uncached.table.sorted_rows(),
                    "{} draw {draw} cached vs uncached under {}",
                    t.name(),
                    mode.name()
                );
            }
        }
    }
    let m = session.cache_metrics();
    assert!(m.hits > 0, "replayed draws must hit: {m:?}");
    assert_eq!(m.rebind_failures, 0, "{m:?}");
}

/// Same row-identity contract on the templated JOB workload.
#[test]
fn job_run_cached_matches_oracle_across_modes() {
    let (session, schema) = Session::imdb(0.1, 7).unwrap();
    for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
        for t in job_templates(&schema) {
            for draw in [1, 5, 11] {
                let q = t.instantiate(draw).unwrap();
                let expected = session.oracle(&q).unwrap().sorted_rows();
                let cached = session.run_cached(&q, mode).unwrap();
                assert_eq!(
                    cached.table.sorted_rows(),
                    expected,
                    "{} draw {draw} under {}",
                    t.name(),
                    mode.name()
                );
            }
        }
    }
    assert_eq!(session.cache_metrics().rebind_failures, 0);
}

/// Warm `run_cached` skips the optimizer: summed warm optimizer time must
/// be at least 10x below the summed cold optimizer time on the same
/// repeated-template traffic.
#[test]
fn warm_cache_skips_optimizer_10x() {
    let (session, schema) = Session::snb(0.05, 42).unwrap();
    let templates = snb_templates(&schema);
    let reps = 10u64;
    let mut cold = std::time::Duration::ZERO;
    let mut warm = std::time::Duration::ZERO;
    for t in &templates {
        session
            .run_cached(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
            .unwrap();
        for draw in 1..=reps {
            let q = t.instantiate(draw).unwrap();
            cold += session.run(&q, OptimizerMode::RelGo).unwrap().opt.elapsed;
            let out = session.run_cached(&q, OptimizerMode::RelGo).unwrap();
            assert!(out.cached, "{} draw {draw} must hit", t.name());
            assert_eq!(out.opt.plans_visited, 0, "no search on the warm path");
            assert!(!out.opt.timed_out);
            warm += out.opt.elapsed;
        }
    }
    // Wall-clock ratios are only asserted in release builds, where the
    // margin over the 10x contract is wide (`fig_cache` measures 15-200x);
    // debug builds rely on the deterministic plans_visited/cached asserts
    // above so a loaded CI runner cannot flake the suite.
    if !cfg!(debug_assertions) {
        assert!(
            cold >= warm * 10,
            "warm path must be >= 10x cheaper: cold={cold:?} warm={warm:?}"
        );
    }
}

/// Deterministic hit/miss accounting under multi-threaded replay: after a
/// single-threaded priming pass (one miss per template), a concurrent
/// replay is hits-only.
#[test]
fn multithreaded_replay_reports_expected_counts() {
    let (session, schema) = Session::snb(0.03, 42).unwrap();
    let templates = snb_templates(&schema);
    for t in &templates {
        let out = session
            .run_cached(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
            .unwrap();
        assert!(!out.cached, "first instance misses");
    }
    let primed = session.cache_metrics();
    assert_eq!(primed.misses as usize, templates.len());
    assert_eq!(primed.hits, 0);

    let (threads, rounds) = (4, 5);
    let report =
        replay_concurrent(&session, &templates, OptimizerMode::RelGo, threads, rounds).unwrap();
    let expected = threads * rounds * templates.len();
    assert_eq!(report.queries, expected);
    assert_eq!(
        report.metrics.hits as usize, expected,
        "{:?}",
        report.metrics
    );
    assert_eq!(report.metrics.misses, 0, "{:?}", report.metrics);
    assert_eq!(report.cached_queries, expected);
    assert!(report.opt_time < report.elapsed * threads as u32);
}

/// Statistics rebuilds invalidate cached plans; capacity pressure evicts.
#[test]
fn invalidation_and_eviction() {
    let options = SessionOptions {
        plan_cache_shards: 1,
        plan_cache_capacity: 2,
        ..SessionOptions::default()
    };
    let (session, schema) = Session::snb_with(0.03, 42, options).unwrap();
    let templates = snb_templates(&schema);
    assert!(templates.len() > 2);
    for t in &templates {
        session
            .run_cached(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
            .unwrap();
    }
    let m = session.cache_metrics();
    assert!(
        m.evictions >= (templates.len() - 2) as u64,
        "capacity 2 must evict: {m:?}"
    );
    assert!(session.plan_cache().len() <= 2);

    // A statistics rebuild bumps the version: the next lookup misses.
    let t0 = &templates[templates.len() - 1];
    let hit = session
        .run_cached(&t0.instantiate(1).unwrap(), OptimizerMode::RelGo)
        .unwrap();
    assert!(hit.cached, "entry live before the rebuild");
    session.rebuild_statistics(2, 1).unwrap();
    assert_eq!(session.cache_metrics().invalidations, 1);
    let out = session
        .run_cached(&t0.instantiate(2).unwrap(), OptimizerMode::RelGo)
        .unwrap();
    assert!(!out.cached, "stale plan discarded after rebuild");
}

/// An ambiguous rebind (two slots shared a literal when the plan was
/// cached, then diverged) falls back to the optimizer, stays correct, and
/// is counted as a rebind failure.
#[test]
fn ambiguous_rebind_falls_back_to_optimizer() {
    use relgo::core::spjm::SpjmBuilder;
    use relgo::pattern::PatternBuilder;
    use relgo::storage::BinaryOp;

    let (session, schema) = Session::snb(0.03, 42).unwrap();
    // Template: p_id = ?a AND m_date > ?b over the has-creator edge; the
    // two slots are both Ints/Dates that can collide numerically.
    let make = |person: i64, after: i64| {
        let mut pb = PatternBuilder::new();
        let p = pb.vertex("p", schema.person);
        let m = pb.vertex("m", schema.message);
        pb.edge(m, p, schema.has_creator).unwrap();
        let mut b = SpjmBuilder::new(pb.build().unwrap());
        let p_id = b.vertex_column(p, 0, "p_id");
        let m_date = b.vertex_column(m, 2, "m_date");
        b.select(ScalarExpr::col_eq(p_id, person).and(ScalarExpr::col_cmp(
            m_date,
            BinaryOp::Gt,
            Value::Int(after),
        )));
        b.project(&[m_date]);
        b.build()
    };

    // Prime with colliding slot values (5, 5)…
    let q1 = make(5, 5);
    session.run_cached(&q1, OptimizerMode::RelGo).unwrap();
    // …then diverge: the by-value substitution is ambiguous, so run_cached
    // must fall back to the optimizer and still be correct.
    let q2 = make(3, 15_000);
    let out = session.run_cached(&q2, OptimizerMode::RelGo).unwrap();
    assert!(!out.cached, "ambiguous rebind must not serve from cache");
    assert_eq!(
        out.table.sorted_rows(),
        session.oracle(&q2).unwrap().sorted_rows()
    );
    assert!(session.cache_metrics().rebind_failures >= 1);

    // Non-colliding instances of the same template keep hitting.
    let q3 = make(4, 16_000);
    let out = session.run_cached(&q3, OptimizerMode::RelGo).unwrap();
    assert!(out.cached);
    assert_eq!(
        out.table.sorted_rows(),
        session.oracle(&q3).unwrap().sorted_rows()
    );
}

/// Isomorphic renamings of the same template (vertices inserted in a
/// different order) land on the same cache entry.
#[test]
fn renamed_isomorphic_queries_share_entries() {
    use relgo::core::spjm::SpjmBuilder;
    use relgo::pattern::PatternBuilder;

    let (session, schema) = Session::snb(0.03, 42).unwrap();
    let make = |person: i64, swapped: bool| {
        let mut pb = PatternBuilder::new();
        let (p, m) = if swapped {
            let m = pb.vertex("m", schema.message);
            let p = pb.vertex("p", schema.person);
            (p, m)
        } else {
            let p = pb.vertex("p", schema.person);
            let m = pb.vertex("m", schema.message);
            (p, m)
        };
        pb.edge(p, m, schema.likes).unwrap();
        let mut b = SpjmBuilder::new(pb.build().unwrap());
        let p_id = b.vertex_column(p, 0, "p_id");
        let m_date = b.vertex_column(m, 2, "m_date");
        b.select(ScalarExpr::col_eq(p_id, person));
        b.project(&[m_date]);
        b.build()
    };

    let before = session.cache_metrics();
    let a = session
        .run_cached(&make(5, false), OptimizerMode::RelGo)
        .unwrap();
    assert!(!a.cached);
    let b = session
        .run_cached(&make(9, true), OptimizerMode::RelGo)
        .unwrap();
    assert!(b.cached, "renamed isomorphic instance must hit");
    assert_eq!(
        b.table.sorted_rows(),
        session.oracle(&make(9, true)).unwrap().sorted_rows()
    );
    let delta = session.cache_metrics().since(&before);
    assert_eq!((delta.hits, delta.misses), (1, 1));
}
