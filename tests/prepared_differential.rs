//! Randomized differential testing of the four serving regimes.
//!
//! For random SNB/JOB template instances, the rows returned by
//!
//! 1. direct `Session::run` (fresh optimization per instance),
//! 2. `Session::run_cached` (plan-cache probe + literal rebind),
//! 3. `PreparedStatement::execute` (pinned skeleton, rebind only), and
//! 4. `PreparedStatement::execute_batch` (shared batch operator state)
//!
//! must be **bit-identical** — same rows in the same order, not just
//! set-equal — under both the RelGo and GRainDB optimizer modes, at 1 and
//! 4 intra-query threads (and across the two thread counts: morsel
//! parallelism never reorders results). The optimizer's cost model is
//! literal-independent, so every instance of a template optimizes to the
//! same skeleton; any divergence between the regimes is a rebinding or
//! batching bug.
//!
//! Plain tests below the properties cover the prepared-handle lifecycle:
//! statistics-version invalidation forces a transparent re-optimize
//! (observable through `CacheMetrics`), and LRU eviction of the backing
//! entry never breaks a pinned handle.

use proptest::prelude::*;
use relgo::prelude::*;
use relgo::workloads::templates::{job_templates, snb_templates, QueryTemplate};
use std::sync::OnceLock;

fn options(threads: usize) -> SessionOptions {
    SessionOptions {
        threads,
        ..SessionOptions::default()
    }
}

/// Shared sessions (building data + index + GLogue dominates test time):
/// one serial and one 4-thread session per dataset.
fn snb_sessions() -> &'static [(Session, SnbSchema); 2] {
    static CELL: OnceLock<[(Session, SnbSchema); 2]> = OnceLock::new();
    CELL.get_or_init(|| {
        [
            Session::snb_with(0.03, 42, options(1)).unwrap(),
            Session::snb_with(0.03, 42, options(4)).unwrap(),
        ]
    })
}

fn job_sessions() -> &'static [(Session, ImdbSchema); 2] {
    static CELL: OnceLock<[(Session, ImdbSchema); 2]> = OnceLock::new();
    CELL.get_or_init(|| {
        [
            Session::imdb_with(0.05, 7, options(1)).unwrap(),
            Session::imdb_with(0.05, 7, options(4)).unwrap(),
        ]
    })
}

/// Row-for-row table equality (stricter than set equality).
fn bit_identical(a: &Table, b: &Table) -> bool {
    a.num_rows() == b.num_rows() && (0..a.num_rows() as u32).all(|r| a.row(r) == b.row(r))
}

/// Run one template draw through all four regimes on one session and
/// assert bit-identity; returns regime 1's table for cross-session checks.
fn differential_case(
    session: &Session,
    t: &QueryTemplate,
    draw: u64,
    mode: OptimizerMode,
) -> Table {
    let name = t.name();
    let q = t.instantiate(draw).unwrap();
    let direct = session.run(&q, mode).unwrap().table;
    let cached = session.run_cached(&q, mode).unwrap().table;
    assert!(
        bit_identical(&direct, &cached),
        "{name} draw {draw} {}: run_cached diverges from run",
        mode.name()
    );
    // Prepare from the draw-0 instance so execute() really rebinds.
    let stmt = session.prepare(&t.instantiate(0).unwrap(), mode).unwrap();
    let bindings = t.bindings(draw).unwrap();
    let prepared = stmt.execute(&bindings).unwrap().table;
    assert!(
        bit_identical(&direct, &prepared),
        "{name} draw {draw} {}: prepared execute diverges from run",
        mode.name()
    );
    // A batch around the draw (3 bindings); every member must equal its
    // per-query twin.
    let batch: Vec<Vec<Value>> = (draw..draw + 3).map(|d| t.bindings(d).unwrap()).collect();
    let out = stmt.execute_batch(&batch).unwrap();
    assert_eq!(out.tables.len(), 3);
    assert!(
        bit_identical(&direct, &out.tables[0]),
        "{name} draw {draw} {}: batched result diverges from run",
        mode.name()
    );
    for (i, (b, batched)) in batch.iter().zip(&out.tables).enumerate().skip(1) {
        let single = stmt.execute(b).unwrap().table;
        assert!(
            bit_identical(&single, batched),
            "{name} draw {} {}: batch member {i} diverges from per-query execute",
            draw + i as u64,
            mode.name()
        );
    }
    direct
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn snb_regimes_are_bit_identical(
        idx in 0usize..5,
        draw in 0u64..60,
        relgo_mode in any::<bool>(),
    ) {
        let mode = if relgo_mode { OptimizerMode::RelGo } else { OptimizerMode::GRainDb };
        let mut per_threads = Vec::new();
        for (session, schema) in snb_sessions() {
            let t = &snb_templates(schema)[idx];
            per_threads.push(differential_case(session, t, draw, mode));
        }
        prop_assert!(
            bit_identical(&per_threads[0], &per_threads[1]),
            "SNB template {} draw {}: 1-thread and 4-thread results diverge", idx, draw
        );
    }

    #[test]
    fn job_regimes_are_bit_identical(
        idx in 0usize..3,
        draw in 0u64..60,
        relgo_mode in any::<bool>(),
    ) {
        let mode = if relgo_mode { OptimizerMode::RelGo } else { OptimizerMode::GRainDb };
        let mut per_threads = Vec::new();
        for (session, schema) in job_sessions() {
            let t = &job_templates(schema)[idx];
            per_threads.push(differential_case(session, t, draw, mode));
        }
        prop_assert!(
            bit_identical(&per_threads[0], &per_threads[1]),
            "JOB template {} draw {}: 1-thread and 4-thread results diverge", idx, draw
        );
    }
}

/// `rebuild_statistics` after `prepare` forces a transparent re-optimize on
/// the next `execute`, visible in the `CacheMetrics` deltas; afterwards the
/// handle is pinned again and serves rebind-only.
#[test]
fn stale_prepared_handle_reoptimizes_transparently() {
    let (session, schema) = Session::snb(0.03, 42).unwrap();
    let templates = snb_templates(&schema);
    let t = &templates[1]; // IC2
    let stmt = session
        .prepare(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
        .unwrap();
    assert!(stmt.is_current());
    let warm = stmt.execute(&t.bindings(1).unwrap()).unwrap();
    assert!(warm.cached);

    session.rebuild_statistics(2, 1).unwrap();
    assert!(!stmt.is_current(), "version bump staled the pin");

    let before = session.cache_metrics();
    let out = stmt.execute(&t.bindings(2).unwrap()).unwrap();
    assert!(!out.cached, "stale pin re-optimized");
    assert!(
        bit_identical(
            &out.table,
            &session
                .run(&t.instantiate(2).unwrap(), OptimizerMode::RelGo)
                .unwrap()
                .table
        ),
        "re-optimized result stays correct"
    );
    let delta = session.cache_metrics().since(&before);
    assert_eq!(delta.prepared_invalidations, 1, "{delta:?}");
    assert_eq!(delta.prepared_hits, 0, "{delta:?}");

    // The re-optimize re-pinned under the new version: back to rebind-only.
    assert!(stmt.is_current());
    let before = session.cache_metrics();
    let out = stmt.execute(&t.bindings(3).unwrap()).unwrap();
    assert!(out.cached);
    let delta = session.cache_metrics().since(&before);
    assert_eq!((delta.prepared_hits, delta.prepared_invalidations), (1, 0));
    // …and the fresh plan landed back in the cache for run_cached traffic.
    assert!(
        session
            .run_cached(&t.instantiate(4).unwrap(), OptimizerMode::RelGo)
            .unwrap()
            .cached
    );
}

/// Eviction of the backing LRU entry must not break a pinned handle: the
/// pin owns its skeleton.
#[test]
fn evicted_entry_does_not_break_pinned_handle() {
    let opts = SessionOptions {
        plan_cache_shards: 1,
        plan_cache_capacity: 2,
        ..SessionOptions::default()
    };
    let (session, schema) = Session::snb_with(0.03, 42, opts).unwrap();
    let templates = snb_templates(&schema);
    let t0 = &templates[0];
    let stmt = session
        .prepare(&t0.instantiate(0).unwrap(), OptimizerMode::RelGo)
        .unwrap();

    // Flood the 2-entry cache with the other templates: t0's entry is gone.
    let before = session.cache_metrics();
    for t in &templates[1..] {
        session
            .run_cached(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
            .unwrap();
    }
    assert!(
        session.cache_metrics().since(&before).evictions >= 1,
        "capacity 2 must evict"
    );

    // The handle still serves rebind-only from its pin.
    let before = session.cache_metrics();
    let out = stmt.execute(&t0.bindings(5).unwrap()).unwrap();
    assert!(out.cached, "pin survives eviction");
    assert_eq!(out.opt.plans_visited, 0);
    let delta = session.cache_metrics().since(&before);
    assert_eq!(delta.prepared_hits, 1, "{delta:?}");
    assert_eq!(delta.prepared_invalidations, 0, "{delta:?}");
    assert!(
        bit_identical(
            &out.table,
            &session
                .run(&t0.instantiate(5).unwrap(), OptimizerMode::RelGo)
                .unwrap()
                .table
        ),
        "post-eviction result stays correct"
    );
}

/// An ambiguous rebind on a prepared handle (pin slots that shared a value
/// diverge) falls back to a fresh optimization of the rebound query and
/// stays correct — mirroring `run_cached`'s rebind-failure fallback.
#[test]
fn ambiguous_prepared_rebind_falls_back() {
    use relgo::core::spjm::SpjmBuilder;
    use relgo::pattern::PatternBuilder;
    use relgo::storage::BinaryOp;

    let (session, schema) = Session::snb(0.03, 42).unwrap();
    let make = |person: i64, after: i64| {
        let mut pb = PatternBuilder::new();
        let p = pb.vertex("p", schema.person);
        let m = pb.vertex("m", schema.message);
        pb.edge(m, p, schema.has_creator).unwrap();
        let mut b = SpjmBuilder::new(pb.build().unwrap());
        let p_id = b.vertex_column(p, 0, "p_id");
        let m_date = b.vertex_column(m, 2, "m_date");
        b.select(ScalarExpr::col_eq(p_id, person).and(ScalarExpr::col_cmp(
            m_date,
            BinaryOp::Gt,
            Value::Int(after),
        )));
        b.project(&[m_date]);
        b.build()
    };
    // Prepare with colliding slot values (5, 5)…
    let stmt = session.prepare(&make(5, 5), OptimizerMode::RelGo).unwrap();
    let before = session.cache_metrics();
    // …then diverge: by-value rebinding is ambiguous, so execute must fall
    // back to the optimizer and still return the right rows.
    let out = stmt.execute(&[Value::Int(3), Value::Int(15_000)]).unwrap();
    assert!(!out.cached, "ambiguous rebind must not serve from the pin");
    let delta = session.cache_metrics().since(&before);
    assert!(delta.rebind_failures >= 1, "{delta:?}");
    let expected = session.run(&make(3, 15_000), OptimizerMode::RelGo).unwrap();
    assert!(bit_identical(&out.table, &expected.table));
}
