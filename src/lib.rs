//! # relgo-repro
//!
//! The workspace's top-level package. It owns the cross-crate integration
//! tests (`tests/`) and the runnable examples (`examples/`); the actual
//! library surface lives in the [`relgo`] facade crate — start there.

pub use relgo;
