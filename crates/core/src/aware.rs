//! The graph-aware cost-based optimizer (paper §3.1.2, §4.2.1).
//!
//! Searches the space of decomposition trees by dynamic programming over
//! connected induced vertex subsets of the pattern (states), with legal
//! transitions enumerated by `relgo-pattern::decompose`:
//!
//! * singleton states are `SCAN` of the vertex relation;
//! * `Expand` transitions become `EXPAND_EDGE`+`GET_VERTEX` (later fused by
//!   `TrimAndFuseRule`);
//! * `ExpandIntersect` transitions become the worst-case-optimal EI-join —
//!   or, when disabled (`RelGoNoEI`), a chain of one `EXPAND` plus hash
//!   joins against the remaining star edges;
//! * `BinaryJoin` transitions become `HASH_JOIN` on the common vertices.
//!
//! Cardinalities come from GLogue (exact for small sub-patterns, predicates
//! included — the high-order statistics of §4.3); costs from
//! [`CostModel`]. The optimal plan is the cheapest tree over the full
//! vertex set, which is exactly GLogS's shortest-path search expressed as a
//! subset DP.

use crate::graph_plan::{GraphOp, PlanAnnotation, StarLeg};
use relgo_common::{FxHashMap, RelGoError, Result};
use relgo_glogue::{CostModel, GLogue};
use relgo_graph::Direction;
use relgo_pattern::decompose::{
    connected_induced_subsets, contains, full_set, transitions_into, Transition, VertexSet,
};
use relgo_pattern::Pattern;

/// Configuration of the graph-aware search.
#[derive(Debug, Clone, Copy)]
pub struct AwareConfig {
    /// Whether `EXPAND_INTERSECT` may be used (`false` = RelGoNoEI).
    pub allow_ei: bool,
    /// The physical cost model (indexed or not — RelGoHash uses the
    /// unindexed model and the executor falls back to hash resolution).
    pub cost: CostModel,
}

impl Default for AwareConfig {
    fn default() -> Self {
        AwareConfig {
            allow_ei: true,
            cost: CostModel::indexed(),
        }
    }
}

#[derive(Clone)]
struct Best {
    cost: f64,
    card: f64,
    op: GraphOp,
}

/// Optimize the matching of `pattern` into a physical graph plan.
pub fn optimize_pattern(pattern: &Pattern, glogue: &GLogue, cfg: &AwareConfig) -> Result<GraphOp> {
    let n = pattern.vertex_count();
    let full = full_set(n);
    let mut best: FxHashMap<VertexSet, Best> = FxHashMap::default();
    let mut cards: FxHashMap<VertexSet, f64> = FxHashMap::default();

    let subsets = connected_induced_subsets(pattern);
    for &s in &subsets {
        let card = glogue.subset_cardinality(pattern, s)?;
        cards.insert(s, card);
    }

    for &s in &subsets {
        let card = cards[&s];
        if s.count_ones() == 1 {
            let v = s.trailing_zeros() as usize;
            let label = pattern.vertex(v).label;
            let table_rows = glogue.view().vertex_count(label) as f64;
            let cost = cfg.cost.scan(table_rows);
            best.insert(
                s,
                Best {
                    cost,
                    card,
                    op: GraphOp::ScanVertex {
                        v,
                        predicate: pattern.vertex(v).predicate.clone(),
                        ann: PlanAnnotation {
                            est_card: card,
                            est_cost: cost,
                        },
                    },
                },
            );
            continue;
        }
        let mut chosen: Option<Best> = None;
        for t in transitions_into(pattern, s) {
            let candidate = match t {
                Transition::Expand {
                    from,
                    new_vertex,
                    edge,
                } => {
                    let b = &best[&from];
                    expand_candidate(pattern, glogue, cfg, b, from, new_vertex, edge, card)?
                }
                Transition::ExpandIntersect {
                    from,
                    new_vertex,
                    edges,
                } => {
                    let b = best[&from].clone();
                    if cfg.allow_ei {
                        ei_candidate(pattern, glogue, cfg, &b, new_vertex, &edges, card)?
                    } else {
                        no_ei_candidate(pattern, glogue, cfg, &b, from, new_vertex, &edges, card)?
                    }
                }
                Transition::BinaryJoin { left, right } => {
                    let bl = &best[&left];
                    let br = &best[&right];
                    let join_cost = cfg.cost.hash_join(bl.card, br.card);
                    let cost = bl.cost + br.cost + join_cost;
                    let on_vertices: Vec<usize> =
                        (0..n).filter(|&v| contains(left & right, v)).collect();
                    Best {
                        cost,
                        card,
                        op: GraphOp::JoinSub {
                            left: Box::new(bl.op.clone()),
                            right: Box::new(br.op.clone()),
                            on_vertices,
                            on_edges: Vec::new(),
                            ann: PlanAnnotation {
                                est_card: card,
                                est_cost: cost,
                            },
                        },
                    }
                }
            };
            if chosen.as_ref().is_none_or(|c| candidate.cost < c.cost) {
                chosen = Some(candidate);
            }
        }
        let chosen = chosen
            .ok_or_else(|| RelGoError::plan(format!("no decomposition found for subset {s:#b}")))?;
        best.insert(s, chosen);
    }

    best.remove(&full)
        .map(|b| b.op)
        .ok_or_else(|| RelGoError::plan("pattern has no connected decomposition"))
}

/// Direction of traversal for `edge` starting at bound vertex `from_v`.
fn traversal(pattern: &Pattern, edge: usize, from_v: usize) -> (usize, Direction) {
    let e = pattern.edge(edge);
    if e.src == from_v {
        (e.dst, Direction::Out)
    } else {
        (e.src, Direction::In)
    }
}

#[allow(clippy::too_many_arguments)]
fn expand_candidate(
    pattern: &Pattern,
    glogue: &GLogue,
    cfg: &AwareConfig,
    b: &Best,
    _from: VertexSet,
    new_vertex: usize,
    edge: usize,
    card: f64,
) -> Result<Best> {
    let e = pattern.edge(edge);
    let from_v = if e.src == new_vertex { e.dst } else { e.src };
    let (to, dir) = traversal(pattern, edge, from_v);
    debug_assert_eq!(to, new_vertex);
    let d_avg = glogue.avg_degree(e.label, dir);
    let edge_rows = glogue.view().edge_count(e.label) as f64;
    let step = cfg.cost.expand(b.card, d_avg, edge_rows);
    let cost = b.cost + step;
    Ok(Best {
        cost,
        card,
        op: GraphOp::Expand {
            input: Box::new(b.op.clone()),
            from: from_v,
            edge,
            to: new_vertex,
            dir,
            emit_edge: true,
            edge_predicate: e.predicate.clone(),
            vertex_predicate: pattern.vertex(new_vertex).predicate.clone(),
            ann: PlanAnnotation {
                est_card: card,
                est_cost: cost,
            },
        },
    })
}

fn ei_candidate(
    pattern: &Pattern,
    glogue: &GLogue,
    cfg: &AwareConfig,
    b: &Best,
    new_vertex: usize,
    edges: &[usize],
    card: f64,
) -> Result<Best> {
    let mut legs = Vec::with_capacity(edges.len());
    let mut degrees = Vec::with_capacity(edges.len());
    for &ei in edges {
        let e = pattern.edge(ei);
        let from_v = if e.src == new_vertex { e.dst } else { e.src };
        let dir = if e.src == from_v {
            Direction::Out
        } else {
            Direction::In
        };
        degrees.push(glogue.avg_degree(e.label, dir));
        legs.push(StarLeg {
            from: from_v,
            edge: ei,
            dir,
        });
    }
    let step = cfg.cost.expand_intersect(b.card, &degrees, card);
    let cost = b.cost + step;
    Ok(Best {
        cost,
        card,
        op: GraphOp::ExpandIntersect {
            input: Box::new(b.op.clone()),
            legs,
            to: new_vertex,
            emit_edges: true,
            vertex_predicate: pattern.vertex(new_vertex).predicate.clone(),
            ann: PlanAnnotation {
                est_card: card,
                est_cost: cost,
            },
        },
    })
}

/// The RelGoNoEI fallback for a complete star: expand the first leg, then
/// close each remaining leg with a hash join against its edge relation —
/// "a traditional multiple join" (§5.2).
#[allow(clippy::too_many_arguments)]
fn no_ei_candidate(
    pattern: &Pattern,
    glogue: &GLogue,
    cfg: &AwareConfig,
    b: &Best,
    _from: VertexSet,
    new_vertex: usize,
    edges: &[usize],
    card: f64,
) -> Result<Best> {
    // Expand through the first leg.
    let first = expand_candidate(pattern, glogue, cfg, b, 0, new_vertex, edges[0], {
        // Cardinality after binding only the first star edge: estimated via
        // the average degree of that edge (partial star is not induced, so
        // GLogue's subset lookup does not apply).
        let e = pattern.edge(edges[0]);
        let from_v = if e.src == new_vertex { e.dst } else { e.src };
        let dir = if e.src == from_v {
            Direction::Out
        } else {
            Direction::In
        };
        b.card * glogue.avg_degree(e.label, dir).max(1e-3)
    })?;
    let mut acc = first;
    for (i, &ei) in edges.iter().enumerate().skip(1) {
        let e = pattern.edge(ei);
        let from_v = if e.src == new_vertex { e.dst } else { e.src };
        let edge_rows = glogue.view().edge_count(e.label) as f64;
        let scan = GraphOp::ScanEdge {
            e: ei,
            predicate: e.predicate.clone(),
            ann: PlanAnnotation {
                est_card: edge_rows,
                est_cost: edge_rows,
            },
        };
        let step = cfg.cost.hash_join(acc.card, edge_rows);
        let cost = acc.cost + step + edge_rows;
        let out_card = if i + 1 == edges.len() { card } else { acc.card };
        acc = Best {
            cost,
            card: out_card,
            op: GraphOp::JoinSub {
                left: Box::new(acc.op),
                right: Box::new(scan),
                on_vertices: vec![from_v, new_vertex],
                on_edges: Vec::new(),
                ann: PlanAnnotation {
                    est_card: out_card,
                    est_cost: cost,
                },
            },
        };
    }
    acc.card = card;
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::{DataType, LabelId, Value};
    use relgo_graph::{GraphView, RGMapping};
    use relgo_pattern::PatternBuilder;
    use relgo_storage::table::table_of;
    use relgo_storage::{Database, ScalarExpr};
    use std::sync::Arc;

    fn fig2_glogue() -> GLogue {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![1.into(), "Tom".into()],
                vec![2.into(), "Bob".into()],
                vec![3.into(), "David".into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
                ("date", DataType::Date),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into(), Value::Date(31)],
                vec![2.into(), 2.into(), 100.into(), Value::Date(28)],
                vec![3.into(), 2.into(), 200.into(), Value::Date(20)],
                vec![4.into(), 3.into(), 200.into(), Value::Date(21)],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 2.into(), 1.into()],
                vec![3.into(), 2.into(), 3.into()],
                vec![4.into(), 3.into(), 2.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db.set_primary_key("Knows", "knows_id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");
        let mut g = GraphView::build(&mut db, mapping).unwrap();
        g.build_index().unwrap();
        GLogue::new(Arc::new(g), 3, 1).unwrap()
    }

    fn triangle() -> relgo_pattern::Pattern {
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let p2 = b.vertex("p2", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p1, p2, LabelId(1)).unwrap();
        b.edge(p1, m, LabelId(0)).unwrap();
        b.edge(p2, m, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn triangle_plan_uses_expand_intersect() {
        let gl = fig2_glogue();
        let plan = optimize_pattern(&triangle(), &gl, &AwareConfig::default()).unwrap();
        assert!(plan.uses_intersect(), "plan: {plan:?}");
        assert!(plan.annotation().est_card > 0.0);
    }

    #[test]
    fn no_ei_config_avoids_intersect() {
        let gl = fig2_glogue();
        let cfg = AwareConfig {
            allow_ei: false,
            cost: CostModel::indexed(),
        };
        let plan = optimize_pattern(&triangle(), &gl, &cfg).unwrap();
        assert!(!plan.uses_intersect());
        // The triangle now needs a hash join to close the cycle.
        assert!(plan.uses_join(), "plan: {plan:?}");
    }

    #[test]
    fn single_vertex_pattern_is_a_scan() {
        let gl = fig2_glogue();
        let mut b = PatternBuilder::new();
        b.vertex("p", LabelId(0));
        let p = b.build().unwrap();
        let plan = optimize_pattern(&p, &gl, &AwareConfig::default()).unwrap();
        assert!(matches!(plan, GraphOp::ScanVertex { v: 0, .. }));
    }

    #[test]
    fn predicated_vertex_becomes_cheap_entry_point() {
        let gl = fig2_glogue();
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let p2 = b.vertex("p2", LabelId(0));
        b.edge(p1, p2, LabelId(1)).unwrap();
        b.vertex_predicate(p1, ScalarExpr::col_eq(1, "Tom"));
        let p = b.build().unwrap();
        let plan = optimize_pattern(&p, &gl, &AwareConfig::default()).unwrap();
        // The plan must start scanning at the predicated vertex (card 1)
        // and expand outward.
        match &plan {
            GraphOp::Expand { input, from, .. } => {
                assert_eq!(*from, 0, "expansion starts at Tom");
                match input.as_ref() {
                    GraphOp::ScanVertex {
                        v: 0, predicate, ..
                    } => {
                        assert!(predicate.is_some())
                    }
                    other => panic!("unexpected entry {other:?}"),
                }
            }
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn costs_accumulate_monotonically() {
        let gl = fig2_glogue();
        let plan = optimize_pattern(&triangle(), &gl, &AwareConfig::default()).unwrap();
        fn check(op: &GraphOp) -> f64 {
            let own = op.annotation().est_cost;
            let child_max = match op {
                GraphOp::ScanVertex { .. } | GraphOp::ScanEdge { .. } => 0.0,
                GraphOp::Expand { input, .. }
                | GraphOp::ExpandIntersect { input, .. }
                | GraphOp::FilterVertex { input, .. } => check(input),
                GraphOp::JoinSub { left, right, .. } => check(left).max(check(right)),
            };
            assert!(
                own >= child_max,
                "cumulative cost must not decrease: {own} < {child_max}"
            );
            own
        }
        check(&plan);
    }
}
