//! # relgo-core
//!
//! The RelGo converged relational-graph optimizer — the primary contribution
//! of *"Towards a Converged Relational-Graph Optimization Framework"*
//! (Lou et al., SIGMOD 2024), reimplemented from scratch.
//!
//! Pipeline (paper Fig. 6):
//!
//! 1. An [`spjm::SpjmQuery`] captures
//!    `Q = π_A(σ_Ψ(R₁ ⋈ … ⋈ R_m ⋈ π̂_A*(M_G(P))))` — the SPJM skeleton.
//! 2. Heuristic rules rewrite across the relational/graph boundary:
//!    [`rules::filter_into_match`] pushes σ predicates into the pattern,
//!    [`rules::trim_and_fuse`] drops unused edge outputs and fuses
//!    `EXPAND_EDGE` + `GET_VERTEX` into `EXPAND`.
//! 3. The **graph optimizer** ([`aware`]) searches decomposition trees with
//!    GLogue cardinalities and the §4.2.1 cost model, producing a
//!    worst-case-optimal-friendly [`graph_plan::GraphOp`] tree, encapsulated
//!    in `SCAN_GRAPH_TABLE`.
//! 4. The **relational optimizer** composes the remaining SPJ operators
//!    around it ([`rel_plan::RelOp`]).
//!
//! The graph-agnostic baselines of §4.1 ([`agnostic`]) share the same IRs:
//! the Lemma-1 transformation turns `M(P)` into a join tree over vertex and
//! edge relations, ordered by a greedy (DuckDB-like), DP (Umbra-like) or
//! exhaustive (Calcite-like) join-order optimizer, optionally upgraded with
//! GRainDB predefined joins.

pub mod agnostic;
pub mod aware;
pub mod convert;
pub mod graph_plan;
pub mod op_meta;
pub mod optimizer;
pub mod param;
pub mod rel_plan;
pub mod rules;
pub mod spjm;

pub use convert::{spj_to_spjm, SpjJoin, SpjQuery, SpjTable};
pub use graph_plan::{GraphOp, PatternElem};
pub use op_meta::OperatorMeta;
pub use optimizer::{optimize, OptStats, OptimizerMode, PlannerContext};
pub use param::{
    bind_query, binding_signature, parameterize, rebind_plan, validate_bindings, ParamQuery,
    PlanKey,
};
pub use rel_plan::{PhysicalPlan, RelOp};
pub use spjm::{AggSpec, AttrRef, GraphColumn, SpjmBuilder, SpjmQuery};
