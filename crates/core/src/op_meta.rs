//! Plan-time operator metadata: every physical operator — relational and
//! graph — stamped with a stable operator id and the optimizer's estimated
//! cardinality/cost, collected in **pre-order** (node before children;
//! join children left then right).
//!
//! Pre-order is the one traversal every consumer shares: the EXPLAIN
//! renderers emit exactly one line per operator in this order, and the
//! executors assign profiling ids by reserving the next id at operator
//! entry before recursing — so plan-time metas, rendered lines, and
//! run-time [`OperatorProfile`]s line up by index with no id fields stored
//! in the plan (ids survive plan cloning and rebinding by construction).
//!
//! [`OperatorProfile`]: ../relgo_exec/profile/struct.OperatorProfile.html

use crate::graph_plan::GraphOp;
use crate::rel_plan::{PhysicalPlan, RelOp};
use relgo_storage::Database;

/// Plan-time metadata of one physical operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorMeta {
    /// Stable operator id: the operator's pre-order position in the plan.
    pub op_id: usize,
    /// Operator kind (`"hash_join"`, `"expand"`, …) — the `op` label of
    /// the operator metric series.
    pub kind: &'static str,
    /// The optimizer's estimated output cardinality.
    pub est_rows: f64,
    /// Cumulative estimated cost up to and including this operator.
    pub est_cost: f64,
    /// Op-ids of the direct inputs, in visit order (empty for leaves).
    pub inputs: Vec<usize>,
}

impl GraphOp {
    /// Operator-kind label of this node.
    pub fn kind(&self) -> &'static str {
        match self {
            GraphOp::ScanVertex { .. } => "scan_vertex",
            GraphOp::ScanEdge { .. } => "scan_edge",
            GraphOp::Expand { .. } => "expand",
            GraphOp::ExpandIntersect { .. } => "expand_intersect",
            GraphOp::JoinSub { .. } => "join_sub",
            GraphOp::FilterVertex { .. } => "filter_vertex",
        }
    }

    /// Append this sub-plan's metas in pre-order; returns this node's id.
    pub(crate) fn collect_metas(&self, out: &mut Vec<OperatorMeta>) -> usize {
        let id = out.len();
        let ann = self.annotation();
        out.push(OperatorMeta {
            op_id: id,
            kind: self.kind(),
            est_rows: ann.est_card,
            est_cost: ann.est_cost,
            inputs: Vec::new(),
        });
        let inputs = match self {
            GraphOp::ScanVertex { .. } | GraphOp::ScanEdge { .. } => Vec::new(),
            GraphOp::Expand { input, .. }
            | GraphOp::ExpandIntersect { input, .. }
            | GraphOp::FilterVertex { input, .. } => vec![input.collect_metas(out)],
            GraphOp::JoinSub { left, right, .. } => {
                let l = left.collect_metas(out);
                let r = right.collect_metas(out);
                vec![l, r]
            }
        };
        out[id].inputs = inputs;
        id
    }
}

impl RelOp {
    /// Operator-kind label of this node.
    pub fn kind(&self) -> &'static str {
        match self {
            RelOp::ScanGraphTable { .. } => "scan_graph_table",
            RelOp::ScanTable { .. } => "scan_table",
            RelOp::HashJoin { .. } => "hash_join",
            RelOp::Filter { .. } => "filter",
            RelOp::Project { .. } => "project",
            RelOp::Aggregate { .. } => "aggregate",
            RelOp::Distinct { .. } => "distinct",
            RelOp::Sort { .. } => "sort",
            RelOp::Limit { .. } => "limit",
        }
    }

    /// Append this sub-tree's metas in pre-order; returns this node's id.
    ///
    /// Graph operators carry the optimizer's own annotations; the
    /// relational shell above them is estimated with simple deterministic
    /// rules (scans from catalog row counts, a fixed ⅓ filter selectivity,
    /// joins as max of their inputs) — the shell is thin, so coarse rules
    /// keep the Q-error signal focused on the graph estimates the paper's
    /// optimizer actually produces.
    pub(crate) fn collect_metas(&self, db: &Database, out: &mut Vec<OperatorMeta>) -> usize {
        let id = out.len();
        out.push(OperatorMeta {
            op_id: id,
            kind: self.kind(),
            est_rows: 0.0,
            est_cost: 0.0,
            inputs: Vec::new(),
        });
        let (est_rows, est_cost, inputs) = match self {
            RelOp::ScanGraphTable { graph, .. } => {
                let g = graph.collect_metas(out);
                let est = out[g].est_rows;
                (est, out[g].est_cost + est, vec![g])
            }
            RelOp::ScanTable { table, predicate } => {
                let rows = db.table(table).map(|t| t.num_rows() as f64).unwrap_or(0.0);
                let est = if predicate.is_some() {
                    rows / 3.0
                } else {
                    rows
                };
                (est, rows, Vec::new())
            }
            RelOp::HashJoin { left, right, .. } => {
                let l = left.collect_metas(db, out);
                let r = right.collect_metas(db, out);
                let est = out[l].est_rows.max(out[r].est_rows);
                (est, out[l].est_cost + out[r].est_cost + est, vec![l, r])
            }
            RelOp::Filter { input, .. } => {
                let c = input.collect_metas(db, out);
                let est = out[c].est_rows / 3.0;
                (est, out[c].est_cost + out[c].est_rows, vec![c])
            }
            RelOp::Project { input, .. }
            | RelOp::Distinct { input }
            | RelOp::Sort { input, .. } => {
                let c = input.collect_metas(db, out);
                let est = out[c].est_rows;
                (est, out[c].est_cost + est, vec![c])
            }
            RelOp::Aggregate { input, .. } => {
                let c = input.collect_metas(db, out);
                (1.0, out[c].est_cost + out[c].est_rows, vec![c])
            }
            RelOp::Limit { input, n } => {
                let c = input.collect_metas(db, out);
                let est = out[c].est_rows.min(*n as f64);
                (est, out[c].est_cost + est, vec![c])
            }
        };
        let meta = &mut out[id];
        meta.est_rows = est_rows;
        meta.est_cost = est_cost;
        meta.inputs = inputs;
        id
    }
}

impl PhysicalPlan {
    /// Every operator's plan-time metadata in pre-order — index `i` is
    /// op-id `i`, and the EXPLAIN rendering's line `i` describes the same
    /// operator. `db` resolves base-table cardinalities for the relational
    /// scan estimates.
    pub fn operator_metas(&self, db: &Database) -> Vec<OperatorMeta> {
        let mut out = Vec::new();
        self.root.collect_metas(db, &mut out);
        out
    }

    /// The EXPLAIN rendering with a per-operator suffix: `annotate(op_id)`
    /// is appended to line `op_id` (lines and op-ids share pre-order).
    pub fn explain_annotated(&self, mut annotate: impl FnMut(usize) -> String) -> String {
        let mut out = String::new();
        for (i, line) in self.explain().lines().enumerate() {
            out.push_str(line);
            out.push_str(&annotate(i));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_plan::PlanAnnotation;
    use crate::spjm::{AttrRef, GraphColumn, PatternElemRef};
    use relgo_common::LabelId;
    use relgo_pattern::PatternBuilder;

    fn pattern() -> relgo_pattern::Pattern {
        let mut b = PatternBuilder::new();
        let a = b.vertex("a", LabelId(0));
        let c = b.vertex("c", LabelId(0));
        b.edge(a, c, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    fn plan() -> PhysicalPlan {
        let graph = GraphOp::Expand {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: PlanAnnotation {
                    est_card: 10.0,
                    est_cost: 10.0,
                },
            }),
            from: 0,
            edge: 0,
            to: 1,
            dir: relgo_graph::Direction::Out,
            emit_edge: false,
            edge_predicate: None,
            vertex_predicate: None,
            ann: PlanAnnotation {
                est_card: 40.0,
                est_cost: 50.0,
            },
        };
        PhysicalPlan {
            pattern: pattern(),
            root: RelOp::Distinct {
                input: Box::new(RelOp::ScanGraphTable {
                    graph,
                    columns: vec![GraphColumn {
                        element: PatternElemRef::Vertex(0),
                        attr: AttrRef::Id,
                        alias: "a_id".into(),
                    }],
                }),
            },
        }
    }

    #[test]
    fn metas_are_preorder_and_match_explain_lines() {
        let plan = plan();
        let db = Database::new();
        let metas = plan.operator_metas(&db);
        let kinds: Vec<&str> = metas.iter().map(|m| m.kind).collect();
        assert_eq!(
            kinds,
            vec!["distinct", "scan_graph_table", "expand", "scan_vertex"]
        );
        for (i, m) in metas.iter().enumerate() {
            assert_eq!(m.op_id, i, "op_id is the pre-order index");
        }
        // One EXPLAIN line per operator, in the same order.
        assert_eq!(plan.explain().lines().count(), metas.len());
        // Child links point at the right nodes.
        assert_eq!(metas[0].inputs, vec![1]);
        assert_eq!(metas[1].inputs, vec![2]);
        assert_eq!(metas[2].inputs, vec![3]);
        assert!(metas[3].inputs.is_empty());
        // Graph estimates come straight from the optimizer annotations.
        assert_eq!(metas[2].est_rows, 40.0);
        assert_eq!(metas[3].est_rows, 10.0);
        assert_eq!(metas[1].est_rows, 40.0);
    }

    #[test]
    fn explain_annotated_suffixes_every_line_in_order() {
        let plan = plan();
        let s = plan.explain_annotated(|id| format!("  <op={id}>"));
        for (i, line) in s.lines().enumerate() {
            assert!(line.ends_with(&format!("<op={i}>")), "line {i}: {line}");
        }
        assert_eq!(s.lines().count(), 4);
    }
}
