//! Parameterized query templates (the plan-cache front end).
//!
//! Production traffic is dominated by query *templates* that differ only in
//! comparison literals (`person_id = ?`, `creation_date < ?`). This module
//! gives `SpjmQuery` a parameterized view:
//!
//! * [`parameterize`] lifts comparison literals into **parameter slots** and
//!   renders the rest of the query — pattern elements renamed through
//!   [`relgo_pattern::canonical_form`] — into an isomorphism-invariant
//!   template descriptor. Together with the [`OptimizerMode`] and the
//!   parameter-slot signature this forms [`PlanKey`], under which renamed
//!   queries with different constants share one plan-cache entry.
//! * [`rebind_plan`] takes a cached [`PhysicalPlan`] skeleton (optimized for
//!   one set of literals) and substitutes fresh bindings into every
//!   predicate — pattern constraints, graph operators and relational
//!   operators alike — without re-running the optimizer.
//!
//! A literal is a parameter slot iff it is the literal side of a comparison
//! whose other side is a non-literal expression (`col = lit`, `lit < expr`).
//! Everything else — `IN`-list members, `STARTS WITH` prefixes, standalone
//! boolean literals — is part of the template structure. Rebinding matches
//! plan literals against the cached instance's slot values; if two slots
//! shared a value but now diverge (or a slot value cannot be found in the
//! plan), rebinding reports an error and the caller falls back to a full
//! optimizer run, counting a *rebind failure*.

use crate::optimizer::OptimizerMode;
use crate::rel_plan::{PhysicalPlan, RelOp};
use crate::spjm::{AttrRef, PatternElemRef, SpjmQuery};
use relgo_common::fxhash::{combine, hash_u64, FxHasher};
use relgo_common::{RelGoError, Result, Value};
use relgo_storage::ScalarExpr;
use std::fmt::Write as _;
use std::hash::Hasher as _;

/// The parameterized view of one query instance: the template descriptor
/// (shape), the canonical pattern fingerprint, and the literal bindings.
#[derive(Debug, Clone)]
pub struct ParamQuery {
    /// Isomorphism-invariant pattern fingerprint (via `canonical_form`).
    pub canon_fingerprint: u64,
    /// The full template descriptor: every structural aspect of the query
    /// with parameter slots rendered as `?N`. Compared verbatim on cache
    /// hits, so hash collisions cannot alias distinct templates.
    pub shape: String,
    /// Literal bindings, in slot order.
    pub params: Vec<Value>,
    /// One variant tag per slot (`i`/`f`/`s`/`b`/`d`/`n`).
    pub slot_sig: String,
}

impl ParamQuery {
    /// The cache key of this instance under `mode` (bindings excluded).
    pub fn key(&self, mode: OptimizerMode) -> PlanKey {
        PlanKey {
            mode,
            canon_fingerprint: self.canon_fingerprint,
            shape: self.shape.clone(),
            slot_sig: self.slot_sig.clone(),
        }
    }
}

/// A plan-cache key: `(mode, canonical pattern fingerprint, relational
/// shape, parameter-slot signature)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The optimizer that produced (or would produce) the plan.
    pub mode: OptimizerMode,
    /// Isomorphism-invariant pattern fingerprint.
    pub canon_fingerprint: u64,
    /// The template descriptor (see [`ParamQuery::shape`]).
    pub shape: String,
    /// Parameter-slot signature.
    pub slot_sig: String,
}

impl PlanKey {
    /// A stable 64-bit hash (shard selection).
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(self.canon_fingerprint);
        h.write(self.shape.as_bytes());
        h.write(self.slot_sig.as_bytes());
        combine(hash_u64(self.mode as u64), h.finish())
    }
}

/// The one-character signature tag of a slot value (`i`/`f`/`s`/`b`/`d`/`n`).
pub fn slot_tag(v: &Value) -> char {
    match v {
        Value::Null => 'n',
        Value::Int(_) => 'i',
        Value::Float(_) => 'f',
        Value::Str(_) => 's',
        Value::Bool(_) => 'b',
        Value::Date(_) => 'd',
    }
}

/// The slot signature of a binding vector (one tag per value, in order).
pub fn binding_signature(values: &[Value]) -> String {
    values.iter().map(slot_tag).collect()
}

/// Validate a fresh binding vector against a template's slot signature:
/// the arity and every per-slot type tag must match. This is the only
/// front-end check a prepared statement performs — no parse, no
/// re-parameterization.
pub fn validate_bindings(slot_sig: &str, bindings: &[Value]) -> Result<()> {
    if slot_sig.len() != bindings.len() {
        return Err(RelGoError::query(format!(
            "binding arity mismatch: template has {} slot(s), got {} binding(s)",
            slot_sig.len(),
            bindings.len()
        )));
    }
    for (i, (expected, v)) in slot_sig.chars().zip(bindings).enumerate() {
        let got = slot_tag(v);
        if got != expected {
            return Err(RelGoError::query(format!(
                "binding type mismatch at slot {i}: template expects '{expected}', got '{got}' ({v})"
            )));
        }
    }
    Ok(())
}

/// Render a structural string into the shape with Rust-style escaping —
/// free-form text must not be able to forge the descriptor's delimiters
/// (two distinct templates rendering one shape would alias cache entries).
fn render_str(out: &mut String, s: &str) {
    let _ = write!(out, "{s:?}");
}

/// Render a structural literal type-injectively: `Value`'s `Display` prints
/// `Int(1)` and `Float(1.0)` identically, so each variant gets its tag
/// prefix — otherwise two differently-typed templates could share a shape.
fn render_value(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => render_str(out, s),
        other => {
            let _ = write!(out, "{}{}", slot_tag(other), other);
        }
    }
}

/// Is `e` a literal? (Slot detection: `Cmp` with exactly one literal side.)
fn is_lit(e: &ScalarExpr) -> bool {
    matches!(e, ScalarExpr::Lit(_))
}

/// Render `expr` into `out` with parameter-position literals lifted into
/// `params` and printed as `?N`.
fn render_template(expr: &ScalarExpr, out: &mut String, params: &mut Vec<Value>) {
    match expr {
        ScalarExpr::Col(i) => {
            let _ = write!(out, "${i}");
        }
        ScalarExpr::Lit(v) => render_value(out, v),
        ScalarExpr::Cmp(op, l, r) => {
            match (is_lit(l), is_lit(r)) {
                (false, true) => {
                    render_template(l, out, params);
                    let _ = write!(out, " {op} ?{}", params.len());
                    if let ScalarExpr::Lit(v) = r.as_ref() {
                        params.push(v.clone());
                    }
                }
                (true, false) => {
                    let _ = write!(out, "?{} {op} ", params.len());
                    if let ScalarExpr::Lit(v) = l.as_ref() {
                        params.push(v.clone());
                    }
                    render_template(r, out, params);
                }
                _ => {
                    // Two literals or two expressions: structural.
                    render_template(l, out, params);
                    let _ = write!(out, " {op} ");
                    render_template(r, out, params);
                }
            }
        }
        ScalarExpr::And(l, r) => {
            out.push('(');
            render_template(l, out, params);
            out.push_str(" AND ");
            render_template(r, out, params);
            out.push(')');
        }
        ScalarExpr::Or(l, r) => {
            out.push('(');
            render_template(l, out, params);
            out.push_str(" OR ");
            render_template(r, out, params);
            out.push(')');
        }
        ScalarExpr::Not(e) => {
            out.push_str("NOT ");
            render_template(e, out, params);
        }
        ScalarExpr::StartsWith(e, p) => {
            render_template(e, out, params);
            out.push_str(" STARTS WITH ");
            render_str(out, p);
        }
        ScalarExpr::Contains(e, p) => {
            render_template(e, out, params);
            out.push_str(" CONTAINS ");
            render_str(out, p);
        }
        ScalarExpr::IsNull(e) => {
            render_template(e, out, params);
            out.push_str(" IS NULL");
        }
        ScalarExpr::InList(e, list) => {
            render_template(e, out, params);
            out.push_str(" IN (");
            for (i, v) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_value(out, v);
            }
            out.push(')');
        }
    }
}

/// Compute the parameterized view of `query`.
///
/// Slot order is deterministic: the relational selection first (expression
/// tree order), then pattern vertex predicates in canonical vertex order,
/// then pattern edge predicates in canonical edge order — so two isomorphic
/// instances of one template produce positionally aligned bindings.
pub fn parameterize(query: &SpjmQuery) -> ParamQuery {
    let form = relgo_pattern::canonical_form(&query.pattern);
    let mut shape = String::with_capacity(256);
    let mut params = Vec::new();

    let _ = write!(shape, "sem:{:?};", query.pattern.semantics());

    // COLUMNS in list order, elements renamed canonically. List order is
    // semantic (it fixes the global column numbering), so it stays as-is.
    shape.push_str("cols:");
    for c in &query.columns {
        match c.element {
            PatternElemRef::Vertex(v) => {
                let _ = write!(shape, "v{}", form.vertex_perm[v]);
            }
            PatternElemRef::Edge(e) => {
                let _ = write!(shape, "e{}", form.edge_perm[e]);
            }
        }
        match c.attr {
            AttrRef::Id => shape.push_str(".id"),
            AttrRef::Column(i) => {
                let _ = write!(shape, ".{i}");
            }
        }
        shape.push_str(" AS ");
        render_str(&mut shape, &c.alias);
        shape.push(';');
    }

    let _ = write!(shape, "tables:{:?};", query.tables);
    let _ = write!(shape, "join:{:?};", query.join_on);

    shape.push_str("sel:");
    if let Some(sel) = &query.selection {
        render_template(sel, &mut shape, &mut params);
    }
    shape.push(';');

    // Pattern predicates in canonical element order.
    let mut by_canon: Vec<(usize, usize)> = (0..query.pattern.vertex_count())
        .map(|v| (form.vertex_perm[v], v))
        .collect();
    by_canon.sort_unstable();
    shape.push_str("vpred:");
    for &(canon, old) in &by_canon {
        if let Some(p) = &query.pattern.vertex(old).predicate {
            let _ = write!(shape, "v{canon}[");
            render_template(p, &mut shape, &mut params);
            shape.push_str("];");
        }
    }
    let mut edges_by_canon: Vec<(usize, usize)> = (0..query.pattern.edge_count())
        .map(|e| (form.edge_perm[e], e))
        .collect();
    edges_by_canon.sort_unstable();
    shape.push_str("epred:");
    for &(canon, old) in &edges_by_canon {
        if let Some(p) = &query.pattern.edge(old).predicate {
            let _ = write!(shape, "e{canon}[");
            render_template(p, &mut shape, &mut params);
            shape.push_str("];");
        }
    }

    let _ = write!(shape, "proj:{:?};", query.projection);
    shape.push_str("agg:");
    for a in &query.aggregates {
        let _ = write!(shape, "{:?}(${});", a.func, a.column);
    }
    let _ = write!(shape, "distinct:{};", query.distinct);
    shape.push_str("order:");
    for k in &query.order_by {
        let _ = write!(
            shape,
            "{}{};",
            k.column,
            if k.descending { "d" } else { "a" }
        );
    }
    let _ = write!(shape, "limit:{:?}", query.limit);

    let slot_sig: String = params.iter().map(slot_tag).collect();
    ParamQuery {
        canon_fingerprint: form.code.fingerprint(),
        shape,
        params,
        slot_sig,
    }
}

/// The literal-substitution map of one rebind, with conflict detection.
struct Bindings {
    pairs: Vec<(Value, Value)>,
    hit: Vec<bool>,
}

impl Bindings {
    fn build(old: &[Value], new: &[Value]) -> Result<Bindings> {
        if old.len() != new.len() {
            return Err(RelGoError::plan(format!(
                "rebind arity mismatch: {} cached slots, {} bindings",
                old.len(),
                new.len()
            )));
        }
        let mut pairs: Vec<(Value, Value)> = Vec::with_capacity(old.len());
        for (o, n) in old.iter().zip(new) {
            match pairs.iter().find(|(po, _)| po == o) {
                Some((_, pn)) if pn == n => {}
                Some((_, pn)) => {
                    return Err(RelGoError::plan(format!(
                        "ambiguous rebind: cached literal {o} maps to both {pn} and {n}"
                    )))
                }
                None => pairs.push((o.clone(), n.clone())),
            }
        }
        let hit = vec![false; pairs.len()];
        Ok(Bindings { pairs, hit })
    }

    fn substitute(&mut self, v: &Value) -> Option<Value> {
        for (i, (o, n)) in self.pairs.iter().enumerate() {
            if o == v {
                self.hit[i] = true;
                return Some(n.clone());
            }
        }
        None
    }

    fn check_complete(&self) -> Result<()> {
        for (i, hit) in self.hit.iter().enumerate() {
            if !hit {
                return Err(RelGoError::plan(format!(
                    "rebind: cached literal {} not found in the plan",
                    self.pairs[i].0
                )));
            }
        }
        Ok(())
    }
}

/// Substitute parameter-position literals of `expr` through `b`.
fn rebind_expr(expr: &ScalarExpr, b: &mut Bindings) -> ScalarExpr {
    match expr {
        ScalarExpr::Cmp(op, l, r) => {
            let rebound_side = |side: &ScalarExpr, b: &mut Bindings| match side {
                ScalarExpr::Lit(v) => match b.substitute(v) {
                    Some(n) => ScalarExpr::Lit(n),
                    None => side.clone(),
                },
                other => rebind_expr(other, b),
            };
            match (is_lit(l), is_lit(r)) {
                (false, true) => ScalarExpr::Cmp(
                    *op,
                    Box::new(rebind_expr(l, b)),
                    Box::new(rebound_side(r, b)),
                ),
                (true, false) => ScalarExpr::Cmp(
                    *op,
                    Box::new(rebound_side(l, b)),
                    Box::new(rebind_expr(r, b)),
                ),
                _ => ScalarExpr::Cmp(
                    *op,
                    Box::new(rebind_expr(l, b)),
                    Box::new(rebind_expr(r, b)),
                ),
            }
        }
        ScalarExpr::And(l, r) => {
            ScalarExpr::And(Box::new(rebind_expr(l, b)), Box::new(rebind_expr(r, b)))
        }
        ScalarExpr::Or(l, r) => {
            ScalarExpr::Or(Box::new(rebind_expr(l, b)), Box::new(rebind_expr(r, b)))
        }
        ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(rebind_expr(e, b))),
        ScalarExpr::StartsWith(e, p) => {
            ScalarExpr::StartsWith(Box::new(rebind_expr(e, b)), p.clone())
        }
        ScalarExpr::Contains(e, p) => ScalarExpr::Contains(Box::new(rebind_expr(e, b)), p.clone()),
        ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(rebind_expr(e, b))),
        ScalarExpr::InList(e, list) => {
            ScalarExpr::InList(Box::new(rebind_expr(e, b)), list.clone())
        }
        leaf @ (ScalarExpr::Col(_) | ScalarExpr::Lit(_)) => leaf.clone(),
    }
}

fn rebind_opt(p: &Option<ScalarExpr>, b: &mut Bindings) -> Option<ScalarExpr> {
    p.as_ref().map(|e| rebind_expr(e, b))
}

fn rebind_graph_op(
    op: &crate::graph_plan::GraphOp,
    b: &mut Bindings,
) -> crate::graph_plan::GraphOp {
    use crate::graph_plan::GraphOp;
    match op {
        GraphOp::ScanVertex { v, predicate, ann } => GraphOp::ScanVertex {
            v: *v,
            predicate: rebind_opt(predicate, b),
            ann: *ann,
        },
        GraphOp::ScanEdge { e, predicate, ann } => GraphOp::ScanEdge {
            e: *e,
            predicate: rebind_opt(predicate, b),
            ann: *ann,
        },
        GraphOp::Expand {
            input,
            from,
            edge,
            to,
            dir,
            emit_edge,
            edge_predicate,
            vertex_predicate,
            ann,
        } => GraphOp::Expand {
            input: Box::new(rebind_graph_op(input, b)),
            from: *from,
            edge: *edge,
            to: *to,
            dir: *dir,
            emit_edge: *emit_edge,
            edge_predicate: rebind_opt(edge_predicate, b),
            vertex_predicate: rebind_opt(vertex_predicate, b),
            ann: *ann,
        },
        GraphOp::ExpandIntersect {
            input,
            legs,
            to,
            emit_edges,
            vertex_predicate,
            ann,
        } => GraphOp::ExpandIntersect {
            input: Box::new(rebind_graph_op(input, b)),
            legs: legs.clone(),
            to: *to,
            emit_edges: *emit_edges,
            vertex_predicate: rebind_opt(vertex_predicate, b),
            ann: *ann,
        },
        GraphOp::JoinSub {
            left,
            right,
            on_vertices,
            on_edges,
            ann,
        } => GraphOp::JoinSub {
            left: Box::new(rebind_graph_op(left, b)),
            right: Box::new(rebind_graph_op(right, b)),
            on_vertices: on_vertices.clone(),
            on_edges: on_edges.clone(),
            ann: *ann,
        },
        GraphOp::FilterVertex {
            input,
            v,
            predicate,
            ann,
        } => GraphOp::FilterVertex {
            input: Box::new(rebind_graph_op(input, b)),
            v: *v,
            predicate: rebind_expr(predicate, b),
            ann: *ann,
        },
    }
}

fn rebind_rel_op(op: &RelOp, b: &mut Bindings) -> RelOp {
    match op {
        RelOp::ScanGraphTable { graph, columns } => RelOp::ScanGraphTable {
            graph: rebind_graph_op(graph, b),
            columns: columns.clone(),
        },
        RelOp::ScanTable { table, predicate } => RelOp::ScanTable {
            table: table.clone(),
            predicate: rebind_opt(predicate, b),
        },
        RelOp::HashJoin { left, right, keys } => RelOp::HashJoin {
            left: Box::new(rebind_rel_op(left, b)),
            right: Box::new(rebind_rel_op(right, b)),
            keys: keys.clone(),
        },
        RelOp::Filter { input, predicate } => RelOp::Filter {
            input: Box::new(rebind_rel_op(input, b)),
            predicate: rebind_expr(predicate, b),
        },
        RelOp::Project { input, cols } => RelOp::Project {
            input: Box::new(rebind_rel_op(input, b)),
            cols: cols.clone(),
        },
        RelOp::Aggregate { input, aggs } => RelOp::Aggregate {
            input: Box::new(rebind_rel_op(input, b)),
            aggs: aggs.clone(),
        },
        RelOp::Distinct { input } => RelOp::Distinct {
            input: Box::new(rebind_rel_op(input, b)),
        },
        RelOp::Sort { input, keys } => RelOp::Sort {
            input: Box::new(rebind_rel_op(input, b)),
            keys: keys.clone(),
        },
        RelOp::Limit { input, n } => RelOp::Limit {
            input: Box::new(rebind_rel_op(input, b)),
            n: *n,
        },
    }
}

/// Substitute fresh literal bindings into a cached plan skeleton.
///
/// `old` are the bindings the plan was optimized with (stored alongside the
/// cache entry), `new` the current instance's. Every predicate site — the
/// plan's pattern constraints, the graph operators inside
/// `SCAN_GRAPH_TABLE`, and the relational operators — is rewritten.
/// Errors (rather than producing a wrong plan) when the substitution is
/// ambiguous or incomplete; callers count a rebind failure and fall back to
/// the optimizer.
pub fn rebind_plan(plan: &PhysicalPlan, old: &[Value], new: &[Value]) -> Result<PhysicalPlan> {
    if old == new {
        return Ok(plan.clone());
    }
    let mut b = Bindings::build(old, new)?;
    let pattern = plan
        .pattern
        .map_predicates(&mut |e: &ScalarExpr| rebind_expr(e, &mut b));
    let root = rebind_rel_op(&plan.root, &mut b);
    b.check_complete()?;
    Ok(PhysicalPlan { pattern, root })
}

/// Take the next positional slot value.
fn take_slot(next: &mut usize, new: &[Value]) -> Result<Value> {
    let v = new.get(*next).cloned().ok_or_else(|| {
        RelGoError::query(format!(
            "bind_query: template has more than {} slot(s), got {} binding(s)",
            *next,
            new.len()
        ))
    })?;
    *next += 1;
    Ok(v)
}

/// Positional mirror of [`render_template`]: replace each
/// parameter-position literal with the next binding, traversing in exactly
/// the order `parameterize` assigns slot indices.
fn bind_template(expr: &ScalarExpr, next: &mut usize, new: &[Value]) -> Result<ScalarExpr> {
    Ok(match expr {
        ScalarExpr::Cmp(op, l, r) => match (is_lit(l), is_lit(r)) {
            (false, true) => {
                let l2 = bind_template(l, next, new)?;
                let v = take_slot(next, new)?;
                ScalarExpr::Cmp(*op, Box::new(l2), Box::new(ScalarExpr::Lit(v)))
            }
            (true, false) => {
                let v = take_slot(next, new)?;
                let r2 = bind_template(r, next, new)?;
                ScalarExpr::Cmp(*op, Box::new(ScalarExpr::Lit(v)), Box::new(r2))
            }
            _ => ScalarExpr::Cmp(
                *op,
                Box::new(bind_template(l, next, new)?),
                Box::new(bind_template(r, next, new)?),
            ),
        },
        ScalarExpr::And(l, r) => ScalarExpr::And(
            Box::new(bind_template(l, next, new)?),
            Box::new(bind_template(r, next, new)?),
        ),
        ScalarExpr::Or(l, r) => ScalarExpr::Or(
            Box::new(bind_template(l, next, new)?),
            Box::new(bind_template(r, next, new)?),
        ),
        ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(bind_template(e, next, new)?)),
        ScalarExpr::StartsWith(e, p) => {
            ScalarExpr::StartsWith(Box::new(bind_template(e, next, new)?), p.clone())
        }
        ScalarExpr::Contains(e, p) => {
            ScalarExpr::Contains(Box::new(bind_template(e, next, new)?), p.clone())
        }
        ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(bind_template(e, next, new)?)),
        ScalarExpr::InList(e, list) => {
            ScalarExpr::InList(Box::new(bind_template(e, next, new)?), list.clone())
        }
        leaf @ (ScalarExpr::Col(_) | ScalarExpr::Lit(_)) => leaf.clone(),
    })
}

/// Substitute fresh literal bindings into a *query* (not a plan): the
/// rebind-only entry point prepared statements use when their pinned
/// skeleton is stale (or its by-value rebind ambiguous) and the instance
/// must be re-optimized with the new literals.
///
/// Binding is **positional**, mirroring [`parameterize`]'s slot order —
/// selection slots in expression-tree order, then pattern vertex/edge
/// predicates in canonical element order — so unlike [`rebind_plan`]'s
/// by-value substitution it can never be ambiguous: `new[i]` lands exactly
/// in slot `i`. Errors on arity mismatch.
pub fn bind_query(query: &SpjmQuery, new: &[Value]) -> Result<SpjmQuery> {
    let form = relgo_pattern::canonical_form(&query.pattern);
    let mut next = 0usize;
    let mut q = query.clone();
    q.selection = match &query.selection {
        Some(e) => Some(bind_template(e, &mut next, new)?),
        None => None,
    };

    // Pattern predicates bound in canonical element order (the slot
    // order), then queued in *element index* order — the order
    // `map_predicates` visits sites (vertices first, then edges).
    let mut vpreds: Vec<Option<ScalarExpr>> = vec![None; query.pattern.vertex_count()];
    let mut by_canon: Vec<(usize, usize)> = (0..query.pattern.vertex_count())
        .map(|v| (form.vertex_perm[v], v))
        .collect();
    by_canon.sort_unstable();
    for &(_, old) in &by_canon {
        if let Some(p) = &query.pattern.vertex(old).predicate {
            vpreds[old] = Some(bind_template(p, &mut next, new)?);
        }
    }
    let mut epreds: Vec<Option<ScalarExpr>> = vec![None; query.pattern.edge_count()];
    let mut edges_by_canon: Vec<(usize, usize)> = (0..query.pattern.edge_count())
        .map(|e| (form.edge_perm[e], e))
        .collect();
    edges_by_canon.sort_unstable();
    for &(_, old) in &edges_by_canon {
        if let Some(p) = &query.pattern.edge(old).predicate {
            epreds[old] = Some(bind_template(p, &mut next, new)?);
        }
    }
    let mut queue: std::collections::VecDeque<ScalarExpr> =
        vpreds.into_iter().chain(epreds).flatten().collect();
    q.pattern = query
        .pattern
        .map_predicates(&mut |_| queue.pop_front().expect("one bound predicate per site"));

    if next != new.len() {
        return Err(RelGoError::query(format!(
            "bind_query arity mismatch: template has {next} slot(s), got {} binding(s)",
            new.len()
        )));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spjm::SpjmBuilder;
    use relgo_common::LabelId;
    use relgo_pattern::PatternBuilder;
    use relgo_storage::BinaryOp;

    /// A two-vertex likes pattern, optionally built with swapped vertex
    /// insertion order (an isomorphic renaming).
    fn query(person: i64, date: i64, swapped: bool) -> SpjmQuery {
        let mut pb = PatternBuilder::new();
        let (p, m) = if swapped {
            let m = pb.vertex("m", LabelId(1));
            let p = pb.vertex("p", LabelId(0));
            (p, m)
        } else {
            let p = pb.vertex("p", LabelId(0));
            let m = pb.vertex("m", LabelId(1));
            (p, m)
        };
        pb.edge(p, m, LabelId(0)).unwrap();
        let pattern = pb.build().unwrap();
        let mut b = SpjmBuilder::new(pattern);
        let pid = b.vertex_column(p, 0, "p_id");
        let mdate = b.vertex_column(m, 2, "m_date");
        b.select(ScalarExpr::col_eq(pid, person).and(ScalarExpr::col_cmp(
            mdate,
            BinaryOp::Lt,
            Value::Date(date),
        )));
        b.project(&[mdate]);
        b.build()
    }

    #[test]
    fn literals_become_slots() {
        let pq = parameterize(&query(5, 100, false));
        assert_eq!(pq.params, vec![Value::Int(5), Value::Date(100)]);
        assert_eq!(pq.slot_sig, "id");
        assert!(pq.shape.contains("?0"), "{}", pq.shape);
        assert!(pq.shape.contains("?1"), "{}", pq.shape);
        assert!(!pq.shape.contains("100"), "literal leaked: {}", pq.shape);
    }

    #[test]
    fn instances_share_shape_different_params() {
        let a = parameterize(&query(5, 100, false));
        let b = parameterize(&query(9, 777, false));
        assert_eq!(a.shape, b.shape);
        assert_eq!(a.canon_fingerprint, b.canon_fingerprint);
        assert_eq!(a.slot_sig, b.slot_sig);
        assert_ne!(a.params, b.params);
        assert_eq!(
            a.key(OptimizerMode::RelGo),
            b.key(OptimizerMode::RelGo),
            "same template, same key"
        );
        assert_ne!(
            a.key(OptimizerMode::RelGo),
            a.key(OptimizerMode::DuckDbLike),
            "mode is part of the key"
        );
    }

    #[test]
    fn renamed_isomorphic_query_shares_fingerprint() {
        let a = parameterize(&query(5, 100, false));
        let b = parameterize(&query(6, 200, true));
        assert_eq!(a.canon_fingerprint, b.canon_fingerprint);
        assert_eq!(a.shape, b.shape, "renaming normalizes away");
    }

    #[test]
    fn structural_literals_stay_in_shape() {
        let mut pb = PatternBuilder::new();
        let p = pb.vertex("p", LabelId(0));
        let m = pb.vertex("m", LabelId(1));
        pb.edge(p, m, LabelId(0)).unwrap();
        let mut b = SpjmBuilder::new(pb.build().unwrap());
        let pid = b.vertex_column(p, 0, "p_id");
        b.select(ScalarExpr::InList(
            Box::new(ScalarExpr::Col(pid)),
            vec![Value::Int(1), Value::Int(2)],
        ));
        let q = b.build();
        let pq = parameterize(&q);
        assert!(pq.params.is_empty(), "IN-list members are structural");
        assert!(pq.shape.contains("IN (i1, i2)"), "{}", pq.shape);
    }

    #[test]
    fn forged_delimiters_cannot_alias_shapes() {
        // A structural string containing the rendered delimiter sequence
        // must not collapse two distinct predicates into one shape.
        let mk = |expr: ScalarExpr| {
            let mut pb = PatternBuilder::new();
            let p = pb.vertex("p", LabelId(0));
            let m = pb.vertex("m", LabelId(1));
            pb.edge(p, m, LabelId(0)).unwrap();
            let mut b = SpjmBuilder::new(pb.build().unwrap());
            let c = b.vertex_column(p, 1, "p_name");
            let _ = c;
            b.select(expr);
            b.build()
        };
        let nested = mk(ScalarExpr::Contains(
            Box::new(ScalarExpr::Contains(
                Box::new(ScalarExpr::Col(0)),
                "a".into(),
            )),
            "b".into(),
        ));
        let forged = mk(ScalarExpr::Contains(
            Box::new(ScalarExpr::Col(0)),
            "a\" CONTAINS \"b".into(),
        ));
        assert_ne!(parameterize(&nested).shape, parameterize(&forged).shape);
    }

    #[test]
    fn rebind_conflicting_duplicates_error() {
        // Two slots share the old value but diverge in the new instance.
        let old = vec![Value::Int(5), Value::Int(5)];
        let new = vec![Value::Int(7), Value::Int(9)];
        assert!(Bindings::build(&old, &new).is_err());
        // Agreeing duplicates are fine.
        let new_ok = vec![Value::Int(7), Value::Int(7)];
        assert!(Bindings::build(&old, &new_ok).is_ok());
    }

    #[test]
    fn validate_bindings_checks_arity_and_tags() {
        assert!(validate_bindings("id", &[Value::Int(1), Value::Date(2)]).is_ok());
        assert!(validate_bindings("id", &[Value::Int(1)]).is_err(), "arity");
        assert!(
            validate_bindings("id", &[Value::Date(2), Value::Int(1)]).is_err(),
            "tag order"
        );
        assert!(validate_bindings("", &[]).is_ok());
        assert_eq!(
            binding_signature(&[Value::str("x"), Value::Bool(true)]),
            "sb"
        );
    }

    #[test]
    fn bind_query_substitutes_and_reparameterizes_identically() {
        let q1 = query(5, 100, false);
        let pq1 = parameterize(&q1);
        let q2 = bind_query(&q1, &[Value::Int(9), Value::Date(777)]).unwrap();
        let pq2 = parameterize(&q2);
        assert_eq!(pq1.shape, pq2.shape, "binding never changes the template");
        assert_eq!(pq2.params, vec![Value::Int(9), Value::Date(777)]);
        // Mirrors building the instance directly.
        let direct = parameterize(&query(9, 777, false));
        assert_eq!(pq2.shape, direct.shape);
        assert_eq!(pq2.params, direct.params);
        // Arity mismatches error.
        assert!(bind_query(&q1, &[Value::Int(9)]).is_err());
        assert!(bind_query(&q1, &[Value::Int(9), Value::Date(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn bind_query_is_positional_never_ambiguous() {
        // Both slots share the value 5 in the source instance; positional
        // binding still lands each new value in its own slot (by-value
        // `rebind_plan` would refuse this).
        let mut pb = PatternBuilder::new();
        let p = pb.vertex("p", LabelId(0));
        let m = pb.vertex("m", LabelId(1));
        pb.edge(p, m, LabelId(0)).unwrap();
        let mut b = SpjmBuilder::new(pb.build().unwrap());
        let pid = b.vertex_column(p, 0, "p_id");
        let mdate = b.vertex_column(m, 2, "m_date");
        b.select(ScalarExpr::col_eq(pid, 5i64).and(ScalarExpr::col_cmp(
            mdate,
            BinaryOp::Gt,
            Value::Int(5),
        )));
        b.project(&[mdate]);
        let q = b.build();
        assert_eq!(
            parameterize(&q).params,
            vec![Value::Int(5), Value::Int(5)],
            "colliding source slots"
        );
        let bound = bind_query(&q, &[Value::Int(7), Value::Int(9)]).unwrap();
        assert_eq!(
            parameterize(&bound).params,
            vec![Value::Int(7), Value::Int(9)]
        );
        // Pattern-predicate slots bind positionally too.
        let pq = parameterize(&q);
        let rebound = bind_query(&bound, &pq.params).unwrap();
        assert_eq!(parameterize(&rebound).params, pq.params, "round trip");
    }

    #[test]
    fn rebind_expr_substitutes_param_positions_only() {
        let e = ScalarExpr::col_eq(0, 5i64).and(ScalarExpr::InList(
            Box::new(ScalarExpr::Col(1)),
            vec![Value::Int(5)],
        ));
        let mut b = Bindings::build(&[Value::Int(5)], &[Value::Int(42)]).unwrap();
        let rebound = rebind_expr(&e, &mut b);
        let s = rebound.to_string();
        assert!(s.contains("$0 = 42"), "{s}");
        assert!(s.contains("IN (5)"), "IN-list untouched: {s}");
        assert!(b.check_complete().is_ok());
    }
}
