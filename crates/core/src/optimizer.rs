//! The converged optimizer entry point and the compared-system matrix.
//!
//! [`optimize`] takes an [`SpjmQuery`] and produces a [`PhysicalPlan`]
//! according to the chosen [`OptimizerMode`] — the full set of systems the
//! paper evaluates (§5.1):
//!
//! | mode | transform | ordering | index | rules | EI |
//! |------|-----------|----------|-------|-------|----|
//! | `DuckDbLike`  | agnostic | greedy | – | pushdown | – |
//! | `GRainDb`     | agnostic | greedy | ✓ | pushdown | – |
//! | `UmbraLike`   | agnostic | DP     | ✓ | pushdown | – |
//! | `CalciteLike` | agnostic | exhaustive (no pruning) | – | pushdown | – |
//! | `KuzuLike`    | native heuristic | BFS | ✓ | pushdown | – |
//! | `RelGo`       | aware | GLogue cost-based | ✓ | both | ✓ |
//! | `RelGoHash`   | aware | GLogue cost-based | – | both | – |
//! | `RelGoNoRule` | aware | GLogue cost-based | ✓ | – | ✓ |
//! | `RelGoNoEI`   | aware | GLogue cost-based | ✓ | both | – |

use crate::agnostic::{kuzu_heuristic_plan, optimize_agnostic, AgnosticConfig, JoinOrderAlgo};
use crate::aware::{optimize_pattern, AwareConfig};
use crate::rel_plan::{PhysicalPlan, RelOp};
use crate::rules::{conjoin_all, filter_into_match, split_conjuncts, trim_and_fuse};
use crate::spjm::SpjmQuery;
use relgo_common::{RelGoError, Result};
use relgo_glogue::{CostModel, GLogue};
use relgo_graph::GraphView;
use relgo_storage::{Database, ScalarExpr};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which system's optimizer to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerMode {
    /// Graph-agnostic greedy, hash joins only (the naive §4.1 baseline).
    DuckDbLike,
    /// Graph-agnostic greedy + graph index (predefined joins).
    GRainDb,
    /// Graph-agnostic DP join ordering + graph index.
    UmbraLike,
    /// Graph-agnostic exhaustive enumeration, no pruning (Fig. 4b).
    CalciteLike,
    /// Graph-native heuristic engine baseline.
    KuzuLike,
    /// The full converged optimizer.
    RelGo,
    /// RelGo's converged planning, executed without the graph index.
    RelGoHash,
    /// RelGo without `FilterIntoMatchRule`/`TrimAndFuseRule`.
    RelGoNoRule,
    /// RelGo without `EXPAND_INTERSECT`.
    RelGoNoEI,
}

impl OptimizerMode {
    /// All modes, for exhaustive test sweeps.
    pub const ALL: [OptimizerMode; 9] = [
        OptimizerMode::DuckDbLike,
        OptimizerMode::GRainDb,
        OptimizerMode::UmbraLike,
        OptimizerMode::CalciteLike,
        OptimizerMode::KuzuLike,
        OptimizerMode::RelGo,
        OptimizerMode::RelGoHash,
        OptimizerMode::RelGoNoRule,
        OptimizerMode::RelGoNoEI,
    ];

    /// Whether the executor may use the graph index for this mode.
    pub fn uses_graph_index(self) -> bool {
        !matches!(
            self,
            OptimizerMode::DuckDbLike | OptimizerMode::CalciteLike | OptimizerMode::RelGoHash
        )
    }

    /// Whether this mode runs the converged (graph-aware) pipeline.
    pub fn is_graph_aware(self) -> bool {
        matches!(
            self,
            OptimizerMode::RelGo
                | OptimizerMode::RelGoHash
                | OptimizerMode::RelGoNoRule
                | OptimizerMode::RelGoNoEI
        )
    }

    /// Short display name (benchmark tables).
    pub fn name(self) -> &'static str {
        match self {
            OptimizerMode::DuckDbLike => "DuckDB",
            OptimizerMode::GRainDb => "GRainDB",
            OptimizerMode::UmbraLike => "UmbraPlans",
            OptimizerMode::CalciteLike => "Calcite",
            OptimizerMode::KuzuLike => "Kuzu",
            OptimizerMode::RelGo => "RelGo",
            OptimizerMode::RelGoHash => "RelGoHash",
            OptimizerMode::RelGoNoRule => "RelGoNoRule",
            OptimizerMode::RelGoNoEI => "RelGoNoEI",
        }
    }
}

/// Everything the planner needs to know about the data.
#[derive(Clone)]
pub struct PlannerContext {
    /// The property-graph view (index built if any mode requires it).
    pub view: Arc<GraphView>,
    /// The catalog holding the relational tables of the SPJ part.
    pub db: Arc<Database>,
    /// High-order statistics (required by graph-aware modes).
    pub glogue: Option<Arc<GLogue>>,
    /// Optimization-time budget (Calcite-like enumeration obeys it).
    pub timeout: Duration,
}

/// Optimization statistics (drives Fig. 4b and Fig. 7's opt-time bars).
#[derive(Debug, Clone, Copy, Default)]
pub struct OptStats {
    /// Wall-clock optimization time.
    pub elapsed: Duration,
    /// Plans/states visited by the join-order search (0 for aware modes'
    /// subset DP, which reports subsets instead).
    pub plans_visited: u64,
    /// Whether the search timed out and fell back.
    pub timed_out: bool,
}

/// Optimize an SPJM query under the given mode.
pub fn optimize(
    query: &SpjmQuery,
    mode: OptimizerMode,
    ctx: &PlannerContext,
) -> Result<(PhysicalPlan, OptStats)> {
    query.validate(&ctx.view, &ctx.db)?;
    let start = Instant::now();
    let mut stats = OptStats::default();

    // Predicate pushdown into the pattern. For agnostic modes this is the
    // ordinary relational filter-pushdown; for aware modes it is
    // FilterIntoMatchRule (disabled in RelGoNoRule).
    let pushed = if mode == OptimizerMode::RelGoNoRule {
        query.clone()
    } else {
        filter_into_match(query)
    };

    let (rewritten, graph_op) = match mode {
        OptimizerMode::RelGo
        | OptimizerMode::RelGoHash
        | OptimizerMode::RelGoNoRule
        | OptimizerMode::RelGoNoEI => {
            let glogue = ctx.glogue.as_ref().ok_or_else(|| {
                RelGoError::plan("graph-aware modes require a GLogue in the planner context")
            })?;
            let cfg = AwareConfig {
                allow_ei: mode != OptimizerMode::RelGoNoEI,
                cost: if mode == OptimizerMode::RelGoHash {
                    CostModel::unindexed()
                } else {
                    CostModel::indexed()
                },
            };
            let plan = optimize_pattern(&pushed.pattern, glogue, &cfg)?;
            if mode == OptimizerMode::RelGoNoRule {
                (pushed, plan)
            } else {
                let (q, p) = trim_and_fuse(&pushed, plan);
                (q, p)
            }
        }
        OptimizerMode::KuzuLike => {
            let plan = kuzu_heuristic_plan(&pushed.pattern, &ctx.view)?;
            (pushed, plan)
        }
        OptimizerMode::DuckDbLike
        | OptimizerMode::GRainDb
        | OptimizerMode::UmbraLike
        | OptimizerMode::CalciteLike => {
            let algo = match mode {
                OptimizerMode::UmbraLike => JoinOrderAlgo::DpSize,
                OptimizerMode::CalciteLike => JoinOrderAlgo::Exhaustive,
                _ => JoinOrderAlgo::Greedy,
            };
            let cfg = AgnosticConfig {
                algo,
                use_graph_index: mode.uses_graph_index(),
                timeout: ctx.timeout,
            };
            let (plan, search) = optimize_agnostic(&pushed.pattern, &ctx.view, &cfg)?;
            stats.plans_visited = search.plans_visited;
            stats.timed_out = search.timed_out;
            (pushed, plan)
        }
    };

    let root = build_relational(&rewritten, graph_op, &ctx.db)?;
    stats.elapsed = start.elapsed();
    Ok((
        PhysicalPlan {
            pattern: rewritten.pattern.clone(),
            root,
        },
        stats,
    ))
}

/// Compose the relational component around `SCAN_GRAPH_TABLE` (§4.2.2):
/// graph-only residual selection directly above the graph table, then the
/// declared joins (single-table conjuncts pushed into the table scans), then
/// the residual cross-table selection, projection, aggregation and DISTINCT.
fn build_relational(
    query: &SpjmQuery,
    graph: crate::graph_plan::GraphOp,
    db: &Database,
) -> Result<RelOp> {
    let gw = query.graph_width();
    // Global column ranges of each relational table.
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(query.tables.len());
    let mut acc = gw;
    for t in &query.tables {
        let w = db.table(t)?.schema().len();
        ranges.push((acc, acc + w));
        acc += w;
    }

    let mut root = RelOp::ScanGraphTable {
        graph,
        columns: query.columns.clone(),
    };

    // Partition the residual selection: graph-only conjuncts right above
    // the graph table, single-table conjuncts pushed into the table scan
    // (rewritten over local columns), the rest above the joins.
    let mut graph_only: Vec<ScalarExpr> = Vec::new();
    let mut residual: Vec<ScalarExpr> = Vec::new();
    let mut table_pred: Vec<Vec<ScalarExpr>> = vec![Vec::new(); query.tables.len()];
    if let Some(sel) = &query.selection {
        'conjunct: for c in split_conjuncts(sel) {
            let refs = c.referenced_columns();
            if refs.iter().all(|&r| r < gw) {
                graph_only.push(c);
                continue;
            }
            for (ti, &(lo, hi)) in ranges.iter().enumerate() {
                if refs.iter().all(|&r| r >= lo && r < hi) {
                    table_pred[ti].push(c.remap_columns(&|r| r - lo));
                    continue 'conjunct;
                }
            }
            residual.push(c);
        }
    }

    if let Some(pred) = conjoin_all(graph_only) {
        root = RelOp::Filter {
            input: Box::new(root),
            predicate: pred,
        };
    }

    // Joins with the declared tables, in declaration order; join keys whose
    // right side falls in this table's range are rewritten right-local.
    for (ti, tname) in query.tables.iter().enumerate() {
        let (lo, hi) = ranges[ti];
        let keys: Vec<(usize, usize)> = query
            .join_on
            .iter()
            .filter(|&&(_, r)| r >= lo && r < hi)
            .map(|&(l, r)| (l, r - lo))
            .collect();
        root = RelOp::HashJoin {
            left: Box::new(root),
            right: Box::new(RelOp::ScanTable {
                table: tname.clone(),
                predicate: conjoin_all(std::mem::take(&mut table_pred[ti])),
            }),
            keys,
        };
    }

    if let Some(pred) = conjoin_all(residual) {
        root = RelOp::Filter {
            input: Box::new(root),
            predicate: pred,
        };
    }
    if !query.projection.is_empty() {
        root = RelOp::Project {
            input: Box::new(root),
            cols: query.projection.clone(),
        };
    }
    if !query.aggregates.is_empty() {
        root = RelOp::Aggregate {
            input: Box::new(root),
            aggs: query.aggregates.clone(),
        };
    }
    if query.distinct {
        root = RelOp::Distinct {
            input: Box::new(root),
        };
    }
    if !query.order_by.is_empty() {
        root = RelOp::Sort {
            input: Box::new(root),
            keys: query.order_by.clone(),
        };
    }
    if let Some(n) = query.limit {
        root = RelOp::Limit {
            input: Box::new(root),
            n,
        };
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spjm::SpjmBuilder;
    use relgo_common::{DataType, LabelId};
    use relgo_graph::RGMapping;
    use relgo_pattern::PatternBuilder;
    use relgo_storage::table::table_of;

    fn setup() -> PlannerContext {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[
                ("person_id", DataType::Int),
                ("name", DataType::Str),
                ("place_id", DataType::Int),
            ],
            vec![
                vec![1.into(), "Tom".into(), 10.into()],
                vec![2.into(), "Bob".into(), 20.into()],
                vec![3.into(), "David".into(), 30.into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into()],
                vec![2.into(), 2.into(), 100.into()],
                vec![3.into(), 2.into(), 200.into()],
                vec![4.into(), 3.into(), 200.into()],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 2.into(), 1.into()],
                vec![3.into(), 2.into(), 3.into()],
                vec![4.into(), 3.into(), 2.into()],
            ],
        ));
        db.add_table(table_of(
            "Place",
            &[("id", DataType::Int), ("pname", DataType::Str)],
            vec![
                vec![10.into(), "Germany".into()],
                vec![20.into(), "Denmark".into()],
                vec![30.into(), "China".into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db.set_primary_key("Knows", "knows_id").unwrap();
        db.set_primary_key("Place", "id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");
        let mut view = GraphView::build(&mut db, mapping).unwrap();
        view.build_index().unwrap();
        let view = Arc::new(view);
        let glogue = Arc::new(GLogue::new(Arc::clone(&view), 3, 1).unwrap());
        PlannerContext {
            view,
            db: Arc::new(db),
            glogue: Some(glogue),
            timeout: Duration::from_secs(5),
        }
    }

    /// The paper's Fig. 1 query as an SPJM AST.
    fn fig1_query() -> SpjmQuery {
        let mut pb = PatternBuilder::new();
        let p1 = pb.vertex("p1", LabelId(0));
        let p2 = pb.vertex("p2", LabelId(0));
        let m = pb.vertex("m", LabelId(1));
        pb.edge(p1, m, LabelId(0)).unwrap();
        pb.edge(p2, m, LabelId(0)).unwrap();
        pb.edge(p1, p2, LabelId(1)).unwrap();
        let pattern = pb.build().unwrap();
        let mut b = SpjmBuilder::new(pattern);
        let p1_name = b.vertex_column(0, 1, "p1_name");
        let p1_place = b.vertex_column(0, 2, "p1_place_id");
        let p2_name = b.vertex_column(1, 1, "p2_name");
        b.table("Place");
        b.join(p1_place, 3); // g.p1_place_id = place.id (global col 3)
        b.select(ScalarExpr::col_eq(p1_name, "Tom"));
        b.project(&[p2_name, 4]); // p2_name, place.pname
        b.build()
    }

    #[test]
    fn all_modes_produce_plans_for_fig1() {
        let ctx = setup();
        for mode in OptimizerMode::ALL {
            let (plan, _) =
                optimize(&fig1_query(), mode, &ctx).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            let s = plan.explain();
            assert!(s.contains("SCAN_GRAPH_TABLE"), "{mode:?}\n{s}");
        }
    }

    #[test]
    fn relgo_pushes_tom_filter_into_match() {
        let ctx = setup();
        let (plan, _) = optimize(&fig1_query(), OptimizerMode::RelGo, &ctx).unwrap();
        assert!(
            plan.pattern.vertex(0).predicate.is_some(),
            "FilterIntoMatchRule must constrain p1"
        );
        let s = plan.explain();
        assert!(
            !s.contains("SELECTION ($0 = 'Tom')"),
            "filter is gone:\n{s}"
        );
    }

    #[test]
    fn norule_keeps_selection_outside() {
        let ctx = setup();
        let (plan, _) = optimize(&fig1_query(), OptimizerMode::RelGoNoRule, &ctx).unwrap();
        assert!(plan.pattern.vertex(0).predicate.is_none());
        let s = plan.explain();
        assert!(s.contains("SELECTION"), "{s}");
    }

    #[test]
    fn relgo_uses_intersect_on_fig1_triangle() {
        let ctx = setup();
        let (plan, _) = optimize(&fig1_query(), OptimizerMode::RelGo, &ctx).unwrap();
        let g = plan.root.graph_plan().unwrap();
        assert!(g.uses_intersect(), "{}", plan.explain());
    }

    #[test]
    fn noei_avoids_intersect() {
        let ctx = setup();
        let (plan, _) = optimize(&fig1_query(), OptimizerMode::RelGoNoEI, &ctx).unwrap();
        let g = plan.root.graph_plan().unwrap();
        assert!(!g.uses_intersect());
    }

    #[test]
    fn opt_stats_reports_timing() {
        let ctx = setup();
        let (_, stats) = optimize(&fig1_query(), OptimizerMode::RelGo, &ctx).unwrap();
        assert!(stats.elapsed.as_nanos() > 0);
    }

    #[test]
    fn aware_modes_require_glogue() {
        let mut ctx = setup();
        ctx.glogue = None;
        assert!(optimize(&fig1_query(), OptimizerMode::RelGo, &ctx).is_err());
        assert!(optimize(&fig1_query(), OptimizerMode::DuckDbLike, &ctx).is_ok());
    }
}
