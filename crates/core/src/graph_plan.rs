//! The physical graph-plan IR — what lives inside `SCAN_GRAPH_TABLE`.
//!
//! Operators mirror §3.2.2:
//!
//! * [`GraphOp::ScanVertex`] — match a single-vertex pattern by scanning the
//!   vertex relation (plan entry point);
//! * [`GraphOp::ScanEdge`] — match a single-edge pattern by scanning the
//!   edge relation and resolving both endpoints (the graph-agnostic leaf;
//!   uses the EV-index when available, λ hash lookups otherwise);
//! * [`GraphOp::Expand`] — Case II: `EXPAND_EDGE` + `GET_VERTEX`, or the
//!   fused `EXPAND` after `TrimAndFuseRule`;
//! * [`GraphOp::ExpandIntersect`] — Case III: the complete-star EI-join;
//! * [`GraphOp::JoinSub`] — Case I: b⋈ of two sub-plans on common pattern
//!   elements (hash join on bindings);
//! * [`GraphOp::FilterVertex`] — apply a pushed-down vertex predicate to an
//!   existing binding (used by baselines that filter after binding).

use relgo_graph::Direction;
use relgo_storage::ScalarExpr;
use std::fmt::Write as _;

/// A bound pattern element (the binding columns of a graph relation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternElem {
    /// Pattern vertex index.
    Vertex(usize),
    /// Pattern edge index.
    Edge(usize),
}

/// Cost/cardinality annotations attached by the optimizer (used in EXPLAIN
/// output and by tests asserting estimate monotonicity).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanAnnotation {
    /// Estimated output cardinality of this operator.
    pub est_card: f64,
    /// Cumulative estimated cost up to and including this operator.
    pub est_cost: f64,
}

/// One expansion leg of an `EXPAND_INTERSECT` star.
#[derive(Debug, Clone, PartialEq)]
pub struct StarLeg {
    /// The already-bound leaf vertex the leg starts from.
    pub from: usize,
    /// The pattern edge traversed.
    pub edge: usize,
    /// Traversal direction (from `from` towards the star root).
    pub dir: Direction,
}

/// A physical graph operator.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphOp {
    /// Scan the vertex relation of pattern vertex `v`.
    ScanVertex {
        /// Pattern vertex being bound.
        v: usize,
        /// Pushed-down predicate over the vertex relation's columns.
        predicate: Option<ScalarExpr>,
        /// Optimizer annotations.
        ann: PlanAnnotation,
    },
    /// Scan the edge relation of pattern edge `e`, binding the edge and both
    /// endpoint vertices.
    ScanEdge {
        /// Pattern edge being bound.
        e: usize,
        /// Pushed-down predicate over the edge relation's columns.
        predicate: Option<ScalarExpr>,
        /// Optimizer annotations.
        ann: PlanAnnotation,
    },
    /// Expand one pattern edge from a bound vertex (Case II).
    Expand {
        /// Input sub-plan.
        input: Box<GraphOp>,
        /// Bound vertex the expansion starts from.
        from: usize,
        /// Pattern edge traversed.
        edge: usize,
        /// Newly bound vertex.
        to: usize,
        /// Traversal direction.
        dir: Direction,
        /// Whether the edge binding is materialized (`EXPAND_EDGE` +
        /// `GET_VERTEX`); `false` after `TrimAndFuseRule` fuses them into a
        /// single `EXPAND`.
        emit_edge: bool,
        /// Predicate on the traversed edge relation.
        edge_predicate: Option<ScalarExpr>,
        /// Predicate on the target vertex relation.
        vertex_predicate: Option<ScalarExpr>,
        /// Optimizer annotations.
        ann: PlanAnnotation,
    },
    /// Expand a complete star and intersect the adjacency lists (Case III).
    ExpandIntersect {
        /// Input sub-plan (binds every leg's `from`).
        input: Box<GraphOp>,
        /// The star's legs (≥ 2).
        legs: Vec<StarLeg>,
        /// The star's root vertex, newly bound.
        to: usize,
        /// Whether the legs' edge bindings are materialized.
        emit_edges: bool,
        /// Predicate on the root vertex relation.
        vertex_predicate: Option<ScalarExpr>,
        /// Optimizer annotations.
        ann: PlanAnnotation,
    },
    /// Join two sub-plans on their common pattern elements (Case I).
    JoinSub {
        /// Left input.
        left: Box<GraphOp>,
        /// Right input.
        right: Box<GraphOp>,
        /// Common vertices (join keys).
        on_vertices: Vec<usize>,
        /// Common edges (join keys).
        on_edges: Vec<usize>,
        /// Optimizer annotations.
        ann: PlanAnnotation,
    },
    /// Apply a vertex predicate to an already-bound vertex.
    FilterVertex {
        /// Input sub-plan.
        input: Box<GraphOp>,
        /// Bound vertex to filter.
        v: usize,
        /// Predicate over the vertex relation's columns.
        predicate: ScalarExpr,
        /// Optimizer annotations.
        ann: PlanAnnotation,
    },
}

impl GraphOp {
    /// The pattern elements bound by this sub-plan, sorted. `ScanEdge`
    /// binds the edge *and* both endpoint vertices, so the pattern is
    /// required to resolve them.
    pub fn bound_elements(&self, pattern: &relgo_pattern::Pattern) -> Vec<PatternElem> {
        let mut out = Vec::new();
        self.collect_bound(pattern, &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_bound(&self, pattern: &relgo_pattern::Pattern, out: &mut Vec<PatternElem>) {
        match self {
            GraphOp::ScanVertex { v, .. } => out.push(PatternElem::Vertex(*v)),
            GraphOp::ScanEdge { e, .. } => {
                out.push(PatternElem::Edge(*e));
                let edge = pattern.edge(*e);
                out.push(PatternElem::Vertex(edge.src));
                out.push(PatternElem::Vertex(edge.dst));
            }
            GraphOp::Expand {
                input,
                edge,
                to,
                emit_edge,
                ..
            } => {
                input.collect_bound(pattern, out);
                out.push(PatternElem::Vertex(*to));
                if *emit_edge {
                    out.push(PatternElem::Edge(*edge));
                }
            }
            GraphOp::ExpandIntersect {
                input,
                legs,
                to,
                emit_edges,
                ..
            } => {
                input.collect_bound(pattern, out);
                out.push(PatternElem::Vertex(*to));
                if *emit_edges {
                    for leg in legs {
                        out.push(PatternElem::Edge(leg.edge));
                    }
                }
            }
            GraphOp::JoinSub { left, right, .. } => {
                left.collect_bound(pattern, out);
                right.collect_bound(pattern, out);
            }
            GraphOp::FilterVertex { input, .. } => input.collect_bound(pattern, out),
        }
    }

    /// The annotations of this node.
    pub fn annotation(&self) -> PlanAnnotation {
        match self {
            GraphOp::ScanVertex { ann, .. }
            | GraphOp::ScanEdge { ann, .. }
            | GraphOp::Expand { ann, .. }
            | GraphOp::ExpandIntersect { ann, .. }
            | GraphOp::JoinSub { ann, .. }
            | GraphOp::FilterVertex { ann, .. } => *ann,
        }
    }

    /// Count operators in the sub-plan (tests, diagnostics).
    pub fn op_count(&self) -> usize {
        match self {
            GraphOp::ScanVertex { .. } | GraphOp::ScanEdge { .. } => 1,
            GraphOp::Expand { input, .. }
            | GraphOp::ExpandIntersect { input, .. }
            | GraphOp::FilterVertex { input, .. } => 1 + input.op_count(),
            GraphOp::JoinSub { left, right, .. } => 1 + left.op_count() + right.op_count(),
        }
    }

    /// Whether the sub-plan contains an `EXPAND_INTERSECT`.
    pub fn uses_intersect(&self) -> bool {
        match self {
            GraphOp::ScanVertex { .. } | GraphOp::ScanEdge { .. } => false,
            GraphOp::ExpandIntersect { .. } => true,
            GraphOp::Expand { input, .. } | GraphOp::FilterVertex { input, .. } => {
                input.uses_intersect()
            }
            GraphOp::JoinSub { left, right, .. } => left.uses_intersect() || right.uses_intersect(),
        }
    }

    /// Whether the sub-plan contains any hash join on bindings.
    pub fn uses_join(&self) -> bool {
        match self {
            GraphOp::ScanVertex { .. } | GraphOp::ScanEdge { .. } => false,
            GraphOp::JoinSub { .. } => true,
            GraphOp::Expand { input, .. }
            | GraphOp::ExpandIntersect { input, .. }
            | GraphOp::FilterVertex { input, .. } => input.uses_join(),
        }
    }

    /// Render an EXPLAIN-style tree (Fig. 12 output).
    pub fn explain(&self, names: &dyn Fn(PatternElem) -> String) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0, names);
        out
    }

    fn explain_into(&self, out: &mut String, indent: usize, names: &dyn Fn(PatternElem) -> String) {
        let pad = "  ".repeat(indent);
        match self {
            GraphOp::ScanVertex { v, predicate, ann } => {
                let _ = write!(out, "{pad}SCAN {}", names(PatternElem::Vertex(*v)));
                if let Some(p) = predicate {
                    let _ = write!(out, " ({p})");
                }
                let _ = writeln!(out, "  [card={:.0}]", ann.est_card);
            }
            GraphOp::ScanEdge { e, predicate, ann } => {
                let _ = write!(out, "{pad}SCAN_EDGE {}", names(PatternElem::Edge(*e)));
                if let Some(p) = predicate {
                    let _ = write!(out, " ({p})");
                }
                let _ = writeln!(out, "  [card={:.0}]", ann.est_card);
            }
            GraphOp::Expand {
                input,
                from,
                to,
                emit_edge,
                vertex_predicate,
                ann,
                ..
            } => {
                let opname = if *emit_edge {
                    "EXPAND_EDGE+GET_VERTEX"
                } else {
                    "EXPAND"
                };
                let _ = write!(
                    out,
                    "{pad}{opname} {} -> {}",
                    names(PatternElem::Vertex(*from)),
                    names(PatternElem::Vertex(*to))
                );
                if let Some(p) = vertex_predicate {
                    let _ = write!(out, " ({p})");
                }
                let _ = writeln!(out, "  [card={:.0}]", ann.est_card);
                input.explain_into(out, indent + 1, names);
            }
            GraphOp::ExpandIntersect {
                input,
                legs,
                to,
                ann,
                ..
            } => {
                let froms: Vec<String> = legs
                    .iter()
                    .map(|l| names(PatternElem::Vertex(l.from)))
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}EXPAND_INTERSECT {{{}}} -> {}  [card={:.0}]",
                    froms.join(", "),
                    names(PatternElem::Vertex(*to)),
                    ann.est_card
                );
                input.explain_into(out, indent + 1, names);
            }
            GraphOp::JoinSub {
                left,
                right,
                on_vertices,
                ann,
                ..
            } => {
                let keys: Vec<String> = on_vertices
                    .iter()
                    .map(|&v| names(PatternElem::Vertex(v)))
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}HASH_JOIN on {{{}}}  [card={:.0}]",
                    keys.join(", "),
                    ann.est_card
                );
                left.explain_into(out, indent + 1, names);
                right.explain_into(out, indent + 1, names);
            }
            GraphOp::FilterVertex {
                input,
                v,
                predicate,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}FILTER {} ({predicate})",
                    names(PatternElem::Vertex(*v))
                );
                input.explain_into(out, indent + 1, names);
            }
        }
    }
}

/// Bound elements of a `ScanEdge` including endpoints — the planner-side
/// helper (the op itself does not know its pattern).
pub fn scan_edge_bound(pattern: &relgo_pattern::Pattern, e: usize) -> Vec<PatternElem> {
    let edge = pattern.edge(e);
    let mut v = vec![
        PatternElem::Edge(e),
        PatternElem::Vertex(edge.src),
        PatternElem::Vertex(edge.dst),
    ];
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_vertex_pattern() -> relgo_pattern::Pattern {
        use relgo_common::LabelId;
        use relgo_pattern::PatternBuilder;
        let mut b = PatternBuilder::new();
        let a = b.vertex("a", LabelId(0));
        let c = b.vertex("c", LabelId(0));
        b.edge(a, c, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    fn scan(v: usize) -> GraphOp {
        GraphOp::ScanVertex {
            v,
            predicate: None,
            ann: PlanAnnotation {
                est_card: 10.0,
                est_cost: 10.0,
            },
        }
    }

    #[test]
    fn bound_elements_of_expand_chain() {
        let plan = GraphOp::Expand {
            input: Box::new(scan(0)),
            from: 0,
            edge: 0,
            to: 1,
            dir: Direction::Out,
            emit_edge: true,
            edge_predicate: None,
            vertex_predicate: None,
            ann: PlanAnnotation::default(),
        };
        let pat = two_vertex_pattern();
        assert_eq!(
            plan.bound_elements(&pat),
            vec![
                PatternElem::Vertex(0),
                PatternElem::Vertex(1),
                PatternElem::Edge(0)
            ]
        );
        // Fused expand drops the edge binding.
        let fused = GraphOp::Expand {
            input: Box::new(scan(0)),
            from: 0,
            edge: 0,
            to: 1,
            dir: Direction::Out,
            emit_edge: false,
            edge_predicate: None,
            vertex_predicate: None,
            ann: PlanAnnotation::default(),
        };
        assert_eq!(
            fused.bound_elements(&pat),
            vec![PatternElem::Vertex(0), PatternElem::Vertex(1)]
        );
    }

    #[test]
    fn op_count_and_flags() {
        let join = GraphOp::JoinSub {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            on_vertices: vec![],
            on_edges: vec![],
            ann: PlanAnnotation::default(),
        };
        assert_eq!(join.op_count(), 3);
        assert!(join.uses_join());
        assert!(!join.uses_intersect());
        let ei = GraphOp::ExpandIntersect {
            input: Box::new(scan(0)),
            legs: vec![
                StarLeg {
                    from: 0,
                    edge: 0,
                    dir: Direction::Out,
                },
                StarLeg {
                    from: 1,
                    edge: 1,
                    dir: Direction::Out,
                },
            ],
            to: 2,
            emit_edges: false,
            vertex_predicate: None,
            ann: PlanAnnotation::default(),
        };
        assert!(ei.uses_intersect());
    }

    #[test]
    fn explain_renders_tree() {
        let plan = GraphOp::Expand {
            input: Box::new(scan(0)),
            from: 0,
            edge: 0,
            to: 1,
            dir: Direction::Out,
            emit_edge: false,
            edge_predicate: None,
            vertex_predicate: None,
            ann: PlanAnnotation {
                est_card: 42.0,
                est_cost: 100.0,
            },
        };
        let s = plan.explain(&|e| match e {
            PatternElem::Vertex(v) => format!("v{v}"),
            PatternElem::Edge(e) => format!("e{e}"),
        });
        assert!(s.contains("EXPAND v0 -> v1"));
        assert!(s.contains("card=42"));
        assert!(s.contains("SCAN v0"));
    }
}
