//! SPJ → SPJM conversion (the paper's §7 future-work direction).
//!
//! Given a plain SPJ query over catalog tables and the database's
//! RGMapping, detect the join sub-structure that *is* a graph pattern —
//! edge relations joined to their endpoint vertex relations through the
//! λˢ/λᵗ foreign keys — and fold it into a matching operator, leaving the
//! rest of the query relational. Lemma 1 guarantees the fold is lossless in
//! the other direction; this module applies it in reverse, exploiting the
//! totality of the λ functions: joining an edge relation to its endpoint
//! vertex relation on the mapped key is a no-op on multiplicity, so an
//! endpoint the SPJ query never joined can still become a pattern vertex.
//!
//! Scope (documented limitation, mirroring the paper's discussion of the
//! search-space cost of a *global* solution): the folded occurrences must
//! form a single connected pattern; table occurrences that don't fold stay
//! in the relational part and join through projected graph columns.

use crate::spjm::{AttrRef, GraphColumn, PatternElemRef, SpjmQuery};
use relgo_common::{FxHashMap, RelGoError, Result};
use relgo_graph::GraphView;
use relgo_pattern::PatternBuilder;
use relgo_storage::{Database, ScalarExpr};

/// One table occurrence in an SPJ query (the same catalog table may appear
/// several times under different occurrence indices).
#[derive(Debug, Clone)]
pub struct SpjTable {
    /// Catalog table name.
    pub table: String,
    /// Single-table predicate over the table's own columns.
    pub predicate: Option<ScalarExpr>,
}

/// An equi-join between two occurrences: `tables[l.0].col(l.1) =
/// tables[r.0].col(r.1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpjJoin {
    /// Left side: (occurrence index, column index).
    pub left: (usize, usize),
    /// Right side: (occurrence index, column index).
    pub right: (usize, usize),
}

/// A plain SPJ query: σ π over a natural-join of table occurrences.
#[derive(Debug, Clone)]
pub struct SpjQuery {
    /// Table occurrences.
    pub tables: Vec<SpjTable>,
    /// Equi-join conditions.
    pub joins: Vec<SpjJoin>,
    /// Output columns: (occurrence index, column index).
    pub projection: Vec<(usize, usize)>,
}

/// What one occurrence turned into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fold {
    /// Became pattern vertex `v`.
    Vertex(usize),
    /// Became pattern edge `e`.
    Edge(usize),
    /// Stayed relational (index into the SPJM `tables` list).
    Relational(usize),
}

/// Result of a conversion: the SPJM query plus a human-readable summary of
/// what was folded (for EXPLAIN-style reporting).
#[derive(Debug, Clone)]
pub struct Conversion {
    /// The converted query.
    pub query: SpjmQuery,
    /// Per-occurrence description ("-> vertex v0", "-> edge e1",
    /// "stays relational").
    pub summary: Vec<String>,
}

/// Convert an SPJ query into an SPJM query against `view`'s RGMapping.
///
/// Fails if no table occurrence folds into a pattern, or if the folded
/// occurrences do not form a single connected pattern.
pub fn spj_to_spjm(spj: &SpjQuery, view: &GraphView, db: &Database) -> Result<Conversion> {
    let schema = view.schema();
    // Resolve which catalog tables are vertex/edge relations.
    let mut vertex_label_of: FxHashMap<&str, relgo_common::LabelId> = FxHashMap::default();
    for vm in view.mapping().vertices() {
        vertex_label_of.insert(vm.table.as_str(), schema.vertex_label_id(&vm.label)?);
    }
    let mut edge_meta: FxHashMap<&str, (relgo_common::LabelId, usize, usize, String, String)> =
        FxHashMap::default();
    for em in view.mapping().edges() {
        let label = schema.edge_label_id(&em.label)?;
        let t = db.table(&em.table)?;
        let src_col = t.schema().index_of(&em.src_key)?;
        let dst_col = t.schema().index_of(&em.dst_key)?;
        edge_meta.insert(
            em.table.as_str(),
            (
                label,
                src_col,
                dst_col,
                em.src_table.clone(),
                em.dst_table.clone(),
            ),
        );
    }
    let pk_col = |table: &str| -> Result<usize> {
        let pk = db
            .primary_key(table)
            .ok_or_else(|| RelGoError::schema(format!("no primary key on {table}")))?;
        db.table(table)?.schema().index_of(pk)
    };

    // Pass 1: every edge-relation occurrence folds; its endpoints bind to
    // vertex-relation occurrences joined through the mapped keys, or to
    // fresh implicit vertices (λ totality).
    let n = spj.tables.len();
    let mut fold = vec![None::<Fold>; n];
    let mut pb = PatternBuilder::new();
    let mut next_vertex = 0usize;
    // endpoint binding per edge occurrence: (src pattern vertex, dst ...)
    let mut consumed_joins = vec![false; spj.joins.len()];

    // Vertex occurrences joined to some edge occurrence through the mapped
    // key become pattern vertices (shared across edges via occurrence id).
    let mut vertex_of_occurrence: FxHashMap<usize, usize> = FxHashMap::default();
    let mut new_vertex = |pb: &mut PatternBuilder,
                          table: &str,
                          vertex_label_of: &FxHashMap<&str, relgo_common::LabelId>|
     -> Result<usize> {
        let label = *vertex_label_of
            .get(table)
            .ok_or_else(|| RelGoError::schema(format!("{table} is not a vertex relation")))?;
        let v = pb.vertex(&format!("v{next_vertex}"), label);
        next_vertex += 1;
        Ok(v)
    };

    for (ei, t) in spj.tables.iter().enumerate() {
        let Some(&(elabel, src_col, dst_col, ref src_table, ref dst_table)) =
            edge_meta.get(t.table.as_str())
        else {
            continue;
        };
        // Find the vertex occurrences this edge joins on its mapped keys.
        let mut endpoint = |edge_col: usize, end_table: &str| -> Result<usize> {
            for (ji, j) in spj.joins.iter().enumerate() {
                for (mine, other) in [(j.left, j.right), (j.right, j.left)] {
                    if mine.0 == ei && mine.1 == edge_col {
                        let occ = other.0;
                        let otable = &spj.tables[occ].table;
                        if otable == end_table && other.1 == pk_col(end_table)? {
                            consumed_joins[ji] = true;
                            if let Some(&v) = vertex_of_occurrence.get(&occ) {
                                return Ok(v);
                            }
                            let v = new_vertex(&mut pb, otable, &vertex_label_of)?;
                            vertex_of_occurrence.insert(occ, v);
                            fold[occ] = Some(Fold::Vertex(v));
                            return Ok(v);
                        }
                    }
                }
            }
            // No join on this endpoint: synthesize an implicit vertex
            // (lossless because λ is total).
            new_vertex(&mut pb, end_table, &vertex_label_of)
        };
        let src_v = endpoint(src_col, src_table)?;
        let dst_v = endpoint(dst_col, dst_table)?;
        let e = pb.edge(src_v, dst_v, elabel)?;
        if let Some(pred) = &t.predicate {
            pb.edge_predicate(e, pred.clone());
        }
        fold[ei] = Some(Fold::Edge(e));
    }

    // Attach vertex predicates.
    for (oi, t) in spj.tables.iter().enumerate() {
        if let (Some(Fold::Vertex(v)), Some(pred)) = (fold[oi], &t.predicate) {
            pb.vertex_predicate(v, pred.clone());
        }
    }

    if next_vertex == 0 {
        return Err(RelGoError::query(
            "no graph structure found: nothing folds into a matching operator",
        ));
    }
    let pattern = pb.build().map_err(|e| {
        RelGoError::query(format!(
            "folded occurrences do not form one connected pattern: {e}"
        ))
    })?;

    // Pass 2: remaining occurrences stay relational.
    let mut rel_tables = Vec::new();
    for (oi, t) in spj.tables.iter().enumerate() {
        if fold[oi].is_none() {
            fold[oi] = Some(Fold::Relational(rel_tables.len()));
            rel_tables.push(t.clone());
        }
    }

    // Pass 3: build the COLUMNS clause — every projected column of a folded
    // occurrence, plus every column a *surviving* join condition needs.
    let mut columns: Vec<GraphColumn> = Vec::new();
    let mut col_index: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    let graph_col = |occ: usize,
                     col: usize,
                     fold: &[Option<Fold>],
                     columns: &mut Vec<GraphColumn>,
                     col_index: &mut FxHashMap<(usize, usize), usize>|
     -> Option<usize> {
        if let Some(&g) = col_index.get(&(occ, col)) {
            return Some(g);
        }
        let element = match fold[occ] {
            Some(Fold::Vertex(v)) => PatternElemRef::Vertex(v),
            Some(Fold::Edge(e)) => PatternElemRef::Edge(e),
            _ => return None,
        };
        columns.push(GraphColumn {
            element,
            attr: AttrRef::Column(col),
            alias: format!("c{}_{}", occ, col),
        });
        col_index.insert((occ, col), columns.len() - 1);
        Some(columns.len() - 1)
    };

    for &(occ, col) in &spj.projection {
        graph_col(occ, col, &fold, &mut columns, &mut col_index);
    }
    for (ji, j) in spj.joins.iter().enumerate() {
        if consumed_joins[ji] {
            continue;
        }
        for side in [j.left, j.right] {
            graph_col(side.0, side.1, &fold, &mut columns, &mut col_index);
        }
    }

    // Global column index of (occurrence, column).
    let gw = columns.len();
    let mut rel_offsets = Vec::with_capacity(rel_tables.len());
    let mut acc = gw;
    for t in &rel_tables {
        rel_offsets.push(acc);
        acc += db.table(&t.table)?.schema().len();
    }
    let global_of = |occ: usize, col: usize| -> Result<usize> {
        match fold[occ] {
            Some(Fold::Relational(ri)) => Ok(rel_offsets[ri] + col),
            _ => col_index
                .get(&(occ, col))
                .copied()
                .ok_or_else(|| RelGoError::query(format!("column ({occ},{col}) not projected"))),
        }
    };

    // Surviving joins and relational predicates.
    let mut join_on = Vec::new();
    let mut selection: Option<ScalarExpr> = None;
    for (ji, j) in spj.joins.iter().enumerate() {
        if consumed_joins[ji] {
            continue;
        }
        let l = global_of(j.left.0, j.left.1)?;
        let r = global_of(j.right.0, j.right.1)?;
        // SPJM join conditions connect an earlier column with a later
        // table's column; order accordingly.
        let (l, r) = if l <= r { (l, r) } else { (r, l) };
        if r < gw {
            // Both sides are graph columns: express as a residual selection.
            let pred = ScalarExpr::Cmp(
                relgo_storage::BinaryOp::Eq,
                Box::new(ScalarExpr::Col(l)),
                Box::new(ScalarExpr::Col(r)),
            );
            selection = Some(ScalarExpr::conjoin(selection.take(), pred));
        } else {
            join_on.push((l, r));
        }
    }

    let projection: Vec<usize> = spj
        .projection
        .iter()
        .map(|&(occ, col)| global_of(occ, col))
        .collect::<Result<_>>()?;

    let summary = fold
        .iter()
        .enumerate()
        .map(|(oi, f)| match f {
            Some(Fold::Vertex(v)) => format!("{} -> pattern vertex v{v}", spj.tables[oi].table),
            Some(Fold::Edge(e)) => format!("{} -> pattern edge e{e}", spj.tables[oi].table),
            Some(Fold::Relational(_)) => format!("{} stays relational", spj.tables[oi].table),
            None => unreachable!("all occurrences are classified"),
        })
        .collect();

    let query = SpjmQuery {
        pattern,
        columns,
        tables: rel_tables.iter().map(|t| t.table.clone()).collect(),
        join_on,
        selection: {
            // Relational-table predicates re-expressed over global columns.
            let mut sel = selection;
            for (ri, t) in rel_tables.iter().enumerate() {
                if let Some(p) = &t.predicate {
                    let off = rel_offsets[ri];
                    sel = Some(ScalarExpr::conjoin(
                        sel.take(),
                        p.remap_columns(&|c| c + off),
                    ));
                }
            }
            sel
        },
        projection,
        aggregates: Vec::new(),
        distinct: false,
        order_by: Vec::new(),
        limit: None,
    };
    Ok(Conversion { query, summary })
}

/// Naive reference evaluation of an SPJ query (nested hash joins in
/// declaration order) — the conversion's correctness oracle.
pub fn evaluate_spj(spj: &SpjQuery, db: &Database) -> Result<relgo_storage::Table> {
    use relgo_storage::ops;
    if spj.tables.is_empty() {
        return Err(RelGoError::query("SPJ query has no tables"));
    }
    // Accumulate tables left to right; track global offsets per occurrence.
    let mut offsets = Vec::with_capacity(spj.tables.len());
    let mut acc_width = 0usize;
    let first = db.table(&spj.tables[0].table)?;
    let mut table = match &spj.tables[0].predicate {
        Some(p) => ops::filter(first, p)?,
        None => (**first).clone(),
    };
    offsets.push(0);
    acc_width += table.num_columns();
    for (oi, t) in spj.tables.iter().enumerate().skip(1) {
        let right = db.table(&t.table)?;
        let right = match &t.predicate {
            Some(p) => ops::filter(right, p)?,
            None => (**right).clone(),
        };
        // Join keys: every SPJ join whose sides are both available now.
        let keys: Vec<(usize, usize)> = spj
            .joins
            .iter()
            .filter_map(|j| {
                for (a, b) in [(j.left, j.right), (j.right, j.left)] {
                    if b.0 == oi && a.0 < oi {
                        return Some((offsets[a.0] + a.1, b.1));
                    }
                }
                None
            })
            .collect();
        table = if keys.is_empty() {
            // Cross product via a join on no keys: emulate by joining on a
            // constant — use hash_join with empty key list semantics.
            cross_join(&table, &right)?
        } else {
            ops::hash_join(&table, &right, &keys)?
        };
        offsets.push(acc_width);
        acc_width += right.num_columns();
    }
    // Joins not consumed as keys (e.g. both sides in the same prefix) —
    // apply as filters.
    for j in &spj.joins {
        let (a, b) = (j.left, j.right);
        let ga = offsets[a.0] + a.1;
        let gb = offsets[b.0] + b.1;
        let pred = ScalarExpr::Cmp(
            relgo_storage::BinaryOp::Eq,
            Box::new(ScalarExpr::Col(ga)),
            Box::new(ScalarExpr::Col(gb)),
        );
        table = ops::filter(&table, &pred)?;
    }
    let cols: Vec<usize> = spj
        .projection
        .iter()
        .map(|&(occ, col)| offsets[occ] + col)
        .collect();
    ops::project(&table, &cols)
}

fn cross_join(
    left: &relgo_storage::Table,
    right: &relgo_storage::Table,
) -> Result<relgo_storage::Table> {
    // Cartesian product through repeated gathers.
    let mut lrows = Vec::with_capacity(left.num_rows() * right.num_rows());
    let mut rrows = Vec::with_capacity(left.num_rows() * right.num_rows());
    for l in 0..left.num_rows() as u32 {
        for r in 0..right.num_rows() as u32 {
            lrows.push(l);
            rrows.push(r);
        }
    }
    let lpart = left.take(&lrows);
    let rpart = right.take(&rrows);
    let schema = left.schema().join(right.schema());
    let mut columns = Vec::new();
    for i in 0..lpart.num_columns() {
        columns.push(lpart.column(i).clone());
    }
    for i in 0..rpart.num_columns() {
        columns.push(rpart.column(i).clone());
    }
    relgo_storage::Table::from_columns("cross", schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::{DataType, Value};
    use relgo_graph::RGMapping;
    use relgo_storage::table::table_of;

    fn setup() -> (GraphView, Database) {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[
                ("person_id", DataType::Int),
                ("name", DataType::Str),
                ("place_id", DataType::Int),
            ],
            vec![
                vec![1.into(), "Tom".into(), 10.into()],
                vec![2.into(), "Bob".into(), 20.into()],
                vec![3.into(), "David".into(), 30.into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int), ("content", DataType::Str)],
            vec![vec![100.into(), "m1".into()], vec![200.into(), "m2".into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
                ("date", DataType::Date),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into(), Value::Date(31)],
                vec![2.into(), 2.into(), 100.into(), Value::Date(28)],
                vec![3.into(), 2.into(), 200.into(), Value::Date(20)],
                vec![4.into(), 3.into(), 200.into(), Value::Date(21)],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 2.into(), 1.into()],
                vec![3.into(), 2.into(), 3.into()],
                vec![4.into(), 3.into(), 2.into()],
            ],
        ));
        db.add_table(table_of(
            "Place",
            &[("id", DataType::Int), ("pname", DataType::Str)],
            vec![
                vec![10.into(), "Germany".into()],
                vec![20.into(), "Denmark".into()],
                vec![30.into(), "China".into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db.set_primary_key("Knows", "knows_id").unwrap();
        db.set_primary_key("Place", "id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");
        let mut view = GraphView::build(&mut db, mapping).unwrap();
        view.build_index().unwrap();
        (view, db)
    }

    /// The Fig 1 query written as plain SPJ:
    /// Person p1 ⋈ Likes l1 ⋈ Message m ⋈ Likes l2 ⋈ Person p2 ⋈ Knows k
    /// ⋈ Place, WHERE p1.name = 'Tom'.
    fn fig1_spj() -> SpjQuery {
        SpjQuery {
            tables: vec![
                SpjTable {
                    table: "Person".into(),
                    predicate: Some(ScalarExpr::col_eq(1, "Tom")),
                }, // 0 = p1
                SpjTable {
                    table: "Likes".into(),
                    predicate: None,
                }, // 1 = l1
                SpjTable {
                    table: "Message".into(),
                    predicate: None,
                }, // 2 = m
                SpjTable {
                    table: "Likes".into(),
                    predicate: None,
                }, // 3 = l2
                SpjTable {
                    table: "Person".into(),
                    predicate: None,
                }, // 4 = p2
                SpjTable {
                    table: "Knows".into(),
                    predicate: None,
                }, // 5 = k
                SpjTable {
                    table: "Place".into(),
                    predicate: None,
                }, // 6
            ],
            joins: vec![
                SpjJoin {
                    left: (1, 1),
                    right: (0, 0),
                }, // l1.pid = p1.person_id
                SpjJoin {
                    left: (1, 2),
                    right: (2, 0),
                }, // l1.mid = m.message_id
                SpjJoin {
                    left: (3, 2),
                    right: (2, 0),
                }, // l2.mid = m.message_id
                SpjJoin {
                    left: (3, 1),
                    right: (4, 0),
                }, // l2.pid = p2.person_id
                SpjJoin {
                    left: (5, 1),
                    right: (0, 0),
                }, // k.pid1 = p1.person_id
                SpjJoin {
                    left: (5, 2),
                    right: (4, 0),
                }, // k.pid2 = p2.person_id
                SpjJoin {
                    left: (0, 2),
                    right: (6, 0),
                }, // p1.place_id = Place.id
            ],
            projection: vec![(4, 1), (6, 1)], // p2.name, Place.pname
        }
    }

    #[test]
    fn fig1_spj_folds_into_the_triangle() {
        let (view, db) = setup();
        let conv = spj_to_spjm(&fig1_spj(), &view, &db).unwrap();
        let q = &conv.query;
        // Pattern: p1, m, p2 + likes, likes, knows.
        assert_eq!(q.pattern.vertex_count(), 3);
        assert_eq!(q.pattern.edge_count(), 3);
        // Place stays relational.
        assert_eq!(q.tables, vec!["Place".to_string()]);
        assert_eq!(q.join_on.len(), 1);
        // The Tom predicate moved onto a pattern vertex.
        assert!(q.pattern.has_predicates());
        assert!(conv.summary.iter().any(|s| s.contains("stays relational")));
        assert_eq!(
            conv.summary
                .iter()
                .filter(|s| s.contains("pattern edge"))
                .count(),
            3
        );
    }

    #[test]
    fn converted_query_matches_plain_spj_evaluation() {
        let (view, db) = setup();
        let spj = fig1_spj();
        let plain = evaluate_spj(&spj, &db).unwrap();
        let conv = spj_to_spjm(&spj, &view, &db).unwrap();
        // Execute the SPJM through the oracle-equivalent relational path:
        // validate, then compare row multisets via the planner-independent
        // global schema. (Execution happens in relgo-exec; here we check
        // the structural validity and leave end-to-end equality to the
        // integration tests.)
        conv.query.validate(&view, &db).unwrap();
        assert_eq!(plain.num_rows(), 1);
        assert_eq!(plain.value(0, 0), Value::str("Bob"));
        assert_eq!(plain.value(0, 1), Value::str("Germany"));
    }

    #[test]
    fn unjoined_endpoint_gets_an_implicit_vertex() {
        let (view, db) = setup();
        // Likes ⋈ Person only (message endpoint never joined).
        let spj = SpjQuery {
            tables: vec![
                SpjTable {
                    table: "Likes".into(),
                    predicate: None,
                },
                SpjTable {
                    table: "Person".into(),
                    predicate: None,
                },
            ],
            joins: vec![SpjJoin {
                left: (0, 1),
                right: (1, 0),
            }],
            projection: vec![(1, 1)],
        };
        let conv = spj_to_spjm(&spj, &view, &db).unwrap();
        assert_eq!(
            conv.query.pattern.vertex_count(),
            2,
            "implicit Message vertex"
        );
        assert_eq!(conv.query.pattern.edge_count(), 1);
        // Row multiplicity is preserved (λ totality): 4 likes → 4 rows.
        let plain = evaluate_spj(&spj, &db).unwrap();
        assert_eq!(plain.num_rows(), 4);
    }

    #[test]
    fn pure_relational_query_is_rejected() {
        let (view, db) = setup();
        let spj = SpjQuery {
            tables: vec![SpjTable {
                table: "Place".into(),
                predicate: None,
            }],
            joins: vec![],
            projection: vec![(0, 1)],
        };
        assert!(spj_to_spjm(&spj, &view, &db).is_err());
    }

    #[test]
    fn disconnected_folds_are_rejected() {
        let (view, db) = setup();
        // Two unrelated Likes occurrences with no shared vertex.
        let spj = SpjQuery {
            tables: vec![
                SpjTable {
                    table: "Likes".into(),
                    predicate: None,
                },
                SpjTable {
                    table: "Likes".into(),
                    predicate: None,
                },
            ],
            joins: vec![],
            projection: vec![(0, 0), (1, 0)],
        };
        assert!(spj_to_spjm(&spj, &view, &db).is_err());
    }

    #[test]
    fn evaluate_spj_handles_filters_and_joins() {
        let (_, db) = setup();
        let spj = SpjQuery {
            tables: vec![
                SpjTable {
                    table: "Person".into(),
                    predicate: Some(ScalarExpr::col_eq(1, "Bob")),
                },
                SpjTable {
                    table: "Likes".into(),
                    predicate: None,
                },
            ],
            joins: vec![SpjJoin {
                left: (1, 1),
                right: (0, 0),
            }],
            projection: vec![(0, 1), (1, 3)],
        };
        let out = evaluate_spj(&spj, &db).unwrap();
        assert_eq!(out.num_rows(), 2, "Bob has two likes");
    }
}
