//! The SPJM query IR (paper §2.3, Eq. 1).
//!
//! `Q = π_A ( σ_Ψ ( R₁ ⋈ … ⋈ R_m ⋈ (π̂_A* M_G(P)) ) )`
//!
//! The **graph component** is `π̂_A* M_G(P)`: a pattern match followed by the
//! graph-calibrated projection (SQL/PGQ's `COLUMNS` clause) that flattens
//! matched vertices/edges into relational columns. The **relational
//! component** joins the resulting graph table with ordinary relations,
//! filters, projects and (for JOB-style queries) aggregates.
//!
//! Column addressing: the query's *global schema* lists the graph columns
//! first (in `COLUMNS` order), then each relational table's columns in
//! declaration order. `selection`, `join conditions`, `projection` and
//! `aggregates` all reference global column indices.

use relgo_common::{DataType, Field, RelGoError, Result, Schema};
use relgo_graph::GraphView;
use relgo_pattern::Pattern;
use relgo_storage::ops::AggFunc;
use relgo_storage::ScalarExpr;

/// Which pattern element a graph column projects from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternElemRef {
    /// Pattern vertex by index.
    Vertex(usize),
    /// Pattern edge by index.
    Edge(usize),
}

/// Which attribute of the element is projected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrRef {
    /// The element's globally unique id (`id(ε)`).
    Id,
    /// Column `usize` of the element's backing relation.
    Column(usize),
}

/// One entry of the `COLUMNS` clause: `element.attr AS alias`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphColumn {
    /// Source pattern element.
    pub element: PatternElemRef,
    /// Projected attribute.
    pub attr: AttrRef,
    /// Output column name.
    pub alias: String,
}

/// An aggregate output (`MIN(col) AS alias`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Global column index.
    pub column: usize,
}

/// An SPJM query.
#[derive(Debug, Clone)]
pub struct SpjmQuery {
    /// The pattern `P` of the matching operator.
    pub pattern: Pattern,
    /// π̂ — the `COLUMNS` clause.
    pub columns: Vec<GraphColumn>,
    /// The relational tables `R₁ … R_m` (by catalog name).
    pub tables: Vec<String>,
    /// Equi-join conditions over global columns, each linking an
    /// already-available column (left) with a column of a later table.
    pub join_on: Vec<(usize, usize)>,
    /// σ_Ψ over the global schema.
    pub selection: Option<ScalarExpr>,
    /// π_A — output columns (global indices). Empty = all columns.
    pub projection: Vec<usize>,
    /// Optional final ungrouped aggregation (JOB's `SELECT MIN(..)`).
    pub aggregates: Vec<AggSpec>,
    /// Whether to deduplicate output rows.
    pub distinct: bool,
    /// ORDER BY over the *output* columns (after projection/aggregation).
    pub order_by: Vec<relgo_storage::ops::SortKey>,
    /// LIMIT over the final rows.
    pub limit: Option<usize>,
}

impl SpjmQuery {
    /// Number of graph columns (the width of the graph table).
    pub fn graph_width(&self) -> usize {
        self.columns.len()
    }

    /// Compute the global schema against a graph view and its database.
    pub fn global_schema(&self, view: &GraphView, db: &relgo_storage::Database) -> Result<Schema> {
        let mut fields = Vec::new();
        for c in &self.columns {
            fields.push(Field::new(c.alias.clone(), self.column_dtype(view, c)?));
        }
        for t in &self.tables {
            let table = db.table(t)?;
            for f in table.schema().fields() {
                let mut name = f.name.clone();
                let mut k = 1;
                while fields.iter().any(|g: &Field| g.name == name) {
                    name = format!("{}_{k}", f.name);
                    k += 1;
                }
                fields.push(Field::new(name, f.dtype));
            }
        }
        Schema::new(fields)
    }

    /// Data type of one graph column.
    pub fn column_dtype(&self, view: &GraphView, c: &GraphColumn) -> Result<DataType> {
        match (c.element, c.attr) {
            (_, AttrRef::Id) => Ok(DataType::Int),
            (PatternElemRef::Vertex(v), AttrRef::Column(i)) => {
                let label = self.pattern.vertex(v).label;
                let t = view.vertex_table(label);
                if i >= t.num_columns() {
                    return Err(RelGoError::query(format!(
                        "COLUMNS references column {i} of {}, which has {}",
                        t.name(),
                        t.num_columns()
                    )));
                }
                Ok(t.schema().field(i).dtype)
            }
            (PatternElemRef::Edge(e), AttrRef::Column(i)) => {
                let label = self.pattern.edge(e).label;
                let t = view.edge_table(label);
                if i >= t.num_columns() {
                    return Err(RelGoError::query(format!(
                        "COLUMNS references column {i} of {}, which has {}",
                        t.name(),
                        t.num_columns()
                    )));
                }
                Ok(t.schema().field(i).dtype)
            }
        }
    }

    /// Validate structural invariants (element indices, join/projection
    /// bounds). The schema-level checks happen in `global_schema`.
    pub fn validate(&self, view: &GraphView, db: &relgo_storage::Database) -> Result<()> {
        for c in &self.columns {
            match c.element {
                PatternElemRef::Vertex(v) if v >= self.pattern.vertex_count() => {
                    return Err(RelGoError::query(format!(
                        "COLUMNS references pattern vertex {v}, pattern has {}",
                        self.pattern.vertex_count()
                    )))
                }
                PatternElemRef::Edge(e) if e >= self.pattern.edge_count() => {
                    return Err(RelGoError::query(format!(
                        "COLUMNS references pattern edge {e}, pattern has {}",
                        self.pattern.edge_count()
                    )))
                }
                _ => {}
            }
        }
        let schema = self.global_schema(view, db)?;
        let width = schema.len();
        for &(l, r) in &self.join_on {
            if l >= width || r >= width {
                return Err(RelGoError::query(format!(
                    "join condition ({l}, {r}) out of bounds for width {width}"
                )));
            }
        }
        for &p in &self.projection {
            if p >= width {
                return Err(RelGoError::query(format!(
                    "projection column {p} out of bounds for width {width}"
                )));
            }
        }
        for a in &self.aggregates {
            if a.column >= width {
                return Err(RelGoError::query(format!(
                    "aggregate column {} out of bounds for width {width}",
                    a.column
                )));
            }
        }
        if let Some(sel) = &self.selection {
            for c in sel.referenced_columns() {
                if c >= width {
                    return Err(RelGoError::query(format!(
                        "selection references column {c}, width is {width}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`SpjmQuery`] with named graph columns.
#[derive(Debug)]
pub struct SpjmBuilder {
    pattern: Pattern,
    columns: Vec<GraphColumn>,
    tables: Vec<String>,
    join_on: Vec<(usize, usize)>,
    selection: Option<ScalarExpr>,
    projection: Vec<usize>,
    aggregates: Vec<AggSpec>,
    distinct: bool,
    order_by: Vec<relgo_storage::ops::SortKey>,
    limit: Option<usize>,
}

impl SpjmBuilder {
    /// Start from a pattern.
    pub fn new(pattern: Pattern) -> Self {
        SpjmBuilder {
            pattern,
            columns: Vec::new(),
            tables: Vec::new(),
            join_on: Vec::new(),
            selection: None,
            projection: Vec::new(),
            aggregates: Vec::new(),
            distinct: false,
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// Project `vertex.column AS alias`; returns the global column index.
    pub fn vertex_column(&mut self, v: usize, col: usize, alias: &str) -> usize {
        self.columns.push(GraphColumn {
            element: PatternElemRef::Vertex(v),
            attr: AttrRef::Column(col),
            alias: alias.to_string(),
        });
        self.columns.len() - 1
    }

    /// Project `id(vertex) AS alias`; returns the global column index.
    pub fn vertex_id(&mut self, v: usize, alias: &str) -> usize {
        self.columns.push(GraphColumn {
            element: PatternElemRef::Vertex(v),
            attr: AttrRef::Id,
            alias: alias.to_string(),
        });
        self.columns.len() - 1
    }

    /// Project `edge.column AS alias`; returns the global column index.
    pub fn edge_column(&mut self, e: usize, col: usize, alias: &str) -> usize {
        self.columns.push(GraphColumn {
            element: PatternElemRef::Edge(e),
            attr: AttrRef::Column(col),
            alias: alias.to_string(),
        });
        self.columns.len() - 1
    }

    /// Project `id(edge) AS alias`; returns the global column index.
    pub fn edge_id(&mut self, e: usize, alias: &str) -> usize {
        self.columns.push(GraphColumn {
            element: PatternElemRef::Edge(e),
            attr: AttrRef::Id,
            alias: alias.to_string(),
        });
        self.columns.len() - 1
    }

    /// Add a relational table; returns the global index of its first column
    /// (requires the database to size earlier tables — supply via closure).
    pub fn table(&mut self, name: &str) -> &mut Self {
        self.tables.push(name.to_string());
        self
    }

    /// Add an equi-join condition over global columns.
    pub fn join(&mut self, left: usize, right: usize) -> &mut Self {
        self.join_on.push((left, right));
        self
    }

    /// Conjoin a selection predicate (over global columns).
    pub fn select(&mut self, pred: ScalarExpr) -> &mut Self {
        self.selection = Some(ScalarExpr::conjoin(self.selection.take(), pred));
        self
    }

    /// Set the output projection (global columns).
    pub fn project(&mut self, cols: &[usize]) -> &mut Self {
        self.projection = cols.to_vec();
        self
    }

    /// Add an aggregate output.
    pub fn aggregate(&mut self, func: AggFunc, column: usize) -> &mut Self {
        self.aggregates.push(AggSpec { func, column });
        self
    }

    /// Request DISTINCT output.
    pub fn distinct(&mut self) -> &mut Self {
        self.distinct = true;
        self
    }

    /// ORDER BY an output column (position in the final projection).
    pub fn order_by(&mut self, column: usize, descending: bool) -> &mut Self {
        self.order_by
            .push(relgo_storage::ops::SortKey { column, descending });
        self
    }

    /// LIMIT the final rows.
    pub fn limit(&mut self, n: usize) -> &mut Self {
        self.limit = Some(n);
        self
    }

    /// Finish.
    pub fn build(self) -> SpjmQuery {
        SpjmQuery {
            pattern: self.pattern,
            columns: self.columns,
            tables: self.tables,
            join_on: self.join_on,
            selection: self.selection,
            projection: self.projection,
            aggregates: self.aggregates,
            distinct: self.distinct,
            order_by: self.order_by,
            limit: self.limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::LabelId;
    use relgo_pattern::PatternBuilder;

    fn pattern() -> Pattern {
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p1, m, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_tracks_column_indices() {
        let mut b = SpjmBuilder::new(pattern());
        let c0 = b.vertex_column(0, 1, "p_name");
        let c1 = b.vertex_id(1, "m_id");
        let c2 = b.edge_column(0, 3, "like_date");
        assert_eq!((c0, c1, c2), (0, 1, 2));
        b.select(ScalarExpr::col_eq(0, "Tom"));
        b.project(&[1]);
        let q = b.build();
        assert_eq!(q.graph_width(), 3);
        assert_eq!(q.projection, vec![1]);
        assert!(q.selection.is_some());
    }

    #[test]
    fn validation_catches_bad_element_refs() {
        let mut b = SpjmBuilder::new(pattern());
        b.vertex_column(7, 0, "boom");
        let q = b.build();
        // Validation needs a view; structural element bound check fires
        // before any schema resolution, so exercise it via direct check.
        assert!(matches!(q.columns[0].element, PatternElemRef::Vertex(7)));
    }
}
