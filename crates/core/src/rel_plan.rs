//! The relational physical-plan IR surrounding `SCAN_GRAPH_TABLE`.
//!
//! From the relational optimizer's perspective, `SCAN_GRAPH_TABLE` behaves
//! like an ordinary scan (paper §4.2.2): it exposes the graph component's
//! `COLUMNS` clause as a relational schema and hides the graph plan inside.

use crate::graph_plan::{GraphOp, PatternElem};
use crate::spjm::{AggSpec, AttrRef, GraphColumn, PatternElemRef};
use relgo_common::{DataType, Field, RelGoError, Result, Schema};
use relgo_graph::GraphView;
use relgo_pattern::Pattern;
use relgo_storage::{Database, ScalarExpr};
use std::fmt::Write as _;

/// A relational physical operator.
#[derive(Debug, Clone)]
pub enum RelOp {
    /// The encapsulated graph component: execute `graph`, project matched
    /// elements through `columns` into a relational table.
    ScanGraphTable {
        /// The optimized graph plan.
        graph: GraphOp,
        /// π̂ — which element attributes are materialized.
        columns: Vec<GraphColumn>,
    },
    /// Scan a catalog table, optionally with a pushed-down predicate.
    ScanTable {
        /// Catalog table name.
        table: String,
        /// Pushed-down predicate over the table's own columns.
        predicate: Option<ScalarExpr>,
    },
    /// Equi hash join (build = left).
    HashJoin {
        /// Build side.
        left: Box<RelOp>,
        /// Probe side.
        right: Box<RelOp>,
        /// Join keys: (left column, right column), right indices local to
        /// the right input.
        keys: Vec<(usize, usize)>,
    },
    /// σ over the input's schema.
    Filter {
        /// Input operator.
        input: Box<RelOp>,
        /// Predicate over the input's columns.
        predicate: ScalarExpr,
    },
    /// π over the input's schema.
    Project {
        /// Input operator.
        input: Box<RelOp>,
        /// Retained columns, in order.
        cols: Vec<usize>,
    },
    /// Ungrouped aggregation.
    Aggregate {
        /// Input operator.
        input: Box<RelOp>,
        /// Aggregate outputs.
        aggs: Vec<AggSpec>,
    },
    /// DISTINCT.
    Distinct {
        /// Input operator.
        input: Box<RelOp>,
    },
    /// ORDER BY over the input's columns.
    Sort {
        /// Input operator.
        input: Box<RelOp>,
        /// Sort keys in priority order.
        keys: Vec<relgo_storage::ops::SortKey>,
    },
    /// LIMIT.
    Limit {
        /// Input operator.
        input: Box<RelOp>,
        /// Maximum rows to emit.
        n: usize,
    },
}

impl RelOp {
    /// Compute the operator's output schema.
    pub fn schema(&self, pattern: &Pattern, view: &GraphView, db: &Database) -> Result<Schema> {
        match self {
            RelOp::ScanGraphTable { columns, .. } => {
                let mut fields = Vec::with_capacity(columns.len());
                for c in columns {
                    fields.push(Field::new(
                        c.alias.clone(),
                        graph_column_dtype(pattern, view, c)?,
                    ));
                }
                Schema::new(fields)
            }
            RelOp::ScanTable { table, .. } => Ok(db.table(table)?.schema().clone()),
            RelOp::HashJoin { left, right, .. } => Ok(left
                .schema(pattern, view, db)?
                .join(&right.schema(pattern, view, db)?)),
            RelOp::Filter { input, .. }
            | RelOp::Distinct { input }
            | RelOp::Sort { input, .. }
            | RelOp::Limit { input, .. } => input.schema(pattern, view, db),
            RelOp::Project { input, cols } => Ok(input.schema(pattern, view, db)?.project(cols)),
            RelOp::Aggregate { input, aggs } => {
                let in_schema = input.schema(pattern, view, db)?;
                let mut fields = Vec::with_capacity(aggs.len());
                for (i, a) in aggs.iter().enumerate() {
                    let (name, dtype) = match a.func {
                        relgo_storage::ops::AggFunc::Count => (format!("count_{i}"), DataType::Int),
                        relgo_storage::ops::AggFunc::Min => (
                            format!("min_{}", in_schema.field(a.column).name),
                            in_schema.field(a.column).dtype,
                        ),
                        relgo_storage::ops::AggFunc::Max => (
                            format!("max_{}", in_schema.field(a.column).name),
                            in_schema.field(a.column).dtype,
                        ),
                    };
                    fields.push(Field::new(name, dtype));
                }
                Schema::new(fields)
            }
        }
    }

    /// The embedded graph plan, if any.
    pub fn graph_plan(&self) -> Option<&GraphOp> {
        match self {
            RelOp::ScanGraphTable { graph, .. } => Some(graph),
            RelOp::ScanTable { .. } => None,
            RelOp::HashJoin { left, right, .. } => left.graph_plan().or_else(|| right.graph_plan()),
            RelOp::Filter { input, .. }
            | RelOp::Project { input, .. }
            | RelOp::Aggregate { input, .. }
            | RelOp::Distinct { input }
            | RelOp::Sort { input, .. }
            | RelOp::Limit { input, .. } => input.graph_plan(),
        }
    }

    fn explain_into(&self, out: &mut String, indent: usize, names: &dyn Fn(PatternElem) -> String) {
        let pad = "  ".repeat(indent);
        match self {
            RelOp::ScanGraphTable { graph, columns } => {
                let cols: Vec<&str> = columns.iter().map(|c| c.alias.as_str()).collect();
                let _ = writeln!(out, "{pad}SCAN_GRAPH_TABLE [{}]", cols.join(", "));
                for line in graph.explain(names).lines() {
                    let _ = writeln!(out, "{pad}  | {line}");
                }
            }
            RelOp::ScanTable { table, predicate } => {
                let _ = write!(out, "{pad}SCAN_TABLE {table}");
                if let Some(p) = predicate {
                    let _ = write!(out, " ({p})");
                }
                let _ = writeln!(out);
            }
            RelOp::HashJoin { left, right, keys } => {
                let ks: Vec<String> = keys.iter().map(|(l, r)| format!("${l}=${r}")).collect();
                let _ = writeln!(out, "{pad}HASH_JOIN {}", ks.join(" AND "));
                left.explain_into(out, indent + 1, names);
                right.explain_into(out, indent + 1, names);
            }
            RelOp::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}SELECTION ({predicate})");
                input.explain_into(out, indent + 1, names);
            }
            RelOp::Project { input, cols } => {
                let cs: Vec<String> = cols.iter().map(|c| format!("${c}")).collect();
                let _ = writeln!(out, "{pad}PROJECTION [{}]", cs.join(", "));
                input.explain_into(out, indent + 1, names);
            }
            RelOp::Aggregate { input, aggs } => {
                let descr: Vec<String> = aggs
                    .iter()
                    .map(|a| format!("{:?}(${})", a.func, a.column))
                    .collect();
                let _ = writeln!(out, "{pad}AGGREGATE [{}]", descr.join(", "));
                input.explain_into(out, indent + 1, names);
            }
            RelOp::Distinct { input } => {
                let _ = writeln!(out, "{pad}DISTINCT");
                input.explain_into(out, indent + 1, names);
            }
            RelOp::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("${}{}", k.column, if k.descending { " DESC" } else { "" }))
                    .collect();
                let _ = writeln!(out, "{pad}ORDER_BY [{}]", ks.join(", "));
                input.explain_into(out, indent + 1, names);
            }
            RelOp::Limit { input, n } => {
                let _ = writeln!(out, "{pad}LIMIT {n}");
                input.explain_into(out, indent + 1, names);
            }
        }
    }
}

fn graph_column_dtype(pattern: &Pattern, view: &GraphView, c: &GraphColumn) -> Result<DataType> {
    match (c.element, c.attr) {
        (_, AttrRef::Id) => Ok(DataType::Int),
        (PatternElemRef::Vertex(v), AttrRef::Column(i)) => {
            let t = view.vertex_table(pattern.vertex(v).label);
            if i >= t.num_columns() {
                return Err(RelGoError::query(format!(
                    "graph column out of bounds: {}.{i}",
                    t.name()
                )));
            }
            Ok(t.schema().field(i).dtype)
        }
        (PatternElemRef::Edge(e), AttrRef::Column(i)) => {
            let t = view.edge_table(pattern.edge(e).label);
            if i >= t.num_columns() {
                return Err(RelGoError::query(format!(
                    "graph column out of bounds: {}.{i}",
                    t.name()
                )));
            }
            Ok(t.schema().field(i).dtype)
        }
    }
}

/// A complete optimized plan: the (possibly rule-rewritten) pattern plus the
/// relational operator tree.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The pattern the graph component executes (after rule rewrites).
    pub pattern: Pattern,
    /// Root relational operator.
    pub root: RelOp,
}

impl PhysicalPlan {
    /// Render the full plan (Fig. 12-style output).
    pub fn explain(&self) -> String {
        let names = |e: PatternElem| match e {
            PatternElem::Vertex(v) => format!("v{v}"),
            PatternElem::Edge(e) => format!("e{e}"),
        };
        let mut out = String::new();
        self.root.explain_into(&mut out, 0, &names);
        out
    }

    /// Render with custom element names (vertex aliases from the query).
    pub fn explain_with_names(&self, names: &dyn Fn(PatternElem) -> String) -> String {
        let mut out = String::new();
        self.root.explain_into(&mut out, 0, names);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_plan::PlanAnnotation;

    #[test]
    fn explain_composes_relational_and_graph_parts() {
        let plan = PhysicalPlan {
            pattern: {
                use relgo_common::LabelId;
                use relgo_pattern::PatternBuilder;
                let mut b = PatternBuilder::new();
                b.vertex("a", LabelId(0));
                b.build().unwrap()
            },
            root: RelOp::Filter {
                input: Box::new(RelOp::ScanGraphTable {
                    graph: GraphOp::ScanVertex {
                        v: 0,
                        predicate: None,
                        ann: PlanAnnotation::default(),
                    },
                    columns: vec![GraphColumn {
                        element: PatternElemRef::Vertex(0),
                        attr: AttrRef::Id,
                        alias: "a_id".into(),
                    }],
                }),
                predicate: ScalarExpr::col_eq(0, 1),
            },
        };
        let s = plan.explain();
        assert!(s.contains("SELECTION"));
        assert!(s.contains("SCAN_GRAPH_TABLE [a_id]"));
        assert!(s.contains("| SCAN v0"));
    }
}
