//! Graph-agnostic optimization (paper §3.1.1, §4.1) and the baseline
//! optimizers it is paired with in the evaluation.
//!
//! The Lemma-1 transformation turns `M(P)` into a join over `n` vertex
//! relations and `m` edge relations. After the Example-4 redundancy
//! elimination, the *execution* items are the edge relations (each of which
//! binds its two endpoint vertices through the λ total functions — EV-index
//! lookups when the graph index exists, key-hash resolution otherwise) plus
//! per-vertex filters for pushed-down predicates. Join conditions link
//! items that share a pattern vertex.
//!
//! Join-order algorithms:
//!
//! * [`JoinOrderAlgo::Greedy`] — DuckDB-like: left-deep, smallest estimated
//!   output first, aggressively pruned (fast optimization, fallible orders);
//! * [`JoinOrderAlgo::DpSize`] — Umbra-like: bushy DP over connected
//!   subsets minimizing the C_out metric with independence-assumption
//!   (low-order) cardinality estimates;
//! * [`JoinOrderAlgo::Exhaustive`] — Calcite-like: full rule-driven plan
//!   enumeration *without memoization or pruning*, whose optimization time
//!   explodes with pattern size (Fig. 4b's baseline); bounded by a timeout.
//!
//! The GRainDB upgrade pass ([`upgrade_to_predefined_joins`]) replaces a
//! hash join with an `EXPAND` (predefined join) wherever the join's probe
//! side is a single edge relation adjacent to an already-bound vertex —
//! exactly the "if possible" caveat of the paper's Fig. 12 caption.

use crate::graph_plan::{GraphOp, PatternElem, PlanAnnotation};
use relgo_common::{FxHashMap, RelGoError, Result};
use relgo_graph::{Direction, GraphView};
use relgo_pattern::Pattern;
use std::time::{Duration, Instant};

/// Join-order search algorithm for the graph-agnostic pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOrderAlgo {
    /// Left-deep greedy (DuckDB-like).
    Greedy,
    /// Bushy subset DP with C_out objective (Umbra-like).
    DpSize,
    /// Unmemoized exhaustive enumeration (Calcite-like, Fig. 4b baseline).
    Exhaustive,
}

/// Configuration of the agnostic pipeline.
#[derive(Debug, Clone, Copy)]
pub struct AgnosticConfig {
    /// Join-order algorithm.
    pub algo: JoinOrderAlgo,
    /// Whether to run the GRainDB predefined-join upgrade.
    pub use_graph_index: bool,
    /// Optimization-time budget (the paper's 10-minute cap, scaled).
    pub timeout: Duration,
}

/// Statistics about one optimization run (drives Fig. 4b).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Plans (or states) the search visited.
    pub plans_visited: u64,
    /// Whether the search hit its timeout and fell back.
    pub timed_out: bool,
}

/// Low-order cardinality estimation for the agnostic optimizers.
///
/// Items `0..m` are the edge relations. When `with_vertex_items` is set
/// (the Calcite-like full Lemma-1 space), items `m..m+n` are the vertex
/// relations — the optimizer then orders joins over all `n + m` relations,
/// which is the search space whose size Fig. 4a/4b measure.
struct LowOrderStats<'a> {
    pattern: &'a Pattern,
    /// Effective cardinality of each item (predicate selectivities folded
    /// in with the heuristic estimator — no data access, mirroring an
    /// optimizer that only has low-order statistics).
    item_card: Vec<f64>,
    /// |V| per pattern vertex (label cardinality).
    vertex_card: Vec<f64>,
    /// Whether vertex relations participate as join items.
    with_vertex_items: bool,
}

impl<'a> LowOrderStats<'a> {
    fn new(
        pattern: &'a Pattern,
        view: &'a GraphView,
        with_vertex_items: bool,
        use_histograms: bool,
    ) -> Self {
        // Umbra-like estimation consults equi-width histograms of the
        // actual attribute distributions (the accuracy edge the paper
        // credits Umbra with in §5.3.2); the others use heuristic priors.
        let vsel = |label: relgo_common::LabelId, p: &relgo_storage::ScalarExpr| -> f64 {
            if use_histograms {
                relgo_storage::stats::predicate_selectivity(view.vertex_table(label), p)
            } else {
                p.estimated_selectivity()
            }
        };
        let esel = |label: relgo_common::LabelId, p: &relgo_storage::ScalarExpr| -> f64 {
            if use_histograms {
                relgo_storage::stats::predicate_selectivity(view.edge_table(label), p)
            } else {
                p.estimated_selectivity()
            }
        };
        let vertex_card: Vec<f64> = pattern
            .vertices()
            .iter()
            .map(|v| (view.vertex_count(v.label) as f64).max(1.0))
            .collect();
        let mut item_card: Vec<f64> = pattern
            .edges()
            .iter()
            .map(|e| {
                let mut card = view.edge_count(e.label) as f64;
                if let Some(p) = &e.predicate {
                    card *= esel(e.label, p);
                }
                for v in [e.src, e.dst] {
                    let pv = pattern.vertex(v);
                    if let Some(p) = &pv.predicate {
                        card *= vsel(pv.label, p);
                    }
                }
                card.max(1e-3)
            })
            .collect();
        if with_vertex_items {
            for (v, pv) in pattern.vertices().iter().enumerate() {
                let mut card = vertex_card[v];
                if let Some(p) = &pv.predicate {
                    card *= vsel(pv.label, p);
                }
                item_card.push(card.max(1e-3));
            }
        }
        LowOrderStats {
            pattern,
            item_card,
            vertex_card,
            with_vertex_items,
        }
    }

    /// Vertices bound by an item subset.
    fn bound_vertices(&self, items: u32) -> u32 {
        let m = self.pattern.edge_count();
        let mut vs = 0u32;
        for (i, e) in self.pattern.edges().iter().enumerate() {
            if items & (1 << i) != 0 {
                vs |= 1 << e.src;
                vs |= 1 << e.dst;
            }
        }
        if self.with_vertex_items {
            for v in 0..self.pattern.vertex_count() {
                if items & (1 << (m + v)) != 0 {
                    vs |= 1 << v;
                }
            }
        }
        vs
    }

    /// Independence-assumption cardinality of joining two item sets.
    fn join_card(&self, card_a: f64, items_a: u32, card_b: f64, items_b: u32) -> f64 {
        let shared = self.bound_vertices(items_a) & self.bound_vertices(items_b);
        let mut denom = 1.0f64;
        for v in 0..self.pattern.vertex_count() {
            if shared & (1 << v) != 0 {
                denom *= self.vertex_card[v];
            }
        }
        (card_a * card_b / denom).max(1e-3)
    }

    /// Whether two item sets are connected (share a vertex).
    fn connected(&self, items_a: u32, items_b: u32) -> bool {
        self.bound_vertices(items_a) & self.bound_vertices(items_b) != 0
    }
}

/// A join tree over edge items.
#[derive(Debug, Clone)]
enum JoinTree {
    Leaf(usize),
    Join(Box<JoinTree>, Box<JoinTree>),
}

/// Optimize the matching operator graph-agnostically; returns the physical
/// graph plan and search statistics.
pub fn optimize_agnostic(
    pattern: &Pattern,
    view: &GraphView,
    cfg: &AgnosticConfig,
) -> Result<(GraphOp, SearchStats)> {
    let m = pattern.edge_count();
    if m == 0 {
        // Single-vertex pattern: plain scan.
        let v = 0;
        let card = view.vertex_count(pattern.vertex(v).label) as f64;
        return Ok((
            GraphOp::ScanVertex {
                v,
                predicate: pattern.vertex(v).predicate.clone(),
                ann: PlanAnnotation {
                    est_card: card,
                    est_cost: card,
                },
            },
            SearchStats::default(),
        ));
    }
    // The Calcite-like exhaustive search covers the *full* Lemma-1 relation
    // set (n vertex + m edge relations, Fig. 4a's agnostic space); the
    // pruned optimizers work over the redundancy-eliminated edge items.
    let with_vertex_items = cfg.algo == JoinOrderAlgo::Exhaustive;
    let use_histograms = cfg.algo == JoinOrderAlgo::DpSize;
    let stats = LowOrderStats::new(pattern, view, with_vertex_items, use_histograms);
    let (tree, search) = match cfg.algo {
        JoinOrderAlgo::Greedy => (greedy_order(&stats)?, SearchStats::default()),
        JoinOrderAlgo::DpSize => dp_order(&stats, cfg.timeout)?,
        JoinOrderAlgo::Exhaustive => exhaustive_order(&stats, cfg.timeout)?,
    };
    let mut plan = tree_to_plan(pattern, view, &stats, &tree)?;
    if cfg.use_graph_index {
        plan = upgrade_to_predefined_joins(pattern, plan);
    }
    Ok((plan, search))
}

/// DuckDB-like greedy left-deep ordering.
fn greedy_order(stats: &LowOrderStats<'_>) -> Result<JoinTree> {
    let m = stats.item_card.len();
    let start = (0..m)
        .min_by(|&a, &b| stats.item_card[a].total_cmp(&stats.item_card[b]))
        .expect("at least one edge");
    let mut tree = JoinTree::Leaf(start);
    let mut items: u32 = 1 << start;
    let mut card = stats.item_card[start];
    while items.count_ones() < m as u32 {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..m {
            if items & (1 << j) != 0 || !stats.connected(items, 1 << j) {
                continue;
            }
            let c = stats.join_card(card, items, stats.item_card[j], 1 << j);
            if best.is_none_or(|(_, bc)| c < bc) {
                best = Some((j, c));
            }
        }
        let (j, c) = best.ok_or_else(|| RelGoError::plan("pattern is disconnected"))?;
        tree = JoinTree::Join(Box::new(tree), Box::new(JoinTree::Leaf(j)));
        items |= 1 << j;
        card = c;
    }
    Ok(tree)
}

/// Umbra-like bushy DP (C_out objective, connected subsets only).
fn dp_order(stats: &LowOrderStats<'_>, timeout: Duration) -> Result<(JoinTree, SearchStats)> {
    let m = stats.item_card.len();
    if m > 14 {
        // Beyond the DP budget: Umbra would switch strategies; fall back.
        return Ok((
            greedy_order(stats)?,
            SearchStats {
                plans_visited: 0,
                timed_out: true,
            },
        ));
    }
    let start = Instant::now();
    let full: u32 = (1u32 << m) - 1;
    // best[s] = (cost, card, tree)
    let mut best: FxHashMap<u32, (f64, f64, JoinTree)> = FxHashMap::default();
    for i in 0..m {
        best.insert(1 << i, (0.0, stats.item_card[i], JoinTree::Leaf(i)));
    }
    let mut visited = 0u64;
    let mut subsets: Vec<u32> = (1..=full).collect();
    subsets.sort_by_key(|s| s.count_ones());
    for s in subsets {
        if s.count_ones() < 2 {
            continue;
        }
        if start.elapsed() > timeout {
            return Ok((
                greedy_order(stats)?,
                SearchStats {
                    plans_visited: visited,
                    timed_out: true,
                },
            ));
        }
        let mut chosen: Option<(f64, f64, JoinTree)> = None;
        // Enumerate splits with the lowest bit pinned to the left side.
        let low = s & s.wrapping_neg();
        let rest = s & !low;
        let mut sub = rest;
        loop {
            let left = sub | low;
            let right = s & !left;
            if right != 0 {
                if let (Some((cl, kl, tl)), Some((cr, kr, tr))) =
                    (best.get(&left), best.get(&right))
                {
                    if stats.connected(left, right) {
                        visited += 1;
                        let out = stats.join_card(*kl, left, *kr, right);
                        let cost = cl + cr + out; // C_out
                        if chosen.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                            chosen = Some((
                                cost,
                                out,
                                JoinTree::Join(Box::new(tl.clone()), Box::new(tr.clone())),
                            ));
                        }
                    }
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        if let Some(c) = chosen {
            best.insert(s, c);
        }
    }
    let (_, _, tree) = best
        .remove(&full)
        .ok_or_else(|| RelGoError::plan("pattern is disconnected"))?;
    Ok((
        tree,
        SearchStats {
            plans_visited: visited,
            timed_out: false,
        },
    ))
}

/// Calcite-like exhaustive enumeration: recursively explores *every*
/// ordered connected binary join tree without memoization, tracking the
/// C_out-cheapest. The visit count grows with the full agnostic search
/// space of Fig. 4a; the timeout bounds the damage and falls back to the
/// best plan found so far (or greedy if none completed).
fn exhaustive_order(
    stats: &LowOrderStats<'_>,
    timeout: Duration,
) -> Result<(JoinTree, SearchStats)> {
    let m = stats.item_card.len();
    let full: u32 = (1u32 << m) - 1;
    let start = Instant::now();
    let mut visited = 0u64;
    let mut timed_out = false;

    // Returns (cost, card, tree) for the cheapest plan of `s`, exploring
    // every split every time (no memo — deliberately Calcite-Volcano-ish).
    fn explore(
        stats: &LowOrderStats<'_>,
        s: u32,
        start: &Instant,
        timeout: Duration,
        visited: &mut u64,
        timed_out: &mut bool,
    ) -> Option<(f64, f64, JoinTree)> {
        *visited += 1;
        if (*visited).is_multiple_of(64) && start.elapsed() > timeout {
            *timed_out = true;
        }
        if *timed_out {
            return None;
        }
        if s.count_ones() == 1 {
            let i = s.trailing_zeros() as usize;
            return Some((0.0, stats.item_card[i], JoinTree::Leaf(i)));
        }
        let mut best: Option<(f64, f64, JoinTree)> = None;
        let low = s & s.wrapping_neg();
        let rest = s & !low;
        let mut sub = rest;
        loop {
            let left = sub | low;
            let right = s & !left;
            if right != 0
                && stats.connected(left, right)
                && connected_set(stats, left)
                && connected_set(stats, right)
            {
                if let Some((cl, kl, tl)) = explore(stats, left, start, timeout, visited, timed_out)
                {
                    if let Some((cr, kr, tr)) =
                        explore(stats, right, start, timeout, visited, timed_out)
                    {
                        let out = stats.join_card(kl, left, kr, right);
                        let cost = cl + cr + out;
                        if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                            best = Some((cost, out, JoinTree::Join(Box::new(tl), Box::new(tr))));
                        }
                    }
                }
            }
            if sub == 0 || *timed_out {
                break;
            }
            sub = (sub - 1) & rest;
        }
        best
    }

    let result = explore(stats, full, &start, timeout, &mut visited, &mut timed_out);
    let tree = match result {
        Some((_, _, t)) if !timed_out => t,
        _ => {
            timed_out = true;
            greedy_order(stats)?
        }
    };
    Ok((
        tree,
        SearchStats {
            plans_visited: visited,
            timed_out,
        },
    ))
}

/// Whether an item subset is connected through shared vertices.
fn connected_set(stats: &LowOrderStats<'_>, items: u32) -> bool {
    if items == 0 {
        return false;
    }
    let m = stats.item_card.len();
    let start = items.trailing_zeros();
    let mut seen = 1u32 << start;
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..m {
            if items & (1 << i) != 0 && seen & (1 << i) == 0 {
                for j in 0..m {
                    if seen & (1 << j) != 0 && stats.connected(1 << i, 1 << j) {
                        seen |= 1 << i;
                        changed = true;
                        break;
                    }
                }
            }
        }
    }
    seen == items
}

/// Convert a join tree over edge items into a physical graph plan: leaves
/// scan edge relations (applying pushed vertex predicates at their first
/// binding), internal nodes hash-join on shared bound vertices.
fn tree_to_plan(
    pattern: &Pattern,
    view: &GraphView,
    stats: &LowOrderStats<'_>,
    tree: &JoinTree,
) -> Result<GraphOp> {
    // Assign each predicated vertex to the lowest-indexed incident edge so
    // the filter is applied exactly once. When vertex relations are join
    // items themselves, their scans carry the predicate instead.
    let mut filter_site: FxHashMap<usize, usize> = FxHashMap::default();
    if !stats.with_vertex_items {
        for v in 0..pattern.vertex_count() {
            if pattern.vertex(v).predicate.is_some() {
                let site =
                    pattern.incident_edges(v).into_iter().min().ok_or_else(|| {
                        RelGoError::plan("predicated vertex has no incident edge")
                    })?;
                filter_site.insert(v, site);
            }
        }
    }
    build_plan(pattern, view, stats, tree, &filter_site).map(|(op, _, _)| op)
}

fn build_plan(
    pattern: &Pattern,
    view: &GraphView,
    stats: &LowOrderStats<'_>,
    tree: &JoinTree,
    filter_site: &FxHashMap<usize, usize>,
) -> Result<(GraphOp, u32, f64)> {
    match tree {
        JoinTree::Leaf(i) if *i >= pattern.edge_count() => {
            // A vertex-relation leaf (Calcite-like full search space).
            let v = *i - pattern.edge_count();
            let card = stats.item_card[*i];
            Ok((
                GraphOp::ScanVertex {
                    v,
                    predicate: pattern.vertex(v).predicate.clone(),
                    ann: PlanAnnotation {
                        est_card: card,
                        est_cost: stats.vertex_card[v],
                    },
                },
                1 << *i,
                card,
            ))
        }
        JoinTree::Leaf(i) => {
            let e = pattern.edge(*i);
            let raw = view.edge_count(e.label) as f64;
            let mut op = GraphOp::ScanEdge {
                e: *i,
                predicate: e.predicate.clone(),
                ann: PlanAnnotation {
                    est_card: raw,
                    est_cost: raw,
                },
            };
            let mut card = stats.item_card[*i];
            for v in [e.src, e.dst] {
                if filter_site.get(&v) == Some(i) {
                    let predicate = pattern
                        .vertex(v)
                        .predicate
                        .clone()
                        .expect("filter sites only exist for predicated vertices");
                    op = GraphOp::FilterVertex {
                        input: Box::new(op),
                        v,
                        predicate,
                        ann: PlanAnnotation {
                            est_card: card,
                            est_cost: raw,
                        },
                    };
                }
            }
            let _ = &mut card;
            Ok((op, 1 << *i, stats.item_card[*i]))
        }
        JoinTree::Join(l, r) => {
            let (lop, litems, lcard) = build_plan(pattern, view, stats, l, filter_site)?;
            let (rop, ritems, rcard) = build_plan(pattern, view, stats, r, filter_site)?;
            let shared = stats.bound_vertices(litems) & stats.bound_vertices(ritems);
            let on_vertices: Vec<usize> = (0..pattern.vertex_count())
                .filter(|&v| shared & (1 << v) != 0)
                .collect();
            let card = stats.join_card(lcard, litems, rcard, ritems);
            let cost = lop.annotation().est_cost + rop.annotation().est_cost + card;
            Ok((
                GraphOp::JoinSub {
                    left: Box::new(lop),
                    right: Box::new(rop),
                    on_vertices,
                    on_edges: Vec::new(),
                    ann: PlanAnnotation {
                        est_card: card,
                        est_cost: cost,
                    },
                },
                litems | ritems,
                card,
            ))
        }
    }
}

/// GRainDB upgrade: rewrite `JoinSub(left, ScanEdge e)` (or its mirror)
/// into `EXPAND` when exactly one endpoint of `e` is bound on the other
/// side — the predefined join. Joins that close a cycle (both endpoints
/// bound) stay hash joins, which is precisely where GRainDB loses to
/// RelGo's `EXPAND_INTERSECT`.
pub fn upgrade_to_predefined_joins(pattern: &Pattern, op: GraphOp) -> GraphOp {
    match op {
        GraphOp::JoinSub {
            left,
            right,
            on_vertices,
            on_edges,
            ann,
        } => {
            let left = Box::new(upgrade_to_predefined_joins(pattern, *left));
            let right = Box::new(upgrade_to_predefined_joins(pattern, *right));
            // Try to turn the join into an expand of a single edge leaf.
            for (probe, leaf) in [(&left, &right), (&right, &left)] {
                if let Some((e, filters)) = as_edge_leaf(leaf) {
                    let edge = pattern.edge(e);
                    let probe_bound = probe.bound_elements(pattern);
                    let src_bound = probe_bound.contains(&PatternElem::Vertex(edge.src));
                    let dst_bound = probe_bound.contains(&PatternElem::Vertex(edge.dst));
                    if src_bound != dst_bound {
                        let (from, to, dir) = if src_bound {
                            (edge.src, edge.dst, Direction::Out)
                        } else {
                            (edge.dst, edge.src, Direction::In)
                        };
                        // Vertex filters the leaf carried must not be lost:
                        // a filter on the *target* runs inline during the
                        // expansion; a filter on the *source* (bound by the
                        // probe but never evaluated, since its site was
                        // this leaf) is applied below the expand so it
                        // prunes before the fan-out.
                        let mut input = probe.clone();
                        let mut vertex_predicate = None;
                        for (v, pred) in filters {
                            if v == to {
                                vertex_predicate = Some(match vertex_predicate {
                                    None => pred,
                                    Some(p) => {
                                        relgo_storage::ScalarExpr::And(Box::new(p), Box::new(pred))
                                    }
                                });
                            } else {
                                input = Box::new(GraphOp::FilterVertex {
                                    input,
                                    v,
                                    predicate: pred,
                                    ann,
                                });
                            }
                        }
                        return GraphOp::Expand {
                            input,
                            from,
                            edge: e,
                            to,
                            dir,
                            emit_edge: true,
                            edge_predicate: edge.predicate.clone(),
                            vertex_predicate,
                            ann,
                        };
                    }
                }
            }
            GraphOp::JoinSub {
                left,
                right,
                on_vertices,
                on_edges,
                ann,
            }
        }
        GraphOp::Expand {
            input,
            from,
            edge,
            to,
            dir,
            emit_edge,
            edge_predicate,
            vertex_predicate,
            ann,
        } => GraphOp::Expand {
            input: Box::new(upgrade_to_predefined_joins(pattern, *input)),
            from,
            edge,
            to,
            dir,
            emit_edge,
            edge_predicate,
            vertex_predicate,
            ann,
        },
        GraphOp::ExpandIntersect {
            input,
            legs,
            to,
            emit_edges,
            vertex_predicate,
            ann,
        } => GraphOp::ExpandIntersect {
            input: Box::new(upgrade_to_predefined_joins(pattern, *input)),
            legs,
            to,
            emit_edges,
            vertex_predicate,
            ann,
        },
        GraphOp::FilterVertex {
            input,
            v,
            predicate,
            ann,
        } => GraphOp::FilterVertex {
            input: Box::new(upgrade_to_predefined_joins(pattern, *input)),
            v,
            predicate,
            ann,
        },
        leaf => leaf,
    }
}

/// If `op` is a `ScanEdge` optionally wrapped in vertex filters, return the
/// edge index and the filters (innermost first).
fn as_edge_leaf(op: &GraphOp) -> Option<(usize, Vec<(usize, relgo_storage::ScalarExpr)>)> {
    let mut filters = Vec::new();
    let mut cur = op;
    loop {
        match cur {
            GraphOp::ScanEdge { e, .. } => return Some((*e, filters)),
            GraphOp::FilterVertex {
                input,
                v,
                predicate,
                ..
            } => {
                filters.push((*v, predicate.clone()));
                cur = input;
            }
            _ => return None,
        }
    }
}

/// Kùzu-like graph-native heuristic plan: start at the most selective
/// vertex, then expand edges in BFS order (no cost model, no intersection,
/// full edge materialization); cycle-closing edges become hash joins with
/// their edge relation.
pub fn kuzu_heuristic_plan(pattern: &Pattern, view: &GraphView) -> Result<GraphOp> {
    let n = pattern.vertex_count();
    if n == 0 {
        return Err(RelGoError::plan("empty pattern"));
    }
    // Start vertex: predicated if any, else smallest label cardinality.
    let start = (0..n)
        .find(|&v| pattern.vertex(v).predicate.is_some())
        .unwrap_or_else(|| {
            (0..n)
                .min_by_key(|&v| view.vertex_count(pattern.vertex(v).label))
                .expect("non-empty pattern")
        });
    let start_card = view.vertex_count(pattern.vertex(start).label) as f64;
    let mut plan = GraphOp::ScanVertex {
        v: start,
        predicate: pattern.vertex(start).predicate.clone(),
        ann: PlanAnnotation {
            est_card: start_card,
            est_cost: start_card,
        },
    };
    let mut bound_v: u32 = 1 << start;
    let mut bound_e: u64 = 0;
    // BFS over pattern edges.
    loop {
        // First, close any edge whose endpoints are both bound (cycle).
        let mut progressed = false;
        for (ei, e) in pattern.edges().iter().enumerate() {
            if bound_e & (1 << ei) != 0 {
                continue;
            }
            let sb = bound_v & (1 << e.src) != 0;
            let db = bound_v & (1 << e.dst) != 0;
            if sb && db {
                let raw = view.edge_count(e.label) as f64;
                plan = GraphOp::JoinSub {
                    left: Box::new(plan),
                    right: Box::new(GraphOp::ScanEdge {
                        e: ei,
                        predicate: e.predicate.clone(),
                        ann: PlanAnnotation {
                            est_card: raw,
                            est_cost: raw,
                        },
                    }),
                    on_vertices: vec![e.src, e.dst],
                    on_edges: Vec::new(),
                    ann: PlanAnnotation::default(),
                };
                bound_e |= 1 << ei;
                progressed = true;
            }
        }
        // Then expand the lowest-indexed frontier edge.
        if let Some((ei, e)) = pattern.edges().iter().enumerate().find(|(ei, e)| {
            bound_e & (1 << ei) == 0
                && (bound_v & (1 << e.src) != 0) != (bound_v & (1 << e.dst) != 0)
        }) {
            let src_bound = bound_v & (1 << e.src) != 0;
            let (from, to, dir) = if src_bound {
                (e.src, e.dst, Direction::Out)
            } else {
                (e.dst, e.src, Direction::In)
            };
            plan = GraphOp::Expand {
                input: Box::new(plan),
                from,
                edge: ei,
                to,
                dir,
                emit_edge: true,
                edge_predicate: e.predicate.clone(),
                vertex_predicate: pattern.vertex(to).predicate.clone(),
                ann: PlanAnnotation::default(),
            };
            bound_v |= 1 << to;
            bound_e |= 1 << ei;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    if bound_e.count_ones() as usize != pattern.edge_count() {
        return Err(RelGoError::plan("Kùzu heuristic failed to cover all edges"));
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::{DataType, LabelId};
    use relgo_graph::RGMapping;
    use relgo_pattern::PatternBuilder;
    use relgo_storage::table::table_of;
    use relgo_storage::{Database, ScalarExpr};

    fn view() -> GraphView {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![1.into(), "Tom".into()],
                vec![2.into(), "Bob".into()],
                vec![3.into(), "David".into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into()],
                vec![2.into(), 2.into(), 100.into()],
                vec![3.into(), 2.into(), 200.into()],
                vec![4.into(), 3.into(), 200.into()],
            ],
        ));
        db.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 2.into(), 1.into()],
                vec![3.into(), 2.into(), 3.into()],
                vec![4.into(), 3.into(), 2.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db.set_primary_key("Knows", "knows_id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");
        let mut g = GraphView::build(&mut db, mapping).unwrap();
        g.build_index().unwrap();
        g
    }

    fn triangle() -> Pattern {
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let p2 = b.vertex("p2", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p1, p2, LabelId(1)).unwrap();
        b.edge(p1, m, LabelId(0)).unwrap();
        b.edge(p2, m, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    fn cfg(algo: JoinOrderAlgo, index: bool) -> AgnosticConfig {
        AgnosticConfig {
            algo,
            use_graph_index: index,
            timeout: Duration::from_secs(5),
        }
    }

    #[test]
    fn greedy_covers_all_edges_with_joins() {
        let v = view();
        let (plan, _) =
            optimize_agnostic(&triangle(), &v, &cfg(JoinOrderAlgo::Greedy, false)).unwrap();
        let bound = plan.bound_elements(&triangle());
        for e in 0..3 {
            assert!(bound.contains(&PatternElem::Edge(e)), "edge {e} unbound");
        }
        assert!(plan.uses_join());
        assert!(!plan.uses_intersect(), "agnostic plans never intersect");
    }

    #[test]
    fn graindb_upgrade_introduces_expands() {
        let v = view();
        let (hash_plan, _) =
            optimize_agnostic(&triangle(), &v, &cfg(JoinOrderAlgo::Greedy, false)).unwrap();
        let (upgraded, _) =
            optimize_agnostic(&triangle(), &v, &cfg(JoinOrderAlgo::Greedy, true)).unwrap();
        fn count_expands(op: &GraphOp) -> usize {
            match op {
                GraphOp::Expand { input, .. } => 1 + count_expands(input),
                GraphOp::ExpandIntersect { input, .. } | GraphOp::FilterVertex { input, .. } => {
                    count_expands(input)
                }
                GraphOp::JoinSub { left, right, .. } => count_expands(left) + count_expands(right),
                _ => 0,
            }
        }
        assert_eq!(count_expands(&hash_plan), 0);
        assert!(count_expands(&upgraded) >= 1, "plan: {upgraded:?}");
        // The triangle-closing edge must stay a hash join.
        assert!(upgraded.uses_join(), "cycle closure stays a join");
    }

    #[test]
    fn dp_and_exhaustive_agree_on_small_patterns() {
        let v = view();
        let (dp, s1) =
            optimize_agnostic(&triangle(), &v, &cfg(JoinOrderAlgo::DpSize, false)).unwrap();
        let (ex, s2) =
            optimize_agnostic(&triangle(), &v, &cfg(JoinOrderAlgo::Exhaustive, false)).unwrap();
        assert!(!s1.timed_out);
        assert!(!s2.timed_out);
        // The exhaustive search must visit at least as many plans as DP.
        assert!(s2.plans_visited >= s1.plans_visited);
        // Both cover all edges.
        for plan in [&dp, &ex] {
            let bound = plan.bound_elements(&triangle());
            assert_eq!(
                bound
                    .iter()
                    .filter(|e| matches!(e, PatternElem::Edge(_)))
                    .count(),
                3
            );
        }
    }

    #[test]
    fn exhaustive_times_out_gracefully() {
        // A 8-edge path explodes without memoization; a zero timeout forces
        // the greedy fallback immediately.
        let mut b = PatternBuilder::new();
        let mut prev = b.vertex("v0", LabelId(0));
        for i in 1..=6 {
            let v = b.vertex(&format!("v{i}"), LabelId(0));
            b.edge(prev, v, LabelId(1)).unwrap();
            prev = v;
        }
        let p = b.build().unwrap();
        let v = view();
        let mut c = cfg(JoinOrderAlgo::Exhaustive, false);
        c.timeout = Duration::from_millis(0);
        let (plan, stats) = optimize_agnostic(&p, &v, &c).unwrap();
        assert!(stats.timed_out);
        assert_eq!(
            plan.bound_elements(&p)
                .iter()
                .filter(|e| matches!(e, PatternElem::Edge(_)))
                .count(),
            6
        );
    }

    #[test]
    fn vertex_predicates_become_filters_once() {
        let mut p = triangle();
        p.add_vertex_predicate(0, ScalarExpr::col_eq(1, "Tom"));
        let v = view();
        let (plan, _) = optimize_agnostic(&p, &v, &cfg(JoinOrderAlgo::Greedy, false)).unwrap();
        fn count_filters(op: &GraphOp) -> usize {
            match op {
                GraphOp::FilterVertex { input, .. } => 1 + count_filters(input),
                GraphOp::Expand { input, .. } | GraphOp::ExpandIntersect { input, .. } => {
                    count_filters(input)
                }
                GraphOp::JoinSub { left, right, .. } => count_filters(left) + count_filters(right),
                _ => 0,
            }
        }
        assert_eq!(count_filters(&plan), 1, "plan: {plan:?}");
    }

    #[test]
    fn kuzu_plan_is_expand_heavy_and_covers_pattern() {
        let v = view();
        let plan = kuzu_heuristic_plan(&triangle(), &v).unwrap();
        let bound = plan.bound_elements(&triangle());
        assert_eq!(bound.len(), 6, "3 vertices + 3 edges: {bound:?}");
        assert!(!plan.uses_intersect(), "Kùzu-like mode has no EI join");
    }

    #[test]
    fn single_vertex_pattern_scans() {
        let mut b = PatternBuilder::new();
        b.vertex("p", LabelId(0));
        let p = b.build().unwrap();
        let v = view();
        let (plan, _) = optimize_agnostic(&p, &v, &cfg(JoinOrderAlgo::Greedy, true)).unwrap();
        assert!(matches!(plan, GraphOp::ScanVertex { .. }));
    }
}
