//! Heuristic optimization rules across the relational/graph boundary
//! (paper §4.2.3).
//!
//! * [`filter_into_match`] — `FilterIntoMatchRule`: a selection conjunct
//!   whose columns all project from a *single* pattern element is rewritten
//!   over the element's backing relation and pushed into the pattern as a
//!   constraint, so the graph optimizer can exploit its selectivity.
//! * [`trim_and_fuse`] — `TrimAndFuseRule`: the field trimmer removes graph
//!   columns that no downstream operator consumes; expansions whose edge
//!   binding becomes unused are fused from `EXPAND_EDGE` + `GET_VERTEX`
//!   into a single `EXPAND`.

use crate::graph_plan::GraphOp;
use crate::spjm::{AttrRef, GraphColumn, PatternElemRef, SpjmQuery};
use relgo_common::FxHashSet;
use relgo_storage::ScalarExpr;

/// Flatten an expression into its top-level conjuncts.
pub fn split_conjuncts(expr: &ScalarExpr) -> Vec<ScalarExpr> {
    match expr {
        ScalarExpr::And(l, r) => {
            let mut out = split_conjuncts(l);
            out.extend(split_conjuncts(r));
            out
        }
        other => vec![other.clone()],
    }
}

/// Rebuild a conjunction from parts (`None` when empty).
pub fn conjoin_all(parts: Vec<ScalarExpr>) -> Option<ScalarExpr> {
    parts.into_iter().reduce(|a, b| a.and(b))
}

/// If every column referenced by `conjunct` is a graph column projected
/// (as a plain attribute) from one single pattern element, return that
/// element and the conjunct rewritten over the element's backing relation.
fn pushable_target(
    query: &SpjmQuery,
    conjunct: &ScalarExpr,
) -> Option<(PatternElemRef, ScalarExpr)> {
    let refs = conjunct.referenced_columns();
    if refs.is_empty() {
        return None;
    }
    let mut element: Option<PatternElemRef> = None;
    for &g in &refs {
        let col: &GraphColumn = query.columns.get(g)?; // table columns are out of range → None
        match col.attr {
            AttrRef::Column(_) => {}
            AttrRef::Id => return None, // id() projections are not pushable
        }
        match element {
            None => element = Some(col.element),
            Some(e) if e == col.element => {}
            Some(_) => return None,
        }
    }
    let element = element?;
    // Rewrite: global column g → backing-table column of that projection.
    let rewritten = conjunct.remap_columns(&|g| match query.columns[g].attr {
        AttrRef::Column(c) => c,
        AttrRef::Id => unreachable!("Id projections rejected above"),
    });
    Some((element, rewritten))
}

/// Apply `FilterIntoMatchRule`: push every single-element selection conjunct
/// into the pattern; the rest of the selection is retained.
pub fn filter_into_match(query: &SpjmQuery) -> SpjmQuery {
    let Some(selection) = &query.selection else {
        return query.clone();
    };
    let mut out = query.clone();
    let mut kept = Vec::new();
    for conjunct in split_conjuncts(selection) {
        match pushable_target(query, &conjunct) {
            Some((PatternElemRef::Vertex(v), rewritten)) => {
                out.pattern.add_vertex_predicate(v, rewritten);
            }
            Some((PatternElemRef::Edge(e), rewritten)) => {
                out.pattern.add_edge_predicate(e, rewritten);
            }
            None => kept.push(conjunct),
        }
    }
    out.selection = conjoin_all(kept);
    out
}

/// The set of global columns actually consumed downstream of the graph
/// table: projection, selection, join conditions and aggregates. An empty
/// projection with no aggregates means "return everything".
fn used_global_columns(query: &SpjmQuery) -> Option<FxHashSet<usize>> {
    if query.projection.is_empty() && query.aggregates.is_empty() {
        return None; // everything is used
    }
    let mut used: FxHashSet<usize> = FxHashSet::default();
    used.extend(query.projection.iter().copied());
    for a in &query.aggregates {
        used.insert(a.column);
    }
    for &(l, r) in &query.join_on {
        used.insert(l);
        used.insert(r);
    }
    if let Some(sel) = &query.selection {
        used.extend(sel.referenced_columns());
    }
    Some(used)
}

/// Apply `TrimAndFuseRule`.
///
/// 1. **Field trim**: graph columns that no downstream operator consumes are
///    removed from the `COLUMNS` clause (all later global indices are
///    remapped).
/// 2. **Fuse**: `Expand` operators whose edge binding is no longer
///    referenced by any remaining column switch `emit_edge` off — the
///    `EXPAND_EDGE`/`GET_VERTEX` pair becomes the fused `EXPAND`; star legs
///    of `EXPAND_INTERSECT` are trimmed likewise.
pub fn trim_and_fuse(query: &SpjmQuery, graph: GraphOp) -> (SpjmQuery, GraphOp) {
    let mut out = query.clone();
    if let Some(used) = used_global_columns(query) {
        let width = query.graph_width();
        let keep: Vec<usize> = (0..width).filter(|i| used.contains(i)).collect();
        if keep.len() != width {
            // Build the old→new global index map: kept graph columns first,
            // then all table columns shifted down.
            let removed = width - keep.len();
            let mut remap = vec![usize::MAX; width];
            for (new, &old) in keep.iter().enumerate() {
                remap[old] = new;
            }
            let map = |old: usize| -> usize {
                if old < width {
                    remap[old]
                } else {
                    old - removed
                }
            };
            out.columns = keep.iter().map(|&i| query.columns[i].clone()).collect();
            out.projection = out.projection.iter().map(|&c| map(c)).collect();
            for a in &mut out.aggregates {
                a.column = map(a.column);
            }
            for (l, r) in &mut out.join_on {
                *l = map(*l);
                *r = map(*r);
            }
            if let Some(sel) = &out.selection {
                out.selection = Some(sel.remap_columns(&|c| map(c)));
            }
        }
    }
    // Edges still required by the remaining COLUMNS clause. Under
    // no-repeated-edge semantics the all-distinct operator compares edge
    // bindings, so nothing may be fused away.
    let needed_edges: FxHashSet<usize> =
        if out.pattern.semantics() == relgo_pattern::MatchSemantics::DistinctEdges {
            (0..out.pattern.edge_count()).collect()
        } else {
            out.columns
                .iter()
                .filter_map(|c| match c.element {
                    PatternElemRef::Edge(e) => Some(e),
                    PatternElemRef::Vertex(_) => None,
                })
                .collect()
        };
    let fused = fuse(graph, &needed_edges);
    (out, fused)
}

fn fuse(op: GraphOp, needed: &FxHashSet<usize>) -> GraphOp {
    match op {
        GraphOp::Expand {
            input,
            from,
            edge,
            to,
            dir,
            emit_edge,
            edge_predicate,
            vertex_predicate,
            ann,
        } => GraphOp::Expand {
            input: Box::new(fuse(*input, needed)),
            from,
            edge,
            to,
            dir,
            emit_edge: emit_edge && needed.contains(&edge),
            edge_predicate,
            vertex_predicate,
            ann,
        },
        GraphOp::ExpandIntersect {
            input,
            legs,
            to,
            emit_edges,
            vertex_predicate,
            ann,
        } => {
            let still_needed = legs.iter().any(|l| needed.contains(&l.edge));
            GraphOp::ExpandIntersect {
                input: Box::new(fuse(*input, needed)),
                legs,
                to,
                emit_edges: emit_edges && still_needed,
                vertex_predicate,
                ann,
            }
        }
        GraphOp::JoinSub {
            left,
            right,
            on_vertices,
            on_edges,
            ann,
        } => GraphOp::JoinSub {
            left: Box::new(fuse(*left, needed)),
            right: Box::new(fuse(*right, needed)),
            on_vertices,
            on_edges,
            ann,
        },
        GraphOp::FilterVertex {
            input,
            v,
            predicate,
            ann,
        } => GraphOp::FilterVertex {
            input: Box::new(fuse(*input, needed)),
            v,
            predicate,
            ann,
        },
        leaf @ (GraphOp::ScanVertex { .. } | GraphOp::ScanEdge { .. }) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_plan::PlanAnnotation;
    use crate::spjm::SpjmBuilder;
    use relgo_common::LabelId;
    use relgo_graph::Direction;
    use relgo_pattern::{Pattern, PatternBuilder};

    fn pattern() -> Pattern {
        let mut b = PatternBuilder::new();
        let p1 = b.vertex("p1", LabelId(0));
        let m = b.vertex("m", LabelId(1));
        b.edge(p1, m, LabelId(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn split_and_conjoin_roundtrip() {
        let e = ScalarExpr::col_eq(0, 1)
            .and(ScalarExpr::col_eq(1, 2))
            .and(ScalarExpr::col_eq(2, 3));
        let parts = split_conjuncts(&e);
        assert_eq!(parts.len(), 3);
        let back = conjoin_all(parts).unwrap();
        assert_eq!(split_conjuncts(&back).len(), 3);
    }

    #[test]
    fn filter_into_match_pushes_single_vertex_conjunct() {
        let mut b = SpjmBuilder::new(pattern());
        let name = b.vertex_column(0, 1, "p_name"); // Person.name
        let _mid = b.vertex_id(1, "m_id");
        b.select(ScalarExpr::col_eq(name, "Tom"));
        let q = b.build();
        let rewritten = filter_into_match(&q);
        assert!(rewritten.selection.is_none(), "conjunct fully pushed");
        let pred = rewritten.pattern.vertex(0).predicate.as_ref().unwrap();
        // Rewritten over the backing table: Person.name is column 1.
        assert_eq!(pred.referenced_columns(), vec![1]);
        // Original query untouched.
        assert!(q.pattern.vertex(0).predicate.is_none());
    }

    #[test]
    fn filter_into_match_pushes_edge_conjunct() {
        let mut b = SpjmBuilder::new(pattern());
        let d = b.edge_column(0, 3, "like_date"); // Likes.date
        b.select(ScalarExpr::col_cmp(
            d,
            relgo_storage::BinaryOp::Gt,
            relgo_common::Value::Date(20),
        ));
        let q = b.build();
        let rewritten = filter_into_match(&q);
        assert!(rewritten.selection.is_none());
        assert!(rewritten.pattern.edge(0).predicate.is_some());
    }

    #[test]
    fn multi_element_conjunct_stays() {
        let mut b = SpjmBuilder::new(pattern());
        let a = b.vertex_column(0, 1, "p_name");
        let c = b.vertex_column(1, 1, "m_content");
        b.select(ScalarExpr::Cmp(
            relgo_storage::BinaryOp::Eq,
            Box::new(ScalarExpr::Col(a)),
            Box::new(ScalarExpr::Col(c)),
        ));
        let q = b.build();
        let rewritten = filter_into_match(&q);
        assert!(
            rewritten.selection.is_some(),
            "cross-element predicate kept"
        );
        assert!(!rewritten.pattern.has_predicates());
    }

    #[test]
    fn id_projection_not_pushed() {
        let mut b = SpjmBuilder::new(pattern());
        let id = b.vertex_id(0, "p_id");
        b.select(ScalarExpr::col_eq(id, 5));
        let q = b.build();
        let rewritten = filter_into_match(&q);
        assert!(rewritten.selection.is_some());
        assert!(!rewritten.pattern.has_predicates());
    }

    fn expand_plan(emit: bool) -> GraphOp {
        GraphOp::Expand {
            input: Box::new(GraphOp::ScanVertex {
                v: 0,
                predicate: None,
                ann: PlanAnnotation::default(),
            }),
            from: 0,
            edge: 0,
            to: 1,
            dir: Direction::Out,
            emit_edge: emit,
            edge_predicate: None,
            vertex_predicate: None,
            ann: PlanAnnotation::default(),
        }
    }

    #[test]
    fn trim_removes_unused_columns_and_fuses() {
        let mut b = SpjmBuilder::new(pattern());
        let pname = b.vertex_column(0, 1, "p_name");
        let _eid = b.edge_id(0, "like_id"); // never used downstream
        b.project(&[pname]);
        let q = b.build();
        let (q2, g2) = trim_and_fuse(&q, expand_plan(true));
        assert_eq!(q2.graph_width(), 1, "edge id column trimmed");
        assert_eq!(q2.projection, vec![0]);
        match g2 {
            GraphOp::Expand { emit_edge, .. } => assert!(!emit_edge, "fused into EXPAND"),
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn trim_keeps_edges_used_by_selection() {
        let mut b = SpjmBuilder::new(pattern());
        let pname = b.vertex_column(0, 1, "p_name");
        let edate = b.edge_column(0, 3, "like_date");
        b.project(&[pname]);
        b.select(ScalarExpr::col_cmp(
            edate,
            relgo_storage::BinaryOp::Gt,
            relgo_common::Value::Date(10),
        ));
        let q = b.build();
        let (q2, g2) = trim_and_fuse(&q, expand_plan(true));
        assert_eq!(q2.graph_width(), 2, "edge column kept for the selection");
        match g2 {
            GraphOp::Expand { emit_edge, .. } => assert!(emit_edge),
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn empty_projection_means_everything_used() {
        let mut b = SpjmBuilder::new(pattern());
        b.vertex_column(0, 1, "p_name");
        b.edge_id(0, "like_id");
        let q = b.build();
        let (q2, g2) = trim_and_fuse(&q, expand_plan(true));
        assert_eq!(q2.graph_width(), 2);
        match g2 {
            GraphOp::Expand { emit_edge, .. } => assert!(emit_edge),
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn trim_remaps_table_column_indices() {
        let mut b = SpjmBuilder::new(pattern());
        let _pname = b.vertex_column(0, 1, "p_name"); // 0 — unused
        let pid = b.vertex_column(0, 2, "p_place"); // 1 — join key
        b.table("Place");
        // Join graph col 1 with Place.id at global index 2 (graph width 2).
        b.join(pid, 2);
        b.project(&[3]); // Place.name at global 3
        let q = b.build();
        let (q2, _) = trim_and_fuse(&q, expand_plan(true));
        assert_eq!(q2.graph_width(), 1);
        // After trimming one graph column, table columns shift down by 1.
        assert_eq!(q2.join_on, vec![(0, 1)]);
        assert_eq!(q2.projection, vec![2]);
    }
}
