//! # relgo-common
//!
//! Shared primitives for the RelGo-RS converged relational-graph optimization
//! framework (a from-scratch Rust reproduction of *"Towards a Converged
//! Relational-Graph Optimization Framework"*, Lou et al., SIGMOD 2024).
//!
//! This crate hosts the vocabulary types every other crate speaks:
//!
//! * [`value::Value`] and [`value::DataType`] — the dynamically typed scalar
//!   domain of relational tuples and graph-element attributes;
//! * [`schema::Schema`] / [`schema::Field`] — relation schemas;
//! * [`error::RelGoError`] — the unified error type;
//! * [`fxhash`] — a vendored Fx-style fast hash map/set (the performance
//!   guide recommends a fast non-cryptographic hasher for integer-keyed
//!   tables; we vendor it instead of adding a dependency);
//! * [`ids`] — strongly typed identifiers (`LabelId`, `RowId`, `ElementId`);
//! * [`morsel`] — the morsel-driven intra-query parallel scheduler shared by
//!   the execution engine and GLogue counting.

pub mod error;
pub mod fxhash;
pub mod ids;
pub mod morsel;
pub mod schema;
pub mod value;

pub use error::{RelGoError, Result};
pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::{ElementId, LabelId, RowId};
pub use schema::{Field, Schema};
pub use value::{DataType, Value};
