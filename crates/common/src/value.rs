//! The scalar value domain.
//!
//! Relational tuples and graph-element attributes draw their values from
//! [`Value`]. The domain matches what the paper's workloads need: 64-bit
//! integers (ids, dates as epoch days), floats (statistics), strings (names,
//! contents, country codes) and booleans.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Data type of a column or attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (also used for foreign keys and identifiers).
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Date stored as days since the Unix epoch.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Bool => "BOOL",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// Strings are reference-counted so that cloning values out of columns (and
/// carrying them through operators) never reallocates the character data —
/// the performance guide's `Rc/Arc` sharing recommendation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Shared UTF-8 string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Days since epoch.
    Date(i64),
}

impl Value {
    /// String constructor.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The value's data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Whether this value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view (`Int` and `Date` both expose their `i64`).
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) | Value::Date(i) => Some(*i),
            _ => None,
        }
    }

    /// Float view (`Float`, or lossless promotion of `Int`).
    #[inline]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String view.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Three-valued-logic comparison. Returns `None` if either side is NULL
    /// or the types are incomparable.
    pub fn try_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) | (Date(a), Date(b)) | (Int(a), Date(b)) | (Date(a), Int(b)) => {
                Some(a.cmp(b))
            }
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // NULL != NULL under SQL semantics is handled at the expression
        // layer; structural equality here treats Null == Null so values can
        // live in hash maps and be deduplicated.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.try_cmp(other) == Some(Ordering::Equal),
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(i) | Value::Date(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
            Value::Bool(b) => {
                state.write_u8(4);
                state.write_u8(*b as u8);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for deterministic output sorting: NULLs first, then
    /// by type tag, then by value.
    fn cmp(&self, other: &Self) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Date(_) => 2,
                Value::Float(_) => 3,
                Value::Str(_) => 4,
            }
        }
        match self.try_cmp(other) {
            Some(o) => o,
            None => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
                _ => tag(self).cmp(&tag(other)),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "d{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::str("x").data_type(), Some(DataType::Str));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Date(10).data_type(), Some(DataType::Date));
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int(2).try_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).try_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
        // Int and Date compare (dates are epoch days).
        assert_eq!(
            Value::Date(100).try_cmp(&Value::Int(99)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn null_comparisons_are_none() {
        assert_eq!(Value::Null.try_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).try_cmp(&Value::Null), None);
    }

    #[test]
    fn incompatible_types_are_none() {
        assert_eq!(Value::str("a").try_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).try_cmp(&Value::Float(1.0)), None);
    }

    #[test]
    fn structural_equality_and_hash_agree() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(Value::str("abc"), Value::str("abc"));
        assert_eq!(h(&Value::str("abc")), h(&Value::str("abc")));
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(h(&Value::Int(5)), h(&Value::Date(5)), "Int/Date unified");
    }

    #[test]
    fn total_order_is_deterministic() {
        let mut vs = [
            Value::str("b"),
            Value::Null,
            Value::Int(3),
            Value::Float(2.5),
            Value::Bool(true),
            Value::str("a"),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        let pos_a = vs.iter().position(|v| v == &Value::str("a")).unwrap();
        let pos_b = vs.iter().position(|v| v == &Value::str("b")).unwrap();
        assert!(pos_a < pos_b);
    }

    #[test]
    fn display_round_trip_spot_checks() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("Tom").to_string(), "Tom");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(19_000).to_string(), "d19000");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
    }

    #[test]
    fn as_views() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Date(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::str("s").as_int(), None);
    }
}
