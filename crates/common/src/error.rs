//! Unified error type for RelGo-RS.
//!
//! All fallible public APIs across the workspace return [`Result<T>`]. The
//! variants are intentionally coarse: they distinguish *who is at fault*
//! (schema author, query author, planner, executor) rather than enumerating
//! every failure site.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, RelGoError>;

/// The unified error type of the RelGo-RS workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelGoError {
    /// A referenced catalog object (table, column, graph label) is unknown.
    NotFound(String),
    /// A schema-level contract is violated (duplicate names, arity mismatch,
    /// type mismatch between column and value, invalid RGMapping).
    Schema(String),
    /// A query is malformed (disconnected pattern, unknown pattern element,
    /// predicate referencing an unbound attribute).
    Query(String),
    /// The planner could not produce a plan (empty search space, timeout).
    Plan(String),
    /// A runtime execution failure (type error during evaluation, resource
    /// guard tripped such as the intermediate-result blow-up limit).
    Execution(String),
    /// The configured resource budget (memory/intermediate-size guard) was
    /// exceeded; models the paper's OOM outcomes (e.g. RelGoNoEI on QC3).
    ResourceExhausted(String),
    /// A first-committer-wins write conflict: another ingest commit touched
    /// an overlapping primary-key write-set since this batch's base epoch.
    /// Retryable — re-stage the batch against the current epoch.
    Conflict(String),
    /// The query's wall-clock deadline expired mid-execution (checked at
    /// morsel boundaries, see `morsel::TimeBudget`). Retryable with a
    /// longer deadline — the serving edge maps it to `503` + `Retry-After`.
    DeadlineExceeded(String),
}

impl RelGoError {
    /// Shorthand constructor for [`RelGoError::NotFound`].
    pub fn not_found(what: impl Into<String>) -> Self {
        RelGoError::NotFound(what.into())
    }

    /// Shorthand constructor for [`RelGoError::Schema`].
    pub fn schema(msg: impl Into<String>) -> Self {
        RelGoError::Schema(msg.into())
    }

    /// Shorthand constructor for [`RelGoError::Query`].
    pub fn query(msg: impl Into<String>) -> Self {
        RelGoError::Query(msg.into())
    }

    /// Shorthand constructor for [`RelGoError::Plan`].
    pub fn plan(msg: impl Into<String>) -> Self {
        RelGoError::Plan(msg.into())
    }

    /// Shorthand constructor for [`RelGoError::Execution`].
    pub fn execution(msg: impl Into<String>) -> Self {
        RelGoError::Execution(msg.into())
    }

    /// Shorthand constructor for [`RelGoError::Conflict`].
    pub fn conflict(msg: impl Into<String>) -> Self {
        RelGoError::Conflict(msg.into())
    }

    /// Shorthand constructor for [`RelGoError::DeadlineExceeded`].
    pub fn deadline_exceeded(msg: impl Into<String>) -> Self {
        RelGoError::DeadlineExceeded(msg.into())
    }
}

impl fmt::Display for RelGoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelGoError::NotFound(s) => write!(f, "not found: {s}"),
            RelGoError::Schema(s) => write!(f, "schema error: {s}"),
            RelGoError::Query(s) => write!(f, "query error: {s}"),
            RelGoError::Plan(s) => write!(f, "plan error: {s}"),
            RelGoError::Execution(s) => write!(f, "execution error: {s}"),
            RelGoError::ResourceExhausted(s) => write!(f, "resource exhausted: {s}"),
            RelGoError::Conflict(s) => write!(f, "write conflict: {s}"),
            RelGoError::DeadlineExceeded(s) => write!(f, "deadline exceeded: {s}"),
        }
    }
}

impl std::error::Error for RelGoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = RelGoError::not_found("table Person");
        assert_eq!(e.to_string(), "not found: table Person");
        let e = RelGoError::schema("duplicate column id");
        assert_eq!(e.to_string(), "schema error: duplicate column id");
        let e = RelGoError::query("pattern is disconnected");
        assert!(e.to_string().contains("disconnected"));
        let e = RelGoError::plan("no decomposition");
        assert!(e.to_string().starts_with("plan error"));
        let e = RelGoError::execution("type mismatch");
        assert!(e.to_string().starts_with("execution error"));
        let e = RelGoError::ResourceExhausted("intermediate > 1e9".into());
        assert!(e.to_string().starts_with("resource exhausted"));
        let e = RelGoError::conflict("Person.person_id = 7 vs epoch 3");
        assert!(e.to_string().starts_with("write conflict"));
        let e = RelGoError::deadline_exceeded("query ran past its 50ms deadline");
        assert!(e.to_string().starts_with("deadline exceeded"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            RelGoError::not_found("x"),
            RelGoError::NotFound("x".to_string())
        );
        assert_ne!(RelGoError::not_found("x"), RelGoError::schema("x"));
    }

    #[test]
    fn error_trait_object_usable() {
        fn fails() -> std::result::Result<(), Box<dyn std::error::Error>> {
            Err(Box::new(RelGoError::plan("boom")))
        }
        assert!(fails().is_err());
    }
}
