//! A vendored Fx-style hasher plus map/set aliases.
//!
//! The Rust performance guide recommends replacing SipHash with a fast
//! non-cryptographic hasher for hot, integer-keyed tables (`rustc-hash`'s
//! algorithm being the canonical choice). The sanctioned dependency list for
//! this workspace does not include `rustc-hash`, so we vendor the ~30-line
//! algorithm here: multiply-rotate mixing with the golden-ratio-derived
//! constant used by Firefox and rustc.
//!
//! HashDoS resistance is irrelevant for this workload (all keys are
//! internally generated row ids, label ids and canonical pattern codes).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (64-bit golden ratio) used by the Fx algorithm.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= (b as u64) << (8 * i);
            }
            self.add_to_hash(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash a single `u64` with the Fx algorithm (for ad-hoc fingerprinting).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

/// Combine two hash values order-dependently.
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    (a.rotate_left(5) ^ b).wrapping_mul(SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
    }

    #[test]
    fn byte_stream_matches_between_calls() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a byte stream");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a byte stream");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn tail_bytes_affect_hash() {
        let mut a = FxHasher::default();
        a.write(b"12345678X");
        let mut b = FxHasher::default();
        b.write(b"12345678Y");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn combine_is_order_dependent() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn string_keys_hash_consistently() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("Person".to_string(), 0);
        m.insert("Knows".to_string(), 1);
        assert_eq!(m["Person"], 0);
        assert_eq!(m["Knows"], 1);
    }
}
