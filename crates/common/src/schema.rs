//! Relation schemas.
//!
//! A [`Schema`] is an ordered collection of named, typed [`Field`]s, matching
//! the paper's definition `S = (a1, ..., an)` with per-attribute domains.

use crate::error::{RelGoError, Result};
use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named, typed attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Attribute name (unique within the schema).
    pub name: String,
    /// Attribute data type.
    pub dtype: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered, duplicate-free collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, validating that field names are unique.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(RelGoError::schema(format!(
                    "duplicate field name '{}'",
                    f.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// Convenience constructor from `(name, type)` pairs; panics on
    /// duplicates (builder use only).
    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("static schema must not contain duplicates")
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index of the field named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| RelGoError::not_found(format!("column '{name}'")))
    }

    /// Type of the field named `name`.
    pub fn type_of(&self, name: &str) -> Result<DataType> {
        Ok(self.fields[self.index_of(name)?].dtype)
    }

    /// Concatenate two schemas, qualifying clashing names with a suffix.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let mut name = f.name.clone();
            let mut k = 1;
            while fields.iter().any(|g| g.name == name) {
                name = format!("{}_{}", f.name, k);
                k += 1;
            }
            fields.push(Field::new(name, f.dtype));
        }
        Schema { fields }
    }

    /// Project to the fields at `indices` (in the given order).
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person() -> Schema {
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("place_id", DataType::Int),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = person();
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert_eq!(s.type_of("place_id").unwrap(), DataType::Int);
        assert!(s.index_of("nope").is_err());
    }

    #[test]
    fn duplicates_rejected() {
        let r = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ]);
        assert!(matches!(r, Err(RelGoError::Schema(_))));
    }

    #[test]
    fn join_disambiguates() {
        let s = person().join(&person());
        assert_eq!(s.len(), 6);
        assert!(s.index_of("id").is_ok());
        assert!(s.index_of("id_1").is_ok());
        assert_eq!(s.field(3).name, "id_1");
    }

    #[test]
    fn project_reorders() {
        let s = person().project(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(0).name, "place_id");
        assert_eq!(s.field(1).name, "id");
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(person().to_string(), "(id: INT, name: STR, place_id: INT)");
    }
}
