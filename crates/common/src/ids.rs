//! Strongly typed identifiers shared across the workspace.
//!
//! Following the paper's data model (§2.1): every graph element carries a
//! globally unique ID obtained by prefixing its relation's row id with the
//! relation (label) identity. We encode this as [`ElementId`] =
//! `(LabelId, RowId)` packed into a `u64`, which keeps graph-relation columns
//! as flat `Vec<u64>`s.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex or edge label; equals the index of the mapped
/// relation inside the [`RGMapping`](https://docs.rs) vertex/edge tables.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LabelId(pub u16);

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Row identifier within one relation. Tables are bounded to `u32::MAX` rows,
/// which is ample for laptop-scale reproductions and halves index memory
/// versus `u64` (a recommendation of the performance guide: smaller integers
/// for indices).
pub type RowId = u32;

/// Globally unique identifier of a graph element: the mapped relation's label
/// in the high 16 bits (plus a vertex/edge discriminator) and the row id in
/// the low 32 bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElementId(pub u64);

const EDGE_BIT: u64 = 1 << 63;

impl ElementId {
    /// Build the id of a vertex mapped from row `row` of the relation with
    /// label `label`.
    #[inline]
    pub fn vertex(label: LabelId, row: RowId) -> Self {
        ElementId(((label.0 as u64) << 32) | row as u64)
    }

    /// Build the id of an edge mapped from row `row` of the relation with
    /// label `label`.
    #[inline]
    pub fn edge(label: LabelId, row: RowId) -> Self {
        ElementId(EDGE_BIT | ((label.0 as u64) << 32) | row as u64)
    }

    /// Whether this id denotes an edge.
    #[inline]
    pub fn is_edge(self) -> bool {
        self.0 & EDGE_BIT != 0
    }

    /// The label component.
    #[inline]
    pub fn label(self) -> LabelId {
        LabelId(((self.0 & !EDGE_BIT) >> 32) as u16)
    }

    /// The row-id component (row in the mapped relation).
    #[inline]
    pub fn row(self) -> RowId {
        (self.0 & 0xFFFF_FFFF) as RowId
    }
}

impl fmt::Debug for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_edge() { "e" } else { "v" };
        write!(f, "{}[{}:{}]", kind, self.label().0, self.row())
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_roundtrip() {
        let id = ElementId::vertex(LabelId(7), 123_456);
        assert!(!id.is_edge());
        assert_eq!(id.label(), LabelId(7));
        assert_eq!(id.row(), 123_456);
    }

    #[test]
    fn edge_roundtrip() {
        let id = ElementId::edge(LabelId(65_535), u32::MAX);
        assert!(id.is_edge());
        assert_eq!(id.label(), LabelId(65_535));
        assert_eq!(id.row(), u32::MAX);
    }

    #[test]
    fn vertex_and_edge_with_same_parts_differ() {
        let v = ElementId::vertex(LabelId(1), 1);
        let e = ElementId::edge(LabelId(1), 1);
        assert_ne!(v, e);
    }

    #[test]
    fn display_formats_kind_label_row() {
        assert_eq!(ElementId::vertex(LabelId(2), 9).to_string(), "v[2:9]");
        assert_eq!(ElementId::edge(LabelId(3), 4).to_string(), "e[3:4]");
    }

    #[test]
    fn ordering_groups_vertices_before_edges() {
        let v = ElementId::vertex(LabelId(9), 999);
        let e = ElementId::edge(LabelId(0), 0);
        assert!(v < e, "edge bit is the MSB");
    }
}
