//! Morsel-driven intra-query parallelism.
//!
//! The scheduler partitions an index range `0..n` into fixed-size *morsels*
//! and runs a worker closure over them from a small pool of scoped
//! [`std::thread`]s (no external thread-pool dependency). Workers pull
//! morsel indices from a shared atomic counter — the classic work-stealing-
//! free morsel dispatch of Leis et al. — and return one result value per
//! morsel. Results are handed back **in morsel order**, so callers that
//! concatenate per-morsel output columns produce results bit-identical to a
//! serial loop, regardless of which thread processed which morsel.
//!
//! The serial path (`threads <= 1`, or fewer items than one morsel) runs
//! inline with zero synchronization, so operators can call
//! [`run_morsels`] unconditionally.

use crate::{RelGoError, Result};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// Process-global scheduler counters. `relgo-common` sits below the metrics
// crate in the dependency order, so the scheduler keeps plain atomics and
// the observability layer folds [`morsel_counters`] into its snapshot at
// scrape time.
static SERIAL_RUNS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_RUNS: AtomicU64 = AtomicU64::new(0);
static MORSELS_DISPATCHED: AtomicU64 = AtomicU64::new(0);

/// Point-in-time copy of the process-global morsel-scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MorselCounters {
    /// [`run_morsels`] invocations that ran inline (serial path).
    pub serial_runs: u64,
    /// [`run_morsels`] invocations that spawned a worker pool.
    pub parallel_runs: u64,
    /// Morsels dispatched across all invocations (serial and parallel).
    pub morsels: u64,
}

impl MorselCounters {
    /// Counter-wise difference since `earlier`.
    pub fn since(&self, earlier: &MorselCounters) -> MorselCounters {
        MorselCounters {
            serial_runs: self.serial_runs - earlier.serial_runs,
            parallel_runs: self.parallel_runs - earlier.parallel_runs,
            morsels: self.morsels - earlier.morsels,
        }
    }
}

/// Snapshot the process-global scheduler counters.
pub fn morsel_counters() -> MorselCounters {
    MorselCounters {
        serial_runs: SERIAL_RUNS.load(Ordering::Relaxed),
        parallel_runs: PARALLEL_RUNS.load(Ordering::Relaxed),
        morsels: MORSELS_DISPATCHED.load(Ordering::Relaxed),
    }
}

/// Default rows per morsel for columnar operators (`EXPAND` and friends).
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Default seeds per morsel for recursive enumeration work (homomorphism
/// counting): seeds are much heavier than rows, so morsels are smaller to
/// keep the pool load-balanced under skew.
pub const DEFAULT_MORSEL_SEEDS: usize = 64;

/// Parse the `RELGO_THREADS` environment knob (≥ 1 to take effect).
pub fn threads_from_env() -> Option<usize> {
    std::env::var("RELGO_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&t| t >= 1)
}

/// Number of morsels covering `n` items at `rows` items per morsel.
#[inline]
pub fn morsel_count(n: usize, rows: usize) -> usize {
    n.div_ceil(rows.max(1))
}

/// The item range of morsel `m` over `n` items at `rows` items per morsel.
#[inline]
pub fn morsel_range(m: usize, n: usize, rows: usize) -> Range<usize> {
    let rows = rows.max(1);
    let lo = m * rows;
    lo..((m + 1) * rows).min(n)
}

/// Run `f` over every morsel of `0..n` using up to `threads` workers and
/// return the per-morsel results **in morsel order**.
///
/// `f` receives `(morsel index, item range)` and must be safe to call from
/// multiple threads (it only gets `&self` captures). On error the first
/// failing morsel *in morsel order* wins (matching what a serial loop would
/// report) and the remaining workers stop at their next dispatch.
pub fn run_morsels<R, F>(n: usize, threads: usize, morsel_rows: usize, f: F) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> Result<R> + Sync,
{
    let n_morsels = morsel_count(n, morsel_rows);
    MORSELS_DISPATCHED.fetch_add(n_morsels as u64, Ordering::Relaxed);
    if threads <= 1 || n_morsels <= 1 {
        SERIAL_RUNS.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::with_capacity(n_morsels);
        for m in 0..n_morsels {
            out.push(f(m, morsel_range(m, n, morsel_rows))?);
        }
        return Ok(out);
    }

    PARALLEL_RUNS.fetch_add(1, Ordering::Relaxed);
    let workers = threads.min(n_morsels);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let first_err: Mutex<Option<(usize, RelGoError)>> = Mutex::new(None);

    let worker = |_w: usize| -> Vec<(usize, R)> {
        let mut produced = Vec::new();
        loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let m = next.fetch_add(1, Ordering::Relaxed);
            if m >= n_morsels {
                break;
            }
            match f(m, morsel_range(m, n, morsel_rows)) {
                Ok(r) => produced.push((m, r)),
                Err(e) => {
                    abort.store(true, Ordering::Relaxed);
                    let mut slot = first_err.lock().unwrap_or_else(|p| p.into_inner());
                    if slot.as_ref().is_none_or(|(prev, _)| m < *prev) {
                        *slot = Some((m, e));
                    }
                    break;
                }
            }
        }
        produced
    };

    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n_morsels).collect();
    let joined: Vec<std::thread::Result<Vec<(usize, R)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    for r in joined {
        match r {
            Ok(produced) => {
                for (m, r) in produced {
                    slots[m] = Some(r);
                }
            }
            Err(payload) => {
                panic_payload.get_or_insert(payload);
            }
        }
    }
    // A worker panic is a bug, not a query failure: re-raise it with its
    // original payload so the parallel path behaves like the serial one
    // (where the panic propagates directly).
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    if let Some((_, e)) = first_err.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }
    let mut out = Vec::with_capacity(n_morsels);
    for slot in slots {
        out.push(slot.ok_or_else(|| RelGoError::execution("morsel result missing"))?);
    }
    Ok(out)
}

/// A concurrently chargeable row budget shared by every worker of one
/// operator invocation: models the paper's OOM guard for parallel
/// operators. `charge` reserves `rows` *before* they are materialized and
/// fails once the running total exceeds `limit`.
#[derive(Debug)]
pub struct RowBudget {
    limit: usize,
    used: AtomicUsize,
}

impl RowBudget {
    /// A fresh budget of `limit` rows.
    pub fn new(limit: usize) -> RowBudget {
        RowBudget {
            limit,
            used: AtomicUsize::new(0),
        }
    }

    /// Reserve `rows` output rows; errors with `ResourceExhausted` when the
    /// total crosses the limit (the rows must not be materialized then).
    #[inline]
    pub fn charge(&self, rows: usize) -> Result<()> {
        if rows == 0 {
            return Ok(());
        }
        // A single over-limit charge (e.g. a saturated projection) must not
        // reach the counter: a wrapped `fetch_add` would undercharge every
        // later caller. Past this check each increment is ≤ `limit`, so the
        // counter cannot overflow before some charge trips.
        if rows > self.limit {
            let total = self.used.load(Ordering::Relaxed).saturating_add(rows);
            return Err(RelGoError::ResourceExhausted(format!(
                "intermediate graph relation of {total} rows exceeds the {} row budget",
                self.limit
            )));
        }
        let total = self.used.fetch_add(rows, Ordering::Relaxed) + rows;
        if total > self.limit {
            return Err(RelGoError::ResourceExhausted(format!(
                "intermediate graph relation of {total} rows exceeds the {} row budget",
                self.limit
            )));
        }
        Ok(())
    }
}

/// The wall-clock analogue of [`RowBudget`]: a fixed deadline shared by
/// every worker of one query. `check` is called once per *morsel* (and by
/// the serial operators' row guard), never per row, so the `Instant::now`
/// cost is amortized over `DEFAULT_MORSEL_ROWS` items — a query overruns
/// its deadline by at most one morsel's worth of work.
///
/// `Copy`, so it threads through execution contexts without sharing: all
/// copies compare against the same absolute deadline.
#[derive(Debug, Clone, Copy)]
pub struct TimeBudget {
    deadline: Instant,
    limit: Duration,
}

impl TimeBudget {
    /// A budget expiring `limit` from now. Start the clock where the
    /// request enters the system (e.g. at HTTP parse time), not where
    /// execution begins, so queueing and planning count against it.
    pub fn new(limit: Duration) -> TimeBudget {
        TimeBudget {
            deadline: Instant::now() + limit,
            limit,
        }
    }

    /// The total wall-clock allowance the budget was created with.
    pub fn limit(&self) -> Duration {
        self.limit
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.deadline
    }

    /// Errors with `DeadlineExceeded` once the deadline has passed; the
    /// caller must stop before materializing further output.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if self.expired() {
            return Err(RelGoError::DeadlineExceeded(format!(
                "query ran past its {}ms deadline",
                self.limit.as_millis()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 1024, 1025, 4096] {
            let morsels = morsel_count(n, 1024);
            let mut covered = 0usize;
            for m in 0..morsels {
                let r = morsel_range(m, n, 1024);
                assert_eq!(r.start, covered);
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn parallel_matches_serial_order() {
        let serial = run_morsels(10_000, 1, 64, |_, r| Ok(r.collect::<Vec<_>>())).unwrap();
        let parallel = run_morsels(10_000, 8, 64, |_, r| Ok(r.collect::<Vec<_>>())).unwrap();
        assert_eq!(serial, parallel);
        let flat: Vec<usize> = parallel.into_iter().flatten().collect();
        assert_eq!(flat, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn first_error_in_morsel_order_wins() {
        let err = run_morsels(1000, 8, 10, |m, _| {
            if m >= 3 {
                Err(RelGoError::execution(format!("boom {m}")))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        // Workers may fail on any morsel ≥ 3 first, but the reported error
        // must be the lowest-index failure among those attempted; morsel 3
        // is always attempted before the pool drains.
        assert!(
            matches!(err, RelGoError::Execution(ref m) if m == "boom 3"),
            "{err:?}"
        );
    }

    #[test]
    fn budget_trips_before_materialization() {
        let b = RowBudget::new(10);
        assert!(b.charge(10).is_ok());
        assert!(matches!(b.charge(1), Err(RelGoError::ResourceExhausted(_))));
    }

    #[test]
    fn time_budget_expires_and_reports_its_limit() {
        let fresh = TimeBudget::new(Duration::from_secs(3600));
        assert!(!fresh.expired());
        assert!(fresh.check().is_ok());
        assert_eq!(fresh.limit(), Duration::from_secs(3600));
        let spent = TimeBudget::new(Duration::ZERO);
        assert!(spent.expired());
        assert!(matches!(
            spent.check(),
            Err(RelGoError::DeadlineExceeded(ref m)) if m.contains("0ms")
        ));
        // Copies share the same absolute deadline.
        let copy = spent;
        assert!(copy.check().is_err());
    }

    #[test]
    fn scheduler_counters_advance() {
        let before = morsel_counters();
        run_morsels(100, 1, 10, |_, _| Ok(())).unwrap();
        run_morsels(100, 4, 10, |_, _| Ok(())).unwrap();
        let d = morsel_counters().since(&before);
        // Other tests run concurrently against the same globals, so the
        // deltas are lower bounds.
        assert!(d.serial_runs >= 1, "{d:?}");
        assert!(d.parallel_runs >= 1, "{d:?}");
        assert!(d.morsels >= 20, "{d:?}");
    }

    #[test]
    fn env_knob_parses() {
        // Only checks the parser contract (the variable is not set in CI).
        assert_eq!("4".trim().parse::<usize>().ok(), Some(4));
    }
}
