//! Immutable columnar tables and their builder.

use crate::column::Column;
use relgo_common::{DataType, RelGoError, Result, RowId, Schema, Value};
use std::fmt;
use std::sync::Arc;

/// An immutable, named, columnar relation.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Construct from pre-built columns (lengths must agree).
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
    ) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(RelGoError::schema(format!(
                "schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(RelGoError::schema(format!(
                    "column {i} has {} rows, expected {rows}",
                    c.len()
                )));
            }
            if c.dtype() != schema.field(i).dtype {
                return Err(RelGoError::schema(format!(
                    "column {i} has type {}, schema says {}",
                    c.dtype(),
                    schema.field(i).dtype
                )));
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            rows,
        })
    }

    /// Create an empty table with the given schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.dtype))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            rows: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Value at `(row, col)`.
    pub fn value(&self, row: RowId, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Materialize row `row` as a `Vec<Value>`.
    pub fn row(&self, row: RowId) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Gather `indices` into a new table (same schema).
    pub fn take(&self, indices: &[RowId]) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// Project to the columns at `cols` (renaming per the projected schema).
    pub fn project(&self, cols: &[usize]) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.project(cols),
            columns: cols.iter().map(|&i| self.columns[i].clone()).collect(),
            rows: self.rows,
        }
    }

    /// All rows, materialized and sorted — deterministic representation for
    /// result comparison in tests.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = (0..self.rows as RowId).map(|r| self.row(r)).collect();
        rows.sort();
        rows
    }

    /// Render at most `limit` rows as an aligned ASCII table.
    pub fn display(&self, limit: usize) -> String {
        let mut header: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let shown = self.rows.min(limit);
        let mut body: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown as RowId {
            body.push(self.row(r).iter().map(|v| v.to_string()).collect());
        }
        let mut widths: Vec<usize> = header.iter().map(String::len).collect();
        for row in &body {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (h, w) in header.iter_mut().zip(&widths) {
            *h = format!("{h:<w$}");
        }
        let mut out = String::new();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in body {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows > shown {
            out.push_str(&format!("... ({} more rows)\n", self.rows - shown));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{} rows]", self.name, self.schema, self.rows)
    }
}

/// Row-at-a-time builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.dtype))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            columns,
            rows: 0,
        }
    }

    /// Pre-reserve capacity in every column.
    pub fn with_capacity(name: impl Into<String>, schema: Schema, cap: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, cap))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            columns,
            rows: 0,
        }
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no rows were appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row; arity and types must match the schema.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(RelGoError::schema(format!(
                "row has {} values, schema {} expects {}",
                values.len(),
                self.schema,
                self.columns.len()
            )));
        }
        for (c, v) in self.columns.iter_mut().zip(values) {
            c.push(v)?;
        }
        self.rows += 1;
        if self.rows > u32::MAX as usize {
            return Err(RelGoError::schema("table exceeds u32::MAX rows"));
        }
        Ok(())
    }

    /// Finish, producing the immutable table.
    pub fn finish(self) -> Table {
        Table {
            name: self.name,
            schema: self.schema,
            columns: self.columns,
            rows: self.rows,
        }
    }
}

/// Convenience: build a table from a schema spec and row literals (tests and
/// examples).
pub fn table_of(name: &str, spec: &[(&str, DataType)], rows: Vec<Vec<Value>>) -> Table {
    let mut b = TableBuilder::new(name, Schema::of(spec));
    for r in rows {
        b.push_row(r).expect("literal rows must match the schema");
    }
    b.finish()
}

/// Shared-ownership alias used across the planner and executor.
pub type TableRef = Arc<Table>;

/// The shape of one committed change against an immutable table: which base
/// rows were deleted and how many new rows were appended after the
/// survivors. This is the contract between the delta store (`relgo-delta`)
/// and every consumer that maintains derived state incrementally (graph
/// indexes, statistics): merged tables keep surviving base rows **in base
/// order**, then append the inserted rows, so the old→new row-id map is
/// *monotonic* — sorted derived structures stay sorted under remapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableChange {
    /// Deleted base row ids, sorted and deduplicated.
    deleted: Vec<RowId>,
    /// Number of rows appended after the surviving base rows.
    inserted: usize,
    /// Base row count the change applies to.
    base_rows: usize,
}

impl TableChange {
    /// Describe a change against a `base_rows`-row table (deletions are
    /// sorted and deduplicated here).
    pub fn new(base_rows: usize, mut deleted: Vec<RowId>, inserted: usize) -> TableChange {
        deleted.sort_unstable();
        deleted.dedup();
        TableChange {
            deleted,
            inserted,
            base_rows,
        }
    }

    /// Deleted base row ids, sorted ascending.
    pub fn deleted(&self) -> &[RowId] {
        &self.deleted
    }

    /// Number of appended rows.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Base row count the change applies to.
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    /// Row count of the merged table.
    pub fn new_rows(&self) -> usize {
        self.base_rows - self.deleted.len() + self.inserted
    }

    /// Rows touched (deleted + inserted) — the staleness measure.
    pub fn changed_rows(&self) -> usize {
        self.deleted.len() + self.inserted
    }

    /// Whether the change deletes nothing (row ids of survivors are stable).
    pub fn is_append_only(&self) -> bool {
        self.deleted.is_empty()
    }

    /// Whether base row `row` was deleted.
    pub fn is_deleted(&self, row: RowId) -> bool {
        self.deleted.binary_search(&row).is_ok()
    }

    /// The merged row id of base row `old`: `old` minus the deletions before
    /// it, or `None` if `old` itself was deleted. Monotonic over survivors.
    pub fn new_id(&self, old: RowId) -> Option<RowId> {
        match self.deleted.binary_search(&old) {
            Ok(_) => None,
            Err(rank) => Some(old - rank as RowId),
        }
    }

    /// The merged row id of appended row `i` (0-based within the inserts).
    pub fn insert_id(&self, i: usize) -> RowId {
        (self.base_rows - self.deleted.len() + i) as RowId
    }

    /// The surviving base row ids in order (merged ids `0..survivors`).
    pub fn survivors(&self) -> Vec<RowId> {
        let mut out = Vec::with_capacity(self.base_rows - self.deleted.len());
        let mut del = self.deleted.iter().peekable();
        for r in 0..self.base_rows as RowId {
            if del.peek() == Some(&&r) {
                del.next();
            } else {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        table_of(
            "Person",
            &[
                ("id", DataType::Int),
                ("name", DataType::Str),
                ("place_id", DataType::Int),
            ],
            vec![
                vec![1.into(), "Tom".into(), 10.into()],
                vec![2.into(), "Bob".into(), 20.into()],
                vec![3.into(), "David".into(), 20.into()],
            ],
        )
    }

    #[test]
    fn build_and_read() {
        let t = people();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(1, 1), Value::str("Bob"));
        assert_eq!(t.row(0), vec![1.into(), "Tom".into(), 10.into()]);
        assert_eq!(t.column_by_name("place_id").unwrap().get_int(2), Some(20));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = TableBuilder::new("t", Schema::of(&[("a", DataType::Int)]));
        assert!(b.push_row(vec![1.into(), 2.into()]).is_err());
    }

    #[test]
    fn from_columns_validates_lengths_and_types() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let mut c1 = Column::new(DataType::Int);
        c1.push(1.into()).unwrap();
        let c2 = Column::new(DataType::Str); // wrong length
        assert!(Table::from_columns("t", schema.clone(), vec![c1.clone(), c2]).is_err());
        let c3 = Column::new(DataType::Int); // wrong type for 'b'
        assert!(Table::from_columns("t", schema, vec![c1, c3]).is_err());
    }

    #[test]
    fn take_and_project() {
        let t = people();
        let sub = t.take(&[2, 0]);
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.value(0, 1), Value::str("David"));
        let proj = t.project(&[1]);
        assert_eq!(proj.num_columns(), 1);
        assert_eq!(proj.schema().field(0).name, "name");
    }

    #[test]
    fn sorted_rows_deterministic() {
        let t = people();
        let a = t.take(&[2, 1, 0]).sorted_rows();
        let b = t.sorted_rows();
        assert_eq!(a, b);
    }

    #[test]
    fn display_contains_header_and_rows() {
        let s = people().display(2);
        assert!(s.contains("name"));
        assert!(s.contains("Tom"));
        assert!(s.contains("1 more rows"));
    }

    #[test]
    fn table_change_remaps_monotonically() {
        let c = TableChange::new(6, vec![4, 1, 4], 3);
        assert_eq!(c.deleted(), &[1, 4]);
        assert_eq!(c.new_rows(), 7);
        assert_eq!(c.changed_rows(), 5);
        assert!(!c.is_append_only());
        assert!(c.is_deleted(1) && !c.is_deleted(2));
        assert_eq!(c.new_id(0), Some(0));
        assert_eq!(c.new_id(1), None);
        assert_eq!(c.new_id(2), Some(1));
        assert_eq!(c.new_id(5), Some(3));
        assert_eq!(c.insert_id(0), 4);
        assert_eq!(c.insert_id(2), 6);
        assert_eq!(c.survivors(), vec![0, 2, 3, 5]);
        // Monotonic: survivor order is preserved under remapping.
        let ids: Vec<_> = c
            .survivors()
            .iter()
            .map(|&r| c.new_id(r).unwrap())
            .collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn append_only_change_is_identity_on_base() {
        let c = TableChange::new(3, vec![], 2);
        assert!(c.is_append_only());
        assert_eq!(c.new_id(2), Some(2));
        assert_eq!(c.insert_id(0), 3);
        assert_eq!(c.new_rows(), 5);
    }
}
