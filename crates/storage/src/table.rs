//! Immutable columnar tables and their builder.

use crate::column::Column;
use relgo_common::{DataType, RelGoError, Result, RowId, Schema, Value};
use std::fmt;
use std::sync::Arc;

/// An immutable, named, columnar relation.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Construct from pre-built columns (lengths must agree).
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
    ) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(RelGoError::schema(format!(
                "schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(RelGoError::schema(format!(
                    "column {i} has {} rows, expected {rows}",
                    c.len()
                )));
            }
            if c.dtype() != schema.field(i).dtype {
                return Err(RelGoError::schema(format!(
                    "column {i} has type {}, schema says {}",
                    c.dtype(),
                    schema.field(i).dtype
                )));
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            rows,
        })
    }

    /// Create an empty table with the given schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.dtype))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            rows: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Value at `(row, col)`.
    pub fn value(&self, row: RowId, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Materialize row `row` as a `Vec<Value>`.
    pub fn row(&self, row: RowId) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Gather `indices` into a new table (same schema).
    pub fn take(&self, indices: &[RowId]) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// Project to the columns at `cols` (renaming per the projected schema).
    pub fn project(&self, cols: &[usize]) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.project(cols),
            columns: cols.iter().map(|&i| self.columns[i].clone()).collect(),
            rows: self.rows,
        }
    }

    /// All rows, materialized and sorted — deterministic representation for
    /// result comparison in tests.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = (0..self.rows as RowId).map(|r| self.row(r)).collect();
        rows.sort();
        rows
    }

    /// Render at most `limit` rows as an aligned ASCII table.
    pub fn display(&self, limit: usize) -> String {
        let mut header: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let shown = self.rows.min(limit);
        let mut body: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown as RowId {
            body.push(self.row(r).iter().map(|v| v.to_string()).collect());
        }
        let mut widths: Vec<usize> = header.iter().map(String::len).collect();
        for row in &body {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (h, w) in header.iter_mut().zip(&widths) {
            *h = format!("{h:<w$}");
        }
        let mut out = String::new();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in body {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows > shown {
            out.push_str(&format!("... ({} more rows)\n", self.rows - shown));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{} rows]", self.name, self.schema, self.rows)
    }
}

/// Row-at-a-time builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.dtype))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            columns,
            rows: 0,
        }
    }

    /// Pre-reserve capacity in every column.
    pub fn with_capacity(name: impl Into<String>, schema: Schema, cap: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, cap))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            columns,
            rows: 0,
        }
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no rows were appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row; arity and types must match the schema.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(RelGoError::schema(format!(
                "row has {} values, schema {} expects {}",
                values.len(),
                self.schema,
                self.columns.len()
            )));
        }
        for (c, v) in self.columns.iter_mut().zip(values) {
            c.push(v)?;
        }
        self.rows += 1;
        if self.rows > u32::MAX as usize {
            return Err(RelGoError::schema("table exceeds u32::MAX rows"));
        }
        Ok(())
    }

    /// Finish, producing the immutable table.
    pub fn finish(self) -> Table {
        Table {
            name: self.name,
            schema: self.schema,
            columns: self.columns,
            rows: self.rows,
        }
    }
}

/// Convenience: build a table from a schema spec and row literals (tests and
/// examples).
pub fn table_of(name: &str, spec: &[(&str, DataType)], rows: Vec<Vec<Value>>) -> Table {
    let mut b = TableBuilder::new(name, Schema::of(spec));
    for r in rows {
        b.push_row(r).expect("literal rows must match the schema");
    }
    b.finish()
}

/// Shared-ownership alias used across the planner and executor.
pub type TableRef = Arc<Table>;

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        table_of(
            "Person",
            &[
                ("id", DataType::Int),
                ("name", DataType::Str),
                ("place_id", DataType::Int),
            ],
            vec![
                vec![1.into(), "Tom".into(), 10.into()],
                vec![2.into(), "Bob".into(), 20.into()],
                vec![3.into(), "David".into(), 20.into()],
            ],
        )
    }

    #[test]
    fn build_and_read() {
        let t = people();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(1, 1), Value::str("Bob"));
        assert_eq!(t.row(0), vec![1.into(), "Tom".into(), 10.into()]);
        assert_eq!(t.column_by_name("place_id").unwrap().get_int(2), Some(20));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = TableBuilder::new("t", Schema::of(&[("a", DataType::Int)]));
        assert!(b.push_row(vec![1.into(), 2.into()]).is_err());
    }

    #[test]
    fn from_columns_validates_lengths_and_types() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let mut c1 = Column::new(DataType::Int);
        c1.push(1.into()).unwrap();
        let c2 = Column::new(DataType::Str); // wrong length
        assert!(Table::from_columns("t", schema.clone(), vec![c1.clone(), c2]).is_err());
        let c3 = Column::new(DataType::Int); // wrong type for 'b'
        assert!(Table::from_columns("t", schema, vec![c1, c3]).is_err());
    }

    #[test]
    fn take_and_project() {
        let t = people();
        let sub = t.take(&[2, 0]);
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.value(0, 1), Value::str("David"));
        let proj = t.project(&[1]);
        assert_eq!(proj.num_columns(), 1);
        assert_eq!(proj.schema().field(0).name, "name");
    }

    #[test]
    fn sorted_rows_deterministic() {
        let t = people();
        let a = t.take(&[2, 1, 0]).sorted_rows();
        let b = t.sorted_rows();
        assert_eq!(a, b);
    }

    #[test]
    fn display_contains_header_and_rows() {
        let s = people().display(2);
        assert!(s.contains("name"));
        assert!(s.contains("Tom"));
        assert!(s.contains("1 more rows"));
    }
}
