//! Scalar expression AST and evaluation.
//!
//! Predicates in SPJM queries — both the relational σ and the per-pattern-
//! element constraints produced by `FilterIntoMatchRule` — are built from
//! [`ScalarExpr`]. Evaluation is row-at-a-time over a [`Table`] with a batch
//! `filter` driver; the selectivity estimator feeds the relational cost
//! models.

use crate::table::Table;
use relgo_common::{RelGoError, Result, RowId, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinaryOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            BinaryOp::Eq => ord == Ordering::Equal,
            BinaryOp::Ne => ord != Ordering::Equal,
            BinaryOp::Lt => ord == Ordering::Less,
            BinaryOp::Le => ord != Ordering::Greater,
            BinaryOp::Gt => ord == Ordering::Greater,
            BinaryOp::Ge => ord != Ordering::Less,
        }
    }

    /// Rough selectivity prior for this comparison (equality is selective,
    /// ranges are not) — the classic System-R constants.
    pub fn default_selectivity(self) -> f64 {
        match self {
            BinaryOp::Eq => 0.005,
            BinaryOp::Ne => 0.995,
            _ => 0.33,
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A scalar expression over the columns of one row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalarExpr {
    /// Reference to column `i` of the input schema.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Comparison of two sub-expressions.
    Cmp(BinaryOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Logical conjunction.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Logical disjunction.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Logical negation.
    Not(Box<ScalarExpr>),
    /// String prefix test (`name STARTS WITH 'B'`).
    StartsWith(Box<ScalarExpr>, String),
    /// Substring containment test (`keyword CONTAINS 'title'`).
    Contains(Box<ScalarExpr>, String),
    /// NULL test.
    IsNull(Box<ScalarExpr>),
    /// Membership in a literal list (`country IN ('x','y')`).
    InList(Box<ScalarExpr>, Vec<Value>),
}

impl ScalarExpr {
    /// `column = literal` shorthand.
    pub fn col_eq(col: usize, v: impl Into<Value>) -> Self {
        ScalarExpr::Cmp(
            BinaryOp::Eq,
            Box::new(ScalarExpr::Col(col)),
            Box::new(ScalarExpr::Lit(v.into())),
        )
    }

    /// `column <op> literal` shorthand.
    pub fn col_cmp(col: usize, op: BinaryOp, v: impl Into<Value>) -> Self {
        ScalarExpr::Cmp(
            op,
            Box::new(ScalarExpr::Col(col)),
            Box::new(ScalarExpr::Lit(v.into())),
        )
    }

    /// Conjunction helper.
    pub fn and(self, other: ScalarExpr) -> Self {
        ScalarExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: ScalarExpr) -> Self {
        ScalarExpr::Or(Box::new(self), Box::new(other))
    }

    /// Conjoin an optional predicate with another.
    pub fn conjoin(a: Option<ScalarExpr>, b: ScalarExpr) -> ScalarExpr {
        match a {
            Some(a) => a.and(b),
            None => b,
        }
    }

    /// Evaluate to a [`Value`] for row `row` of `table`.
    pub fn eval(&self, table: &Table, row: RowId) -> Result<Value> {
        match self {
            ScalarExpr::Col(i) => {
                if *i >= table.num_columns() {
                    return Err(RelGoError::query(format!(
                        "column index {i} out of bounds for {}",
                        table.schema()
                    )));
                }
                Ok(table.value(row, *i))
            }
            ScalarExpr::Lit(v) => Ok(v.clone()),
            ScalarExpr::Cmp(op, l, r) => {
                let lv = l.eval(table, row)?;
                let rv = r.eval(table, row)?;
                Ok(match lv.try_cmp(&rv) {
                    Some(ord) => Value::Bool(op.test(ord)),
                    None => Value::Null,
                })
            }
            ScalarExpr::And(l, r) => {
                // SQL three-valued AND with short circuit on FALSE.
                match l.eval(table, row)? {
                    Value::Bool(false) => Ok(Value::Bool(false)),
                    lv => match (lv, r.eval(table, row)?) {
                        (Value::Bool(true), Value::Bool(b)) => Ok(Value::Bool(b)),
                        (_, Value::Bool(false)) => Ok(Value::Bool(false)),
                        _ => Ok(Value::Null),
                    },
                }
            }
            ScalarExpr::Or(l, r) => match l.eval(table, row)? {
                Value::Bool(true) => Ok(Value::Bool(true)),
                lv => match (lv, r.eval(table, row)?) {
                    (Value::Bool(false), Value::Bool(b)) => Ok(Value::Bool(b)),
                    (_, Value::Bool(true)) => Ok(Value::Bool(true)),
                    _ => Ok(Value::Null),
                },
            },
            ScalarExpr::Not(e) => Ok(match e.eval(table, row)? {
                Value::Bool(b) => Value::Bool(!b),
                _ => Value::Null,
            }),
            ScalarExpr::StartsWith(e, prefix) => Ok(match e.eval(table, row)? {
                Value::Str(s) => Value::Bool(s.starts_with(prefix.as_str())),
                Value::Null => Value::Null,
                _ => Value::Bool(false),
            }),
            ScalarExpr::Contains(e, needle) => Ok(match e.eval(table, row)? {
                Value::Str(s) => Value::Bool(s.contains(needle.as_str())),
                Value::Null => Value::Null,
                _ => Value::Bool(false),
            }),
            ScalarExpr::IsNull(e) => Ok(Value::Bool(e.eval(table, row)?.is_null())),
            ScalarExpr::InList(e, list) => {
                let v = e.eval(table, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(list.contains(&v)))
            }
        }
    }

    /// Evaluate as a filter predicate: NULL counts as FALSE (SQL WHERE).
    pub fn matches(&self, table: &Table, row: RowId) -> Result<bool> {
        Ok(matches!(self.eval(table, row)?, Value::Bool(true)))
    }

    /// Batch filter: all row ids of `table` satisfying the predicate.
    pub fn filter(&self, table: &Table) -> Result<Vec<RowId>> {
        let mut out = Vec::new();
        for r in 0..table.num_rows() as RowId {
            if self.matches(table, r)? {
                out.push(r);
            }
        }
        Ok(out)
    }

    /// Remap column references through `mapping[i] = new index of old col i`.
    pub fn remap_columns(&self, mapping: &dyn Fn(usize) -> usize) -> ScalarExpr {
        match self {
            ScalarExpr::Col(i) => ScalarExpr::Col(mapping(*i)),
            ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
            ScalarExpr::Cmp(op, l, r) => ScalarExpr::Cmp(
                *op,
                Box::new(l.remap_columns(mapping)),
                Box::new(r.remap_columns(mapping)),
            ),
            ScalarExpr::And(l, r) => ScalarExpr::And(
                Box::new(l.remap_columns(mapping)),
                Box::new(r.remap_columns(mapping)),
            ),
            ScalarExpr::Or(l, r) => ScalarExpr::Or(
                Box::new(l.remap_columns(mapping)),
                Box::new(r.remap_columns(mapping)),
            ),
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.remap_columns(mapping))),
            ScalarExpr::StartsWith(e, p) => {
                ScalarExpr::StartsWith(Box::new(e.remap_columns(mapping)), p.clone())
            }
            ScalarExpr::Contains(e, p) => {
                ScalarExpr::Contains(Box::new(e.remap_columns(mapping)), p.clone())
            }
            ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(e.remap_columns(mapping))),
            ScalarExpr::InList(e, l) => {
                ScalarExpr::InList(Box::new(e.remap_columns(mapping)), l.clone())
            }
        }
    }

    /// The set of column indices referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Col(i) => out.push(*i),
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Cmp(_, l, r) | ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            ScalarExpr::Not(e)
            | ScalarExpr::StartsWith(e, _)
            | ScalarExpr::Contains(e, _)
            | ScalarExpr::IsNull(e)
            | ScalarExpr::InList(e, _) => e.collect_columns(out),
        }
    }

    /// Heuristic selectivity estimate in `(0, 1]` (no data access) — the
    /// low-order-statistics path used by the graph-agnostic optimizers.
    pub fn estimated_selectivity(&self) -> f64 {
        match self {
            ScalarExpr::Col(_) | ScalarExpr::Lit(_) => 1.0,
            ScalarExpr::Cmp(op, _, _) => op.default_selectivity(),
            ScalarExpr::And(l, r) => {
                (l.estimated_selectivity() * r.estimated_selectivity()).max(1e-9)
            }
            ScalarExpr::Or(l, r) => {
                let (a, b) = (l.estimated_selectivity(), r.estimated_selectivity());
                (a + b - a * b).min(1.0)
            }
            ScalarExpr::Not(e) => (1.0 - e.estimated_selectivity()).max(1e-9),
            ScalarExpr::StartsWith(..) => 0.05,
            ScalarExpr::Contains(..) => 0.1,
            ScalarExpr::IsNull(_) => 0.02,
            ScalarExpr::InList(_, l) => (0.005 * l.len() as f64).min(1.0),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Col(i) => write!(f, "${i}"),
            ScalarExpr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            ScalarExpr::Cmp(op, l, r) => write!(f, "{l} {op} {r}"),
            ScalarExpr::And(l, r) => write!(f, "({l} AND {r})"),
            ScalarExpr::Or(l, r) => write!(f, "({l} OR {r})"),
            ScalarExpr::Not(e) => write!(f, "NOT {e}"),
            ScalarExpr::StartsWith(e, p) => write!(f, "{e} STARTS WITH '{p}'"),
            ScalarExpr::Contains(e, p) => write!(f, "{e} CONTAINS '{p}'"),
            ScalarExpr::IsNull(e) => write!(f, "{e} IS NULL"),
            ScalarExpr::InList(e, l) => {
                write!(f, "{e} IN (")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of;
    use relgo_common::DataType;

    fn t() -> Table {
        table_of(
            "t",
            &[
                ("id", DataType::Int),
                ("name", DataType::Str),
                ("score", DataType::Float),
            ],
            vec![
                vec![1.into(), "Tom".into(), 1.5.into()],
                vec![2.into(), "Bob".into(), 2.5.into()],
                vec![3.into(), Value::Null, 0.5.into()],
                vec![4.into(), "Bella".into(), 3.5.into()],
            ],
        )
    }

    #[test]
    fn comparisons() {
        let t = t();
        let e = ScalarExpr::col_eq(1, "Tom");
        assert_eq!(e.filter(&t).unwrap(), vec![0]);
        let e = ScalarExpr::col_cmp(0, BinaryOp::Gt, 2);
        assert_eq!(e.filter(&t).unwrap(), vec![2, 3]);
        let e = ScalarExpr::col_cmp(2, BinaryOp::Le, Value::Float(1.5));
        assert_eq!(e.filter(&t).unwrap(), vec![0, 2]);
    }

    #[test]
    fn null_propagates_and_where_drops_null() {
        let t = t();
        // name = 'Bob' is NULL for the row with NULL name → dropped.
        let e = ScalarExpr::col_eq(1, "Bob");
        assert_eq!(e.filter(&t).unwrap(), vec![1]);
        // NOT (name = 'Bob') also drops the NULL row.
        let e = ScalarExpr::Not(Box::new(ScalarExpr::col_eq(1, "Bob")));
        assert_eq!(e.filter(&t).unwrap(), vec![0, 3]);
        // IS NULL finds it.
        let e = ScalarExpr::IsNull(Box::new(ScalarExpr::Col(1)));
        assert_eq!(e.filter(&t).unwrap(), vec![2]);
    }

    #[test]
    fn three_valued_and_or() {
        let t = t();
        // (name = 'x') OR TRUE == TRUE even when the left side is NULL.
        let e = ScalarExpr::col_eq(1, "x").or(ScalarExpr::Lit(Value::Bool(true)));
        assert_eq!(e.filter(&t).unwrap().len(), 4);
        // (name = 'x') AND FALSE == FALSE even when the left side is NULL.
        let e = ScalarExpr::col_eq(1, "x").and(ScalarExpr::Lit(Value::Bool(false)));
        assert!(e.filter(&t).unwrap().is_empty());
    }

    #[test]
    fn string_predicates() {
        let t = t();
        let e = ScalarExpr::StartsWith(Box::new(ScalarExpr::Col(1)), "B".into());
        assert_eq!(e.filter(&t).unwrap(), vec![1, 3]);
        let e = ScalarExpr::Contains(Box::new(ScalarExpr::Col(1)), "ell".into());
        assert_eq!(e.filter(&t).unwrap(), vec![3]);
    }

    #[test]
    fn in_list() {
        let t = t();
        let e = ScalarExpr::InList(
            Box::new(ScalarExpr::Col(0)),
            vec![2.into(), 4.into(), 9.into()],
        );
        assert_eq!(e.filter(&t).unwrap(), vec![1, 3]);
    }

    #[test]
    fn out_of_bounds_column_is_error() {
        let t = t();
        let e = ScalarExpr::Col(9);
        assert!(e.eval(&t, 0).is_err());
    }

    #[test]
    fn remap_and_referenced_columns() {
        let e = ScalarExpr::col_eq(1, "x").and(ScalarExpr::col_cmp(3, BinaryOp::Lt, 5));
        assert_eq!(e.referenced_columns(), vec![1, 3]);
        let shifted = e.remap_columns(&|c| c + 10);
        assert_eq!(shifted.referenced_columns(), vec![11, 13]);
    }

    #[test]
    fn selectivity_estimates_bounded() {
        let e = ScalarExpr::col_eq(0, 1)
            .and(ScalarExpr::col_cmp(0, BinaryOp::Gt, 2))
            .or(ScalarExpr::StartsWith(
                Box::new(ScalarExpr::Col(1)),
                "B".into(),
            ));
        let s = e.estimated_selectivity();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn display_readable() {
        let e = ScalarExpr::col_eq(1, "Tom").and(ScalarExpr::col_cmp(0, BinaryOp::Ge, 3));
        assert_eq!(e.to_string(), "($1 = 'Tom' AND $0 >= 3)");
    }
}
