//! Baseline relational operators.
//!
//! These are the physical building blocks of the *relational* part of every
//! plan: filter, project, hash join (build/probe), rid join (GRainDB's
//! predefined join primitive at the relational level) and ungrouped
//! aggregation. The graph-specific operators (EXPAND, EXPAND_INTERSECT, …)
//! live in `relgo-exec`; the test oracles reuse the functions here.

use crate::expr::ScalarExpr;
use crate::table::Table;
use relgo_common::{FxHashMap, RelGoError, Result, RowId, Schema, Value};

/// σ — keep the rows of `input` satisfying `predicate`.
pub fn filter(input: &Table, predicate: &ScalarExpr) -> Result<Table> {
    let rows = predicate.filter(input)?;
    Ok(input.take(&rows))
}

/// π — project `input` to the columns at `cols`.
pub fn project(input: &Table, cols: &[usize]) -> Result<Table> {
    for &c in cols {
        if c >= input.num_columns() {
            return Err(RelGoError::query(format!(
                "projection column {c} out of bounds ({} columns)",
                input.num_columns()
            )));
        }
    }
    Ok(input.project(cols))
}

/// Join keys: pairs of (left column, right column) compared with equality.
pub type JoinKeys = [(usize, usize)];

fn key_of(table: &Table, row: RowId, cols: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = table.value(row, c);
        if v.is_null() {
            return None; // SQL equi-join drops NULL keys.
        }
        key.push(v);
    }
    Some(key)
}

/// ⋈ — equi hash join. Builds on the smaller side is the *optimizer's* job;
/// this operator always builds on `left`.
pub fn hash_join(left: &Table, right: &Table, keys: &JoinKeys) -> Result<Table> {
    let lcols: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
    let mut build: FxHashMap<Vec<Value>, Vec<RowId>> = FxHashMap::default();
    for r in 0..left.num_rows() as RowId {
        if let Some(k) = key_of(left, r, &lcols) {
            build.entry(k).or_default().push(r);
        }
    }
    let mut lrows = Vec::new();
    let mut rrows = Vec::new();
    for r in 0..right.num_rows() as RowId {
        if let Some(k) = key_of(right, r, &rcols) {
            if let Some(matches) = build.get(&k) {
                for &l in matches {
                    lrows.push(l);
                    rrows.push(r);
                }
            }
        }
    }
    concat_rows(left, right, &lrows, &rrows)
}

/// GRainDB-style predefined (rid) join: `rid_col` of `left` holds *row ids*
/// into `right`; no hash table is built — each probe is a direct array
/// lookup. A negative rid (or NULL) drops the row, mirroring a dangling
/// foreign key.
pub fn rid_join(left: &Table, rid_col: usize, right: &Table) -> Result<Table> {
    let col = left.column(rid_col);
    let mut lrows = Vec::new();
    let mut rrows = Vec::new();
    for r in 0..left.num_rows() as RowId {
        if let Some(rid) = col.get_int(r) {
            if rid >= 0 && (rid as usize) < right.num_rows() {
                lrows.push(r);
                rrows.push(rid as RowId);
            }
        }
    }
    concat_rows(left, right, &lrows, &rrows)
}

fn concat_rows(left: &Table, right: &Table, lrows: &[RowId], rrows: &[RowId]) -> Result<Table> {
    let lpart = left.take(lrows);
    let rpart = right.take(rrows);
    let schema = left.schema().join(right.schema());
    let mut columns = Vec::with_capacity(left.num_columns() + right.num_columns());
    for i in 0..lpart.num_columns() {
        columns.push(lpart.column(i).clone());
    }
    for i in 0..rpart.num_columns() {
        columns.push(rpart.column(i).clone());
    }
    Table::from_columns(
        format!("{}_join_{}", left.name(), right.name()),
        schema,
        columns,
    )
}

/// Aggregate functions for ungrouped aggregation (what JOB's `SELECT MIN(..)`
/// queries need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
    /// `COUNT(*)` (column ignored)
    Count,
}

/// Ungrouped aggregation producing a single row.
pub fn aggregate(input: &Table, aggs: &[(AggFunc, usize)]) -> Result<Table> {
    use relgo_common::{DataType, Field};
    let mut fields = Vec::with_capacity(aggs.len());
    let mut row = Vec::with_capacity(aggs.len());
    for (i, &(func, col)) in aggs.iter().enumerate() {
        match func {
            AggFunc::Count => {
                fields.push(Field::new(format!("count_{i}"), DataType::Int));
                row.push(Value::Int(input.num_rows() as i64));
            }
            AggFunc::Min | AggFunc::Max => {
                if col >= input.num_columns() {
                    return Err(RelGoError::query(format!(
                        "aggregate column {col} out of bounds"
                    )));
                }
                let c = input.column(col);
                let mut best: Option<Value> = None;
                for r in 0..input.num_rows() as RowId {
                    let v = c.get(r);
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let keep_new = match v.try_cmp(&b) {
                                Some(o) => {
                                    if func == AggFunc::Min {
                                        o == std::cmp::Ordering::Less
                                    } else {
                                        o == std::cmp::Ordering::Greater
                                    }
                                }
                                None => false,
                            };
                            if keep_new {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                let prefix = if func == AggFunc::Min { "min" } else { "max" };
                fields.push(Field::new(
                    format!("{prefix}_{}", input.schema().field(col).name),
                    input.schema().field(col).dtype,
                ));
                row.push(best.unwrap_or(Value::Null));
            }
        }
    }
    let schema = Schema::new(fields)?;
    let mut b = crate::table::TableBuilder::new("agg", schema);
    b.push_row(row)?;
    Ok(b.finish())
}

/// Sort key: column index + direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column to sort by.
    pub column: usize,
    /// Whether to sort descending.
    pub descending: bool,
}

/// ORDER BY — stable multi-key sort (NULLs first ascending, last
/// descending, via the total value order).
pub fn sort(input: &Table, keys: &[SortKey]) -> Result<Table> {
    for k in keys {
        if k.column >= input.num_columns() {
            return Err(RelGoError::query(format!(
                "sort column {} out of bounds ({} columns)",
                k.column,
                input.num_columns()
            )));
        }
    }
    let mut order: Vec<RowId> = (0..input.num_rows() as RowId).collect();
    order.sort_by(|&a, &b| {
        for k in keys {
            let va = input.value(a, k.column);
            let vb = input.value(b, k.column);
            let ord = if k.descending {
                vb.cmp(&va)
            } else {
                va.cmp(&vb)
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.cmp(&b) // stability tie-break
    });
    Ok(input.take(&order))
}

/// LIMIT — keep the first `n` rows.
pub fn limit(input: &Table, n: usize) -> Table {
    let keep: Vec<RowId> = (0..input.num_rows().min(n) as RowId).collect();
    input.take(&keep)
}

/// Deduplicate full rows (DISTINCT).
pub fn distinct(input: &Table) -> Table {
    let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
    let mut keep = Vec::new();
    for r in 0..input.num_rows() as RowId {
        if seen.insert(input.row(r)) {
            keep.push(r);
        }
    }
    input.take(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of;
    use relgo_common::DataType;

    fn person() -> Table {
        table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![10.into(), "Tom".into()],
                vec![20.into(), "Bob".into()],
                vec![30.into(), "Eve".into()],
            ],
        )
    }

    fn likes() -> Table {
        table_of(
            "Likes",
            &[("pid", DataType::Int), ("mid", DataType::Int)],
            vec![
                vec![10.into(), 100.into()],
                vec![20.into(), 100.into()],
                vec![20.into(), 200.into()],
                vec![99.into(), 300.into()], // dangling
            ],
        )
    }

    #[test]
    fn filter_project() {
        let t = person();
        let f = filter(&t, &ScalarExpr::col_eq(1, "Bob")).unwrap();
        assert_eq!(f.num_rows(), 1);
        let p = project(&f, &[1]).unwrap();
        assert_eq!(p.value(0, 0), Value::str("Bob"));
        assert!(project(&t, &[9]).is_err());
    }

    #[test]
    fn hash_join_matches_pairs() {
        let j = hash_join(&person(), &likes(), &[(0, 0)]).unwrap();
        // Tom→1 like, Bob→2 likes, Eve→0, dangling dropped.
        assert_eq!(j.num_rows(), 3);
        assert_eq!(j.num_columns(), 4);
        let names: Vec<Value> = (0..3).map(|r| j.value(r, 1)).collect();
        assert!(names.contains(&Value::str("Tom")));
        assert!(names.contains(&Value::str("Bob")));
    }

    #[test]
    fn hash_join_multi_key() {
        let a = table_of(
            "a",
            &[("x", DataType::Int), ("y", DataType::Int)],
            vec![vec![1.into(), 1.into()], vec![1.into(), 2.into()]],
        );
        let b = table_of(
            "b",
            &[("x", DataType::Int), ("y", DataType::Int)],
            vec![vec![1.into(), 1.into()], vec![1.into(), 3.into()]],
        );
        let j = hash_join(&a, &b, &[(0, 0), (1, 1)]).unwrap();
        assert_eq!(j.num_rows(), 1);
    }

    #[test]
    fn null_keys_never_join() {
        let a = table_of(
            "a",
            &[("x", DataType::Int)],
            vec![vec![Value::Null], vec![1.into()]],
        );
        let b = table_of(
            "b",
            &[("x", DataType::Int)],
            vec![vec![Value::Null], vec![1.into()]],
        );
        let j = hash_join(&a, &b, &[(0, 0)]).unwrap();
        assert_eq!(j.num_rows(), 1);
    }

    #[test]
    fn rid_join_is_positional() {
        // rid column points straight at person row ids.
        let edges = table_of(
            "e",
            &[("rid", DataType::Int)],
            vec![
                vec![2.into()],
                vec![0.into()],
                vec![7.into()],
                vec![Value::Null],
            ],
        );
        let j = rid_join(&edges, 0, &person()).unwrap();
        assert_eq!(j.num_rows(), 2);
        assert_eq!(j.value(0, 2), Value::str("Eve"));
        assert_eq!(j.value(1, 2), Value::str("Tom"));
    }

    #[test]
    fn join_schema_disambiguates() {
        let j = hash_join(&likes(), &likes(), &[(0, 0)]).unwrap();
        assert!(j.schema().index_of("pid").is_ok());
        assert!(j.schema().index_of("pid_1").is_ok());
    }

    #[test]
    fn aggregates() {
        let t = person();
        let a = aggregate(
            &t,
            &[(AggFunc::Min, 1), (AggFunc::Max, 0), (AggFunc::Count, 0)],
        )
        .unwrap();
        assert_eq!(a.num_rows(), 1);
        assert_eq!(a.value(0, 0), Value::str("Bob"));
        assert_eq!(a.value(0, 1), Value::Int(30));
        assert_eq!(a.value(0, 2), Value::Int(3));
    }

    #[test]
    fn aggregate_of_empty_is_null_and_zero() {
        let t = person().take(&[]);
        let a = aggregate(&t, &[(AggFunc::Min, 1), (AggFunc::Count, 0)]).unwrap();
        assert_eq!(a.value(0, 0), Value::Null);
        assert_eq!(a.value(0, 1), Value::Int(0));
    }

    #[test]
    fn sort_orders_multi_key_and_is_stable() {
        let t = table_of(
            "s",
            &[("a", DataType::Int), ("b", DataType::Str)],
            vec![
                vec![2.into(), "x".into()],
                vec![1.into(), "z".into()],
                vec![2.into(), "a".into()],
                vec![1.into(), "a".into()],
            ],
        );
        let sorted = sort(
            &t,
            &[
                SortKey {
                    column: 0,
                    descending: false,
                },
                SortKey {
                    column: 1,
                    descending: true,
                },
            ],
        )
        .unwrap();
        let rows: Vec<(i64, String)> = (0..4)
            .map(|r| {
                (
                    sorted.value(r, 0).as_int().unwrap(),
                    sorted.value(r, 1).as_str().unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(
            rows,
            vec![
                (1, "z".into()),
                (1, "a".into()),
                (2, "x".into()),
                (2, "a".into())
            ]
        );
        assert!(sort(
            &t,
            &[SortKey {
                column: 9,
                descending: false
            }]
        )
        .is_err());
    }

    #[test]
    fn sort_handles_nulls_deterministically() {
        let t = table_of(
            "n",
            &[("a", DataType::Int)],
            vec![vec![2.into()], vec![Value::Null], vec![1.into()]],
        );
        let asc = sort(
            &t,
            &[SortKey {
                column: 0,
                descending: false,
            }],
        )
        .unwrap();
        assert_eq!(asc.value(0, 0), Value::Null, "NULLs first ascending");
        let desc = sort(
            &t,
            &[SortKey {
                column: 0,
                descending: true,
            }],
        )
        .unwrap();
        assert_eq!(desc.value(2, 0), Value::Null, "NULLs last descending");
    }

    #[test]
    fn limit_truncates() {
        let t = person();
        assert_eq!(limit(&t, 2).num_rows(), 2);
        assert_eq!(limit(&t, 10).num_rows(), 3);
        assert_eq!(limit(&t, 0).num_rows(), 0);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let t = table_of(
            "d",
            &[("x", DataType::Int)],
            vec![vec![1.into()], vec![2.into()], vec![1.into()]],
        );
        assert_eq!(distinct(&t).num_rows(), 2);
    }
}
