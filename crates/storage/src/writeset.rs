//! Primary-key write-sets: the stable conflict footprint of one ingest
//! commit.
//!
//! First-committer-wins MVCC validation (the `relgo` session layer) needs a
//! representation of "which rows did this commit touch" that is stable
//! across epochs. Row ids are *not* stable — the column-wise merge remaps
//! survivors — but primary-key values are, so a [`WriteSet`] records, per
//! table, the set of PK values a delta inserts or deletes. Two commits
//! conflict iff their write-sets share a `(table, key)` pair.

use relgo_common::{FxHashMap, FxHashSet};

/// The per-table primary-key footprint of one commit: every key the commit
/// inserted or tombstoned. Built by `relgo_delta::DeltaSet::write_set`
/// against the batch's base catalog; intersected by the session's
/// validate-and-publish critical section.
#[derive(Debug, Clone, Default)]
pub struct WriteSet {
    tables: FxHashMap<String, FxHashSet<i64>>,
}

impl WriteSet {
    /// Start an empty write-set.
    pub fn new() -> WriteSet {
        WriteSet::default()
    }

    /// Record that `table`'s row with primary key `key` is written.
    pub fn add(&mut self, table: &str, key: i64) {
        self.tables
            .entry(table.to_string())
            .or_default()
            .insert(key);
    }

    /// The keys written in `table`, if any.
    pub fn keys(&self, table: &str) -> Option<&FxHashSet<i64>> {
        self.tables.get(table)
    }

    /// Total written keys across all tables.
    pub fn len(&self) -> usize {
        self.tables.values().map(FxHashSet::len).sum()
    }

    /// Whether nothing is written.
    pub fn is_empty(&self) -> bool {
        self.tables.values().all(FxHashSet::is_empty)
    }

    /// The first `(table, key)` pair written by both sets, or `None` when
    /// they are disjoint. Deterministic: tables are probed in sorted name
    /// order and the smallest overlapping key is reported, so a conflict
    /// error message does not depend on hash-map iteration order.
    pub fn overlap(&self, other: &WriteSet) -> Option<(String, i64)> {
        let mut names: Vec<&String> = self
            .tables
            .keys()
            .filter(|t| other.tables.contains_key(*t))
            .collect();
        names.sort_unstable();
        for name in names {
            let (small, large) = {
                let a = &self.tables[name];
                let b = &other.tables[name];
                if a.len() <= b.len() {
                    (a, b)
                } else {
                    (b, a)
                }
            };
            if let Some(k) = small.iter().filter(|k| large.contains(k)).min() {
                return Some((name.clone(), *k));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_deterministic_and_symmetric() {
        let mut a = WriteSet::new();
        a.add("Person", 7);
        a.add("Person", 3);
        a.add("Knows", 100);
        let mut b = WriteSet::new();
        b.add("Person", 3);
        b.add("Person", 7);
        b.add("Likes", 100);
        // Sorted table order, smallest shared key.
        assert_eq!(a.overlap(&b), Some(("Person".to_string(), 3)));
        assert_eq!(b.overlap(&a), Some(("Person".to_string(), 3)));
    }

    #[test]
    fn disjoint_sets_do_not_overlap() {
        let mut a = WriteSet::new();
        a.add("Person", 1);
        let mut b = WriteSet::new();
        b.add("Person", 2);
        b.add("Knows", 1); // same key, different table
        assert_eq!(a.overlap(&b), None);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        assert!(WriteSet::new().is_empty());
        assert_eq!(WriteSet::new().overlap(&a), None);
    }

    #[test]
    fn keys_are_deduplicated() {
        let mut a = WriteSet::new();
        a.add("Person", 5);
        a.add("Person", 5);
        assert_eq!(a.len(), 1);
        assert!(a.keys("Person").unwrap().contains(&5));
        assert!(a.keys("Nope").is_none());
    }
}
