//! The database catalog: tables plus key metadata.
//!
//! The paper's `RGMapping` derives its λ total functions from primary-/
//! foreign-key relationships ("often established through primary-foreign key
//! relationships, as illustrated in an ER diagram", §2.1) — so the catalog
//! records, for every table, an optional integer primary key and any number
//! of [`ForeignKey`]s. [`KeyIndex`] resolves key values into row ids in O(1),
//! which is exactly the machinery the graph-index builder needs.

use crate::table::Table;
use relgo_common::{FxHashMap, RelGoError, Result, RowId};
use std::sync::Arc;

/// A foreign-key declaration: `table.column REFERENCES ref_table.ref_column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table.
    pub table: String,
    /// Referencing column.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column (must be that table's primary key).
    pub ref_column: String,
}

/// Unique hash index: key value (`i64`) → row id.
#[derive(Debug, Clone, Default)]
pub struct KeyIndex {
    map: FxHashMap<i64, RowId>,
}

impl KeyIndex {
    /// Build a unique index over `column` of `table`.
    ///
    /// Fails if the column is not integer-typed or contains duplicates /
    /// NULLs (a primary key must be total and unique).
    pub fn build(table: &Table, column: &str) -> Result<Self> {
        let col = table.column_by_name(column)?;
        let mut map = FxHashMap::default();
        map.reserve(table.num_rows());
        for r in 0..table.num_rows() as RowId {
            let Some(k) = col.get_int(r) else {
                return Err(RelGoError::schema(format!(
                    "primary key {}.{} contains NULL or non-integer at row {r}",
                    table.name(),
                    column
                )));
            };
            if map.insert(k, r).is_some() {
                return Err(RelGoError::schema(format!(
                    "primary key {}.{} has duplicate value {k}",
                    table.name(),
                    column
                )));
            }
        }
        Ok(KeyIndex { map })
    }

    /// Resolve a key value to its row id.
    #[inline]
    pub fn lookup(&self, key: i64) -> Option<RowId> {
        self.map.get(&key).copied()
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// An in-memory database: named tables + key metadata + lazily built key
/// indexes.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Arc<Table>>,
    by_name: FxHashMap<String, usize>,
    primary_keys: FxHashMap<String, String>,
    foreign_keys: Vec<ForeignKey>,
    key_indexes: FxHashMap<(String, String), Arc<KeyIndex>>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register a table. Replaces any previous table of the same name.
    pub fn add_table(&mut self, table: Table) -> Arc<Table> {
        let name = table.name().to_string();
        let arc = Arc::new(table);
        match self.by_name.get(&name) {
            Some(&i) => self.tables[i] = Arc::clone(&arc),
            None => {
                self.by_name.insert(name, self.tables.len());
                self.tables.push(Arc::clone(&arc));
            }
        }
        arc
    }

    /// Declare `table.column` as the primary key (column must exist).
    pub fn set_primary_key(&mut self, table: &str, column: &str) -> Result<()> {
        let t = self.table(table)?;
        t.schema().index_of(column)?;
        self.primary_keys
            .insert(table.to_string(), column.to_string());
        Ok(())
    }

    /// Declare a foreign key; both sides must exist and the referenced
    /// column must be the referenced table's primary key.
    pub fn add_foreign_key(
        &mut self,
        table: &str,
        column: &str,
        ref_table: &str,
        ref_column: &str,
    ) -> Result<()> {
        self.table(table)?.schema().index_of(column)?;
        self.table(ref_table)?.schema().index_of(ref_column)?;
        match self.primary_keys.get(ref_table) {
            Some(pk) if pk == ref_column => {}
            _ => {
                return Err(RelGoError::schema(format!(
                    "foreign key must reference a primary key; {ref_table}.{ref_column} is not one"
                )))
            }
        }
        self.foreign_keys.push(ForeignKey {
            table: table.to_string(),
            column: column.to_string(),
            ref_table: ref_table.to_string(),
            ref_column: ref_column.to_string(),
        });
        Ok(())
    }

    /// Replace an existing table with new contents (same name, same
    /// position), dropping any cached key indexes over it — the commit path
    /// of the delta store, where unchanged tables keep sharing their `Arc`s
    /// (and their cached indexes) while changed ones are re-registered.
    pub fn replace_table(&mut self, table: Table) -> Result<Arc<Table>> {
        let name = table.name().to_string();
        let Some(&i) = self.by_name.get(&name) else {
            return Err(RelGoError::not_found(format!(
                "table '{name}' (replace_table requires an existing table)"
            )));
        };
        let arc = Arc::new(table);
        self.tables[i] = Arc::clone(&arc);
        self.key_indexes.retain(|(t, _), _| *t != name);
        Ok(arc)
    }

    /// Fetch a table by name.
    pub fn table(&self, name: &str) -> Result<&Arc<Table>> {
        self.by_name
            .get(name)
            .map(|&i| &self.tables[i])
            .ok_or_else(|| RelGoError::not_found(format!("table '{name}'")))
    }

    /// All tables in registration order.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<Table>> {
        self.tables.iter()
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.name()).collect()
    }

    /// Primary key column of `table`, if declared.
    pub fn primary_key(&self, table: &str) -> Option<&str> {
        self.primary_keys.get(table).map(String::as_str)
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Foreign keys declared on `table`.
    pub fn foreign_keys_of<'a>(
        &'a self,
        table: &'a str,
    ) -> impl Iterator<Item = &'a ForeignKey> + 'a {
        self.foreign_keys.iter().filter(move |fk| fk.table == table)
    }

    /// Get or build the unique key index over `table.column`.
    pub fn key_index(&mut self, table: &str, column: &str) -> Result<Arc<KeyIndex>> {
        let key = (table.to_string(), column.to_string());
        if let Some(idx) = self.key_indexes.get(&key) {
            return Ok(Arc::clone(idx));
        }
        let t = Arc::clone(self.table(table)?);
        let idx = Arc::new(KeyIndex::build(&t, column)?);
        self.key_indexes.insert(key, Arc::clone(&idx));
        Ok(idx)
    }

    /// Total number of rows across all tables (for dataset statistics).
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.num_rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of;
    use relgo_common::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![vec![10.into(), "Tom".into()], vec![20.into(), "Bob".into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[("likes_id", DataType::Int), ("pid", DataType::Int)],
            vec![
                vec![1.into(), 10.into()],
                vec![2.into(), 20.into()],
                vec![3.into(), 10.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db
    }

    #[test]
    fn table_registration_and_lookup() {
        let db = db();
        assert_eq!(db.table("Person").unwrap().num_rows(), 2);
        assert!(db.table("Nope").is_err());
        assert_eq!(db.table_names(), vec!["Person", "Likes"]);
        assert_eq!(db.total_rows(), 5);
    }

    #[test]
    fn replacing_table_keeps_position() {
        let mut db = db();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![vec![30.into(), "Eve".into()]],
        ));
        assert_eq!(db.table_names(), vec!["Person", "Likes"]);
        assert_eq!(db.table("Person").unwrap().num_rows(), 1);
    }

    #[test]
    fn foreign_key_requires_primary_key() {
        let mut db = db();
        assert!(db
            .add_foreign_key("Likes", "pid", "Person", "person_id")
            .is_ok());
        // Referencing a non-PK column fails.
        assert!(db
            .add_foreign_key("Likes", "pid", "Person", "name")
            .is_err());
        // Unknown column fails.
        assert!(db
            .add_foreign_key("Likes", "nope", "Person", "person_id")
            .is_err());
        assert_eq!(db.foreign_keys_of("Likes").count(), 1);
    }

    #[test]
    fn key_index_resolves_rows() {
        let mut db = db();
        let idx = db.key_index("Person", "person_id").unwrap();
        assert_eq!(idx.lookup(10), Some(0));
        assert_eq!(idx.lookup(20), Some(1));
        assert_eq!(idx.lookup(99), None);
        assert_eq!(idx.len(), 2);
        // Cached: same Arc returned.
        let idx2 = db.key_index("Person", "person_id").unwrap();
        assert!(Arc::ptr_eq(&idx, &idx2));
    }

    #[test]
    fn replace_table_drops_stale_key_indexes() {
        let mut db = db();
        let old_idx = db.key_index("Person", "person_id").unwrap();
        assert_eq!(old_idx.lookup(30), None);
        db.replace_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![10.into(), "Tom".into()],
                vec![20.into(), "Bob".into()],
                vec![30.into(), "Eve".into()],
            ],
        ))
        .unwrap();
        // Position and name survive; the cached index was invalidated.
        assert_eq!(db.table_names(), vec!["Person", "Likes"]);
        let idx = db.key_index("Person", "person_id").unwrap();
        assert_eq!(idx.lookup(30), Some(2));
        assert!(!Arc::ptr_eq(&old_idx, &idx));
        // Unknown tables are rejected.
        assert!(db
            .replace_table(table_of("Nope", &[("k", DataType::Int)], vec![]))
            .is_err());
    }

    #[test]
    fn key_index_rejects_duplicates_and_nulls() {
        let dup = table_of(
            "D",
            &[("k", DataType::Int)],
            vec![vec![1.into()], vec![1.into()]],
        );
        assert!(KeyIndex::build(&dup, "k").is_err());
        let withnull = table_of(
            "N",
            &[("k", DataType::Int)],
            vec![vec![1.into()], vec![Value::Null]],
        );
        assert!(KeyIndex::build(&withnull, "k").is_err());
    }
}
