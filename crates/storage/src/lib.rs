//! # relgo-storage
//!
//! The columnar relational storage substrate underneath RelGo-RS.
//!
//! The paper executes optimized plans on DuckDB; this crate is the stand-in:
//! an in-memory, single-node columnar store with
//!
//! * typed columns ([`column::Column`]) and immutable tables
//!   ([`table::Table`]) built through [`table::TableBuilder`];
//! * a catalog ([`catalog::Database`]) carrying primary/foreign-key metadata
//!   — the raw material for `RGMapping`'s λ total functions;
//! * a scalar expression AST ([`expr::ScalarExpr`]) with row-at-a-time and
//!   batch evaluation;
//! * unique-key hash indexes ([`catalog::KeyIndex`]) used to resolve foreign
//!   keys into row ids when graph indexes are built;
//! * baseline relational operators ([`ops`]) — filter, project, hash join,
//!   aggregate — shared by the executor and by the test oracles;
//! * table statistics ([`stats`]) consumed by the relational optimizers;
//! * primary-key write-sets ([`writeset::WriteSet`]) — the stable conflict
//!   footprint of an ingest commit, intersected by the session layer's
//!   first-committer-wins MVCC validation.

pub mod catalog;
pub mod column;
pub mod expr;
pub mod ops;
pub mod stats;
pub mod table;
pub mod writeset;

pub use catalog::{Database, ForeignKey, KeyIndex};
pub use column::Column;
pub use expr::{BinaryOp, ScalarExpr};
pub use stats::{ColumnStats, TableStats};
pub use table::{Table, TableBuilder, TableChange};
pub use writeset::WriteSet;
