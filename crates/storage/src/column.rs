//! Typed columnar storage.
//!
//! A [`Column`] is a densely packed vector of one data type plus an optional
//! validity mask. Strings are deduplicated through `Arc<str>` sharing at the
//! [`Value`] boundary; inside the column they are stored as a flat `Vec` of
//! `Arc<str>` so `get` is allocation-free.

use relgo_common::{DataType, RelGoError, Result, RowId, Value};
use std::sync::Arc;

/// A typed column with optional NULL mask.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>, Option<Vec<bool>>),
    /// 64-bit floats.
    Float(Vec<f64>, Option<Vec<bool>>),
    /// Shared strings.
    Str(Vec<Arc<str>>, Option<Vec<bool>>),
    /// Booleans.
    Bool(Vec<bool>, Option<Vec<bool>>),
    /// Dates as epoch days.
    Date(Vec<i64>, Option<Vec<bool>>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new(), None),
            DataType::Float => Column::Float(Vec::new(), None),
            DataType::Str => Column::Str(Vec::new(), None),
            DataType::Bool => Column::Bool(Vec::new(), None),
            DataType::Date => Column::Date(Vec::new(), None),
        }
    }

    /// Create an empty column with pre-reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::with_capacity(cap), None),
            DataType::Float => Column::Float(Vec::with_capacity(cap), None),
            DataType::Str => Column::Str(Vec::with_capacity(cap), None),
            DataType::Bool => Column::Bool(Vec::with_capacity(cap), None),
            DataType::Date => Column::Date(Vec::with_capacity(cap), None),
        }
    }

    /// This column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(..) => DataType::Int,
            Column::Float(..) => DataType::Float,
            Column::Str(..) => DataType::Str,
            Column::Bool(..) => DataType::Bool,
            Column::Date(..) => DataType::Date,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v, _) | Column::Date(v, _) => v.len(),
            Column::Float(v, _) => v.len(),
            Column::Str(v, _) => v.len(),
            Column::Bool(v, _) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn validity(&self) -> Option<&Vec<bool>> {
        match self {
            Column::Int(_, m)
            | Column::Date(_, m)
            | Column::Float(_, m)
            | Column::Str(_, m)
            | Column::Bool(_, m) => m.as_ref(),
        }
    }

    fn validity_mut(&mut self) -> &mut Option<Vec<bool>> {
        match self {
            Column::Int(_, m)
            | Column::Date(_, m)
            | Column::Float(_, m)
            | Column::Str(_, m)
            | Column::Bool(_, m) => m,
        }
    }

    /// Whether the value at `row` is NULL.
    #[inline]
    pub fn is_null(&self, row: RowId) -> bool {
        match self.validity() {
            Some(m) => !m[row as usize],
            None => false,
        }
    }

    /// Fetch the value at `row` (clones only cheaply shareable data).
    pub fn get(&self, row: RowId) -> Value {
        let i = row as usize;
        if self.is_null(row) {
            return Value::Null;
        }
        match self {
            Column::Int(v, _) => Value::Int(v[i]),
            Column::Float(v, _) => Value::Float(v[i]),
            Column::Str(v, _) => Value::Str(Arc::clone(&v[i])),
            Column::Bool(v, _) => Value::Bool(v[i]),
            Column::Date(v, _) => Value::Date(v[i]),
        }
    }

    /// Raw integer accessor (valid for `Int`/`Date`); NULL yields `None`.
    #[inline]
    pub fn get_int(&self, row: RowId) -> Option<i64> {
        if self.is_null(row) {
            return None;
        }
        match self {
            Column::Int(v, _) | Column::Date(v, _) => Some(v[row as usize]),
            _ => None,
        }
    }

    /// Raw string accessor (valid for `Str`); NULL yields `None`.
    #[inline]
    pub fn get_str(&self, row: RowId) -> Option<&str> {
        if self.is_null(row) {
            return None;
        }
        match self {
            Column::Str(v, _) => Some(&v[row as usize]),
            _ => None,
        }
    }

    fn push_null_slot(&mut self) {
        match self {
            Column::Int(v, _) | Column::Date(v, _) => v.push(0),
            Column::Float(v, _) => v.push(0.0),
            Column::Str(v, _) => v.push(Arc::from("")),
            Column::Bool(v, _) => v.push(false),
        }
    }

    /// Append a value; `Value::Null` sets the validity mask.
    pub fn push(&mut self, value: Value) -> Result<()> {
        let n = self.len();
        if value.is_null() {
            let mask = self.validity_mut();
            let m = mask.get_or_insert_with(|| vec![true; n]);
            m.push(false);
            self.push_null_slot();
            return Ok(());
        }
        if let Some(m) = self.validity_mut().as_mut() {
            m.push(true);
        }
        match (&mut *self, &value) {
            (Column::Int(v, _), Value::Int(x)) => v.push(*x),
            (Column::Date(v, _), Value::Date(x)) | (Column::Date(v, _), Value::Int(x)) => {
                v.push(*x)
            }
            (Column::Int(v, _), Value::Date(x)) => v.push(*x),
            (Column::Float(v, _), Value::Float(x)) => v.push(*x),
            (Column::Float(v, _), Value::Int(x)) => v.push(*x as f64),
            (Column::Str(v, _), Value::Str(s)) => v.push(Arc::clone(s)),
            (Column::Bool(v, _), Value::Bool(b)) => v.push(*b),
            _ => {
                // Roll back the validity push before erroring.
                if let Some(m) = self.validity_mut().as_mut() {
                    m.pop();
                }
                return Err(RelGoError::schema(format!(
                    "cannot store {:?} into {} column",
                    value,
                    self.dtype()
                )));
            }
        }
        Ok(())
    }

    /// Gather the rows at `indices` into a new column (used by projection
    /// and join materialization).
    pub fn take(&self, indices: &[RowId]) -> Column {
        let mut out = Column::with_capacity(self.dtype(), indices.len());
        // Fast paths avoid Value boxing for the dominant types.
        match (self, &mut out) {
            (Column::Int(v, m), Column::Int(o, om)) | (Column::Date(v, m), Column::Date(o, om)) => {
                o.extend(indices.iter().map(|&i| v[i as usize]));
                if let Some(m) = m {
                    *om = Some(indices.iter().map(|&i| m[i as usize]).collect());
                }
            }
            (Column::Str(v, m), Column::Str(o, om)) => {
                o.extend(indices.iter().map(|&i| Arc::clone(&v[i as usize])));
                if let Some(m) = m {
                    *om = Some(indices.iter().map(|&i| m[i as usize]).collect());
                }
            }
            _ => {
                for &i in indices {
                    out.push(self.get(i)).expect("same dtype");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_int() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(10)).unwrap();
        c.push(Value::Int(-3)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Int(10));
        assert_eq!(c.get_int(1), Some(-3));
    }

    #[test]
    fn nulls_tracked_via_mask() {
        let mut c = Column::new(DataType::Str);
        c.push(Value::str("a")).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::str("b")).unwrap();
        assert!(!c.is_null(0));
        assert!(c.is_null(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get_str(1), None);
        assert_eq!(c.get_str(2), Some("b"));
    }

    #[test]
    fn type_mismatch_is_error_and_rolls_back() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        let before = c.len();
        assert!(c.push(Value::str("oops")).is_err());
        assert_eq!(c.len(), before);
        // Validity mask stays consistent.
        assert!(!c.is_null(0));
        assert!(c.is_null(1));
    }

    #[test]
    fn int_promotes_into_float_column() {
        let mut c = Column::new(DataType::Float);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn date_accepts_int_payload() {
        let mut c = Column::new(DataType::Date);
        c.push(Value::Int(100)).unwrap();
        c.push(Value::Date(200)).unwrap();
        assert_eq!(c.get(0), Value::Date(100));
        assert_eq!(c.get_int(1), Some(200));
    }

    #[test]
    fn take_gathers_rows() {
        let mut c = Column::new(DataType::Int);
        for i in 0..5 {
            c.push(Value::Int(i * 10)).unwrap();
        }
        let t = c.take(&[4, 0, 2]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0), Value::Int(40));
        assert_eq!(t.get(1), Value::Int(0));
        assert_eq!(t.get(2), Value::Int(20));
    }

    #[test]
    fn take_preserves_nulls() {
        let mut c = Column::new(DataType::Str);
        c.push(Value::str("x")).unwrap();
        c.push(Value::Null).unwrap();
        let t = c.take(&[1, 0, 1]);
        assert!(t.is_null(0));
        assert!(!t.is_null(1));
        assert!(t.is_null(2));
    }
}
