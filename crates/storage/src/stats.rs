//! Low-order table statistics.
//!
//! These are the "low-order statistics" of the paper (§4.3): per-table
//! cardinalities and per-column distinct counts / value ranges. The
//! graph-agnostic optimizers estimate join cardinalities from them with the
//! classic independence assumptions; the graph-aware optimizer instead uses
//! the high-order statistics of `relgo-glogue`.

use crate::expr::{BinaryOp, ScalarExpr};
use crate::table::{Table, TableChange};
use relgo_common::{DataType, FxHashSet, RowId, Value};

/// An equi-width histogram over an integer/date column — the "attribute
/// distribution" statistic the paper credits Umbra's better estimates to
/// (§5.3.2) and lists as RelGo future work.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: i64,
    max: i64,
    /// Bucket counts over `[min, max]`, equal width.
    buckets: Vec<u32>,
    /// Total non-NULL values.
    total: u64,
}

impl Histogram {
    /// Default bucket count.
    pub const BUCKETS: usize = 32;

    /// Build over the non-NULL integer values of `table.column(col)`;
    /// `None` if the column is not integer-typed or is empty.
    pub fn build(table: &Table, col: usize) -> Option<Histogram> {
        let c = table.column(col);
        if !matches!(c.dtype(), DataType::Int | DataType::Date) {
            return None;
        }
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        let mut values = Vec::with_capacity(table.num_rows());
        for r in 0..table.num_rows() as RowId {
            if let Some(v) = c.get_int(r) {
                min = min.min(v);
                max = max.max(v);
                values.push(v);
            }
        }
        if values.is_empty() {
            return None;
        }
        let mut h = Histogram {
            min,
            max,
            buckets: vec![0; Self::BUCKETS],
            total: values.len() as u64,
        };
        for v in values {
            let b = h.bucket_of(v);
            h.buckets[b] += 1;
        }
        Some(h)
    }

    fn bucket_of(&self, v: i64) -> usize {
        if self.max == self.min {
            return 0;
        }
        let span = (self.max - self.min) as u128 + 1;
        let off = (v - self.min) as u128;
        ((off * Self::BUCKETS as u128) / span) as usize
    }

    fn bucket_width(&self) -> f64 {
        ((self.max - self.min) as f64 + 1.0) / Self::BUCKETS as f64
    }

    /// Estimated selectivity of `col = v`.
    pub fn eq_selectivity(&self, v: i64) -> f64 {
        if v < self.min || v > self.max {
            return 0.0;
        }
        let b = self.bucket_of(v);
        let in_bucket = self.buckets[b] as f64;
        // Uniformity within the bucket.
        (in_bucket / self.bucket_width().max(1.0)) / self.total as f64
    }

    /// Estimated selectivity of `lo ≤ col ≤ hi` (either bound optional).
    pub fn range_selectivity(&self, lo: Option<i64>, hi: Option<i64>) -> f64 {
        let lo = lo.unwrap_or(self.min).max(self.min);
        let hi = hi.unwrap_or(self.max).min(self.max);
        if hi < lo {
            return 0.0;
        }
        let (bl, bh) = (self.bucket_of(lo), self.bucket_of(hi));
        let mut count = 0.0;
        for b in bl..=bh {
            let full = self.buckets[b] as f64;
            // Fractional coverage of the boundary buckets.
            let b_lo = self.min as f64 + b as f64 * self.bucket_width();
            let b_hi = b_lo + self.bucket_width();
            let covered_lo = (lo as f64).max(b_lo);
            let covered_hi = ((hi + 1) as f64).min(b_hi);
            let frac = ((covered_hi - covered_lo) / self.bucket_width()).clamp(0.0, 1.0);
            count += full * frac;
        }
        (count / self.total as f64).clamp(0.0, 1.0)
    }
}

/// Histogram-backed selectivity estimate of a predicate over `table`.
/// Integer comparisons consult equi-width histograms; everything else falls
/// back to the heuristic priors of [`ScalarExpr::estimated_selectivity`].
pub fn predicate_selectivity(table: &Table, expr: &ScalarExpr) -> f64 {
    match expr {
        ScalarExpr::And(l, r) => {
            (predicate_selectivity(table, l) * predicate_selectivity(table, r)).max(1e-9)
        }
        ScalarExpr::Or(l, r) => {
            let (a, b) = (
                predicate_selectivity(table, l),
                predicate_selectivity(table, r),
            );
            (a + b - a * b).min(1.0)
        }
        ScalarExpr::Not(e) => (1.0 - predicate_selectivity(table, e)).max(1e-9),
        ScalarExpr::Cmp(op, l, r) => {
            // col <op> literal (either orientation).
            let (col, lit, op) = match (l.as_ref(), r.as_ref()) {
                (ScalarExpr::Col(c), ScalarExpr::Lit(v)) => (*c, v.clone(), *op),
                (ScalarExpr::Lit(v), ScalarExpr::Col(c)) => (*c, v.clone(), flip(*op)),
                _ => return expr.estimated_selectivity(),
            };
            let Some(v) = lit.as_int() else {
                return expr.estimated_selectivity();
            };
            let Some(h) = Histogram::build(table, col) else {
                return expr.estimated_selectivity();
            };
            match op {
                BinaryOp::Eq => h.eq_selectivity(v).max(1e-9),
                BinaryOp::Ne => (1.0 - h.eq_selectivity(v)).max(1e-9),
                BinaryOp::Lt => h.range_selectivity(None, Some(v - 1)).max(1e-9),
                BinaryOp::Le => h.range_selectivity(None, Some(v)).max(1e-9),
                BinaryOp::Gt => h.range_selectivity(Some(v + 1), None).max(1e-9),
                BinaryOp::Ge => h.range_selectivity(Some(v), None).max(1e-9),
            }
        }
        other => other.estimated_selectivity(),
    }
}

fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    }
}

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-NULL values.
    pub distinct: usize,
    /// Number of NULLs.
    pub nulls: usize,
    /// Minimum non-NULL value.
    pub min: Option<Value>,
    /// Maximum non-NULL value.
    pub max: Option<Value>,
}

/// Statistics of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Per-column statistics, aligned with the schema.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute exact statistics in one pass per column.
    pub fn compute(table: &Table) -> Self {
        let mut columns = Vec::with_capacity(table.num_columns());
        for c in 0..table.num_columns() {
            let col = table.column(c);
            let mut nulls = 0usize;
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            // Distinct counting: hash the value fingerprints.
            let mut seen: FxHashSet<Value> = FxHashSet::default();
            for r in 0..table.num_rows() as RowId {
                let v = col.get(r);
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                if min.as_ref().is_none_or(|m| v < *m) {
                    min = Some(v.clone());
                }
                if max.as_ref().is_none_or(|m| v > *m) {
                    max = Some(v.clone());
                }
                seen.insert(v);
            }
            columns.push(ColumnStats {
                distinct: seen.len(),
                nulls,
                min,
                max,
            });
        }
        TableStats {
            rows: table.num_rows(),
            columns,
        }
    }

    /// Delta-aware refresh: statistics of `merged` given the statistics of
    /// its base and the [`TableChange`] that produced it.
    ///
    /// Deletions can retract extremes and distinct values, so they force a
    /// full recompute. Append-only changes are incremental: rows, NULLs and
    /// min/max are updated by scanning **only the appended rows**, and the
    /// distinct count is maintained without touching the base whenever every
    /// appended value lies outside the base min/max (the dominant ingest
    /// shape — ascending surrogate keys and timestamps); an appended value
    /// inside the base range may collide with an existing one, so only that
    /// column falls back to a full distinct pass.
    pub fn merge_delta(&self, merged: &Table, change: &TableChange) -> TableStats {
        if !change.is_append_only() {
            return TableStats::compute(merged);
        }
        let base_rows = change.base_rows() as RowId;
        let mut columns = Vec::with_capacity(merged.num_columns());
        for (c, base) in self.columns.iter().enumerate() {
            let col = merged.column(c);
            let mut nulls = base.nulls;
            let mut min = base.min.clone();
            let mut max = base.max.clone();
            let mut fresh: FxHashSet<Value> = FxHashSet::default();
            let mut all_outside = true;
            for r in base_rows..merged.num_rows() as RowId {
                let v = col.get(r);
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                let below = min.as_ref().is_none_or(|m| v < *m);
                let above = max.as_ref().is_none_or(|m| v > *m);
                all_outside &= below || above;
                if below {
                    min = Some(v.clone());
                }
                if above {
                    max = Some(v.clone());
                }
                fresh.insert(v);
            }
            let distinct = if all_outside {
                base.distinct + fresh.len()
            } else {
                // Some appended value falls inside the base range: resolve
                // collisions exactly with one pass over this column.
                let mut seen: FxHashSet<Value> = FxHashSet::default();
                for r in 0..merged.num_rows() as RowId {
                    let v = col.get(r);
                    if !v.is_null() {
                        seen.insert(v);
                    }
                }
                seen.len()
            };
            columns.push(ColumnStats {
                distinct,
                nulls,
                min,
                max,
            });
        }
        TableStats {
            rows: merged.num_rows(),
            columns,
        }
    }

    /// Estimated selectivity of `col = const` under uniformity: `1/distinct`.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        let d = self.columns[col].distinct.max(1);
        1.0 / d as f64
    }

    /// Estimated selectivity of a range predicate on `col` assuming a
    /// uniform distribution between min and max (integer/date columns only;
    /// falls back to 1/3 otherwise).
    pub fn range_selectivity(&self, col: usize, lo: Option<i64>, hi: Option<i64>) -> f64 {
        let stats = &self.columns[col];
        let (Some(min), Some(max)) = (
            stats.min.as_ref().and_then(Value::as_int),
            stats.max.as_ref().and_then(Value::as_int),
        ) else {
            return 1.0 / 3.0;
        };
        if max <= min {
            return 1.0;
        }
        let span = (max - min) as f64;
        let lo = lo.unwrap_or(min).max(min);
        let hi = hi.unwrap_or(max).min(max);
        if hi < lo {
            return 0.0;
        }
        ((hi - lo) as f64 / span).clamp(0.0, 1.0)
    }
}

/// Dataset-level statistic summary used by the `repro stats` report: per
/// table `(name, rows, columns)` plus a `DataType` histogram.
pub fn dataset_summary(tables: &[&Table]) -> Vec<(String, usize, usize)> {
    tables
        .iter()
        .map(|t| (t.name().to_string(), t.num_rows(), t.num_columns()))
        .collect()
}

/// Count how many columns of each data type exist across `tables`.
pub fn dtype_histogram(tables: &[&Table]) -> Vec<(DataType, usize)> {
    let mut counts: Vec<(DataType, usize)> = vec![
        (DataType::Int, 0),
        (DataType::Float, 0),
        (DataType::Str, 0),
        (DataType::Bool, 0),
        (DataType::Date, 0),
    ];
    for t in tables {
        for f in t.schema().fields() {
            for entry in counts.iter_mut() {
                if entry.0 == f.dtype {
                    entry.1 += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of;

    fn t() -> Table {
        table_of(
            "t",
            &[("k", DataType::Int), ("s", DataType::Str)],
            vec![
                vec![1.into(), "a".into()],
                vec![5.into(), "b".into()],
                vec![5.into(), Value::Null],
                vec![9.into(), "a".into()],
            ],
        )
    }

    #[test]
    fn stats_exact() {
        let s = TableStats::compute(&t());
        assert_eq!(s.rows, 4);
        assert_eq!(s.columns[0].distinct, 3);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(9)));
        assert_eq!(s.columns[1].distinct, 2);
        assert_eq!(s.columns[1].nulls, 1);
    }

    #[test]
    fn eq_selectivity_uses_distinct() {
        let s = TableStats::compute(&t());
        assert!((s.eq_selectivity(0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.eq_selectivity(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_uniform() {
        let s = TableStats::compute(&t());
        // span 1..9 == 8; predicate k > 5 covers 5..9 == 4/8.
        let sel = s.range_selectivity(0, Some(5), None);
        assert!((sel - 0.5).abs() < 1e-12);
        assert_eq!(s.range_selectivity(0, Some(100), None), 0.0);
        // String column falls back.
        assert!((s.range_selectivity(1, None, None) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_eq_and_range() {
        // 100 rows, values 0..100 uniform.
        let mut rows = Vec::new();
        for i in 0..100 {
            rows.push(vec![Value::Int(i)]);
        }
        let t = table_of("h", &[("x", DataType::Int)], rows);
        let h = Histogram::build(&t, 0).unwrap();
        // Uniform: eq ≈ 1/100, range [25, 74] ≈ 0.5.
        assert!((h.eq_selectivity(50) - 0.01).abs() < 0.01);
        let r = h.range_selectivity(Some(25), Some(74));
        assert!((r - 0.5).abs() < 0.1, "got {r}");
        assert_eq!(h.eq_selectivity(1_000), 0.0);
        assert_eq!(h.range_selectivity(Some(200), None), 0.0);
        assert!((h.range_selectivity(None, None) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_captures_skew() {
        // 90 values at 0, 10 spread over 1..=1000.
        let mut rows = vec![vec![Value::Int(0)]; 90];
        for i in 0..10 {
            rows.push(vec![Value::Int(1 + i * 100)]);
        }
        let t = table_of("s", &[("x", DataType::Int)], rows);
        let h = Histogram::build(&t, 0).unwrap();
        // The hot value dominates its bucket.
        assert!(h.eq_selectivity(0) > 10.0 * h.eq_selectivity(901));
        // Heuristic priors can't see this; histograms can.
        let sel_tail = h.range_selectivity(Some(500), None);
        assert!(sel_tail < 0.2, "tail is sparse: {sel_tail}");
    }

    #[test]
    fn histogram_rejects_non_integer_columns() {
        let t = table_of("s", &[("x", DataType::Str)], vec![vec!["a".into()]]);
        assert!(Histogram::build(&t, 0).is_none());
        let empty = table_of("e", &[("x", DataType::Int)], vec![]);
        assert!(Histogram::build(&empty, 0).is_none());
    }

    #[test]
    fn predicate_selectivity_uses_histograms() {
        let mut rows = Vec::new();
        for i in 0..100 {
            rows.push(vec![Value::Int(i % 10), Value::str(format!("s{i}"))]);
        }
        let t = table_of("p", &[("x", DataType::Int), ("s", DataType::Str)], rows);
        // x = 3 → exactly 10%.
        let sel = predicate_selectivity(&t, &ScalarExpr::col_eq(0, 3i64));
        assert!((sel - 0.1).abs() < 0.05, "got {sel}");
        // x >= 8 → 20%.
        let sel = predicate_selectivity(&t, &ScalarExpr::col_cmp(0, BinaryOp::Ge, 8i64));
        assert!((sel - 0.2).abs() < 0.1, "got {sel}");
        // String predicates fall back to priors.
        let sel = predicate_selectivity(
            &t,
            &ScalarExpr::StartsWith(Box::new(ScalarExpr::Col(1)), "s1".into()),
        );
        assert!(sel > 0.0 && sel <= 1.0);
        // Conjunction multiplies.
        let a = ScalarExpr::col_eq(0, 3i64);
        let b = ScalarExpr::col_cmp(0, BinaryOp::Ge, 8i64);
        let sel_and = predicate_selectivity(&t, &a.clone().and(b.clone()));
        assert!(sel_and <= predicate_selectivity(&t, &a));
    }

    #[test]
    fn merge_delta_append_outside_range_is_incremental() {
        let base = t();
        let stats = TableStats::compute(&base);
        // Appended keys above the base max: distinct adds without a rescan.
        let merged = table_of(
            "t",
            &[("k", DataType::Int), ("s", DataType::Str)],
            vec![
                vec![1.into(), "a".into()],
                vec![5.into(), "b".into()],
                vec![5.into(), Value::Null],
                vec![9.into(), "a".into()],
                vec![12.into(), "z9".into()],
                vec![12.into(), Value::Null],
            ],
        );
        let change = TableChange::new(4, vec![], 2);
        let inc = stats.merge_delta(&merged, &change);
        assert_eq!(inc, TableStats::compute(&merged));
        assert_eq!(inc.rows, 6);
        assert_eq!(inc.columns[0].distinct, 4);
        assert_eq!(inc.columns[0].max, Some(Value::Int(12)));
        assert_eq!(inc.columns[1].nulls, 2);
    }

    #[test]
    fn merge_delta_collision_and_deletion_stay_exact() {
        let base = t();
        let stats = TableStats::compute(&base);
        // Appended key 5 collides with an existing value: the column falls
        // back to a full distinct pass and must stay exact.
        let merged = table_of(
            "t",
            &[("k", DataType::Int), ("s", DataType::Str)],
            vec![
                vec![1.into(), "a".into()],
                vec![5.into(), "b".into()],
                vec![5.into(), Value::Null],
                vec![9.into(), "a".into()],
                vec![5.into(), "b".into()],
            ],
        );
        let inc = stats.merge_delta(&merged, &TableChange::new(4, vec![], 1));
        assert_eq!(inc, TableStats::compute(&merged));
        assert_eq!(inc.columns[0].distinct, 3);
        // A deletion forces the full path (and matches it).
        let shrunk = table_of(
            "t",
            &[("k", DataType::Int), ("s", DataType::Str)],
            vec![vec![1.into(), "a".into()], vec![9.into(), "a".into()]],
        );
        let inc = stats.merge_delta(&shrunk, &TableChange::new(4, vec![1, 2], 0));
        assert_eq!(inc, TableStats::compute(&shrunk));
    }

    #[test]
    fn summaries() {
        let binding = t();
        let tables = vec![&binding];
        let sum = dataset_summary(&tables);
        assert_eq!(sum, vec![("t".to_string(), 4, 2)]);
        let hist = dtype_histogram(&tables);
        assert!(hist.contains(&(DataType::Int, 1)));
        assert!(hist.contains(&(DataType::Str, 1)));
    }
}
