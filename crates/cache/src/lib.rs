//! # relgo-cache
//!
//! A sharded, statistics-versioned LRU plan cache for the converged
//! optimizer's serving path.
//!
//! Planning an SPJM query pays for GLogue cost-based ordering plus rule
//! application on every call, yet serving traffic is dominated by repeated
//! query *templates* that differ only in literals. The cache stores
//! optimized [`PhysicalPlan`] skeletons under [`PlanKey`]s — `(optimizer
//! mode, canonical pattern fingerprint, relational shape, parameter-slot
//! signature)` as produced by [`relgo_core::parameterize`] — together with
//! the literal bindings each skeleton was optimized with, so a hit only
//! needs [`relgo_core::rebind_plan`] before execution.
//!
//! Design:
//!
//! * **Sharding** — keys are spread over `N` `parking_lot`-locked shards by
//!   key fingerprint; concurrent serving threads only contend when they
//!   land on the same shard.
//! * **LRU** — each shard holds at most `capacity / N` entries; inserting
//!   beyond that evicts the least-recently-used entry (a global logical
//!   clock orders uses).
//! * **Statistics versioning** — the cache carries a version counter;
//!   entries remember the version they were planned under and
//!   [`PlanCache::invalidate_all`] bumps it (GLogue/catalog rebuilds call
//!   this), so stale plans die lazily on their next lookup.
//! * **Metrics** — hits, misses, evictions, invalidations and rebind
//!   failures are atomic counters, snapshot via [`PlanCache::metrics`].
//! * **Pinning** — a prepared-statement handle captures a [`PinnedPlan`]
//!   snapshot via [`PlanCache::pin`]. The pin owns its skeleton (`Arc`), so
//!   LRU eviction of the underlying entry never breaks the handle, while
//!   [`PlanCache::pin_is_current`] still subjects it to statistics-version
//!   invalidation: after `invalidate_all` the handle must re-optimize.

use parking_lot::Mutex;
use relgo_common::fxhash::FxHashMap;
use relgo_common::Value;
use relgo_core::{PhysicalPlan, PlanKey};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of independently locked shards (rounded up to ≥ 1).
    pub shards: usize,
    /// Total entry capacity across all shards (≥ `shards`).
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity: 1024,
        }
    }
}

/// Monotonic counters describing cache behavior since construction.
#[derive(Debug, Default)]
pub struct CacheMetrics {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    rebind_failures: AtomicU64,
    prepared_hits: AtomicU64,
    prepared_invalidations: AtomicU64,
}

/// A point-in-time copy of [`CacheMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Lookups that returned a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only a stale-version entry).
    pub misses: u64,
    /// Entries displaced by LRU capacity pressure.
    pub evictions: u64,
    /// `invalidate_all` calls (statistics-version bumps).
    pub invalidations: u64,
    /// Hits whose skeleton could not be rebound (caller fell back to the
    /// optimizer).
    pub rebind_failures: u64,
    /// Prepared-statement executes served from a live pinned skeleton
    /// (rebind only — no parameterize, no cache probe).
    pub prepared_hits: u64,
    /// Prepared-statement executes that found their pin stale (statistics
    /// version moved) and transparently re-optimized.
    pub prepared_invalidations: u64,
}

impl MetricsSnapshot {
    /// Counter-wise difference since `earlier` (replay reporting).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            invalidations: self.invalidations - earlier.invalidations,
            rebind_failures: self.rebind_failures - earlier.rebind_failures,
            prepared_hits: self.prepared_hits - earlier.prepared_hits,
            prepared_invalidations: self.prepared_invalidations - earlier.prepared_invalidations,
        }
    }

    /// The counters as stable `(name, value)` pairs — what an
    /// observability layer folds into a metrics export (the names become
    /// series suffixes, so they are part of the public scrape surface).
    pub fn counters(&self) -> [(&'static str, u64); 7] {
        [
            ("hits", self.hits),
            ("misses", self.misses),
            ("evictions", self.evictions),
            ("invalidations", self.invalidations),
            ("rebind_failures", self.rebind_failures),
            ("prepared_hits", self.prepared_hits),
            ("prepared_invalidations", self.prepared_invalidations),
        ]
    }

    /// Hit ratio in `[0, 1]` (0 when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A pinned plan skeleton: the snapshot a prepared-statement handle
/// executes against. The pin owns the skeleton (`Arc`), so LRU eviction of
/// the cache entry it was taken from cannot invalidate it; only a
/// statistics-version bump ([`PlanCache::invalidate_all`]) makes it stale,
/// checked via [`PlanCache::pin_is_current`].
#[derive(Debug, Clone)]
pub struct PinnedPlan {
    /// The optimized skeleton.
    pub plan: Arc<PhysicalPlan>,
    /// The literal bindings the skeleton was optimized with (rebind source).
    pub params: Vec<Value>,
    /// Statistics version at pin time.
    pub version: u64,
}

/// One cached plan skeleton.
struct Entry {
    plan: Arc<PhysicalPlan>,
    /// The literal bindings the skeleton was optimized with.
    params: Vec<Value>,
    /// Statistics version at insert time.
    version: u64,
    /// Last-use tick (global logical clock).
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: FxHashMap<PlanKey, Entry>,
}

/// The sharded, versioned LRU plan cache. Cheap to share: wrap in an `Arc`
/// and hand clones to every serving thread.
pub struct PlanCache {
    shards: Box<[Mutex<Shard>]>,
    per_shard_capacity: usize,
    version: AtomicU64,
    clock: AtomicU64,
    metrics: CacheMetrics,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &self.len())
            .field("version", &self.stats_version())
            .finish()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(CacheConfig::default())
    }
}

impl PlanCache {
    /// Create a cache with the given sharding/capacity.
    pub fn new(cfg: CacheConfig) -> PlanCache {
        let shards = cfg.shards.max(1);
        let per_shard_capacity = cfg.capacity.div_ceil(shards).max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            version: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            metrics: CacheMetrics::default(),
        }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<Shard> {
        let idx = (key.fingerprint() as usize) % self.shards.len();
        &self.shards[idx]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The current statistics version.
    pub fn stats_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Bump the statistics version: every existing entry becomes stale and
    /// is discarded on its next lookup. Called when the GLogue statistics
    /// or the catalog are rebuilt.
    pub fn invalidate_all(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
        self.metrics.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Look up a plan skeleton. On a hit, returns the skeleton and the
    /// bindings it was optimized with (for rebinding) and refreshes its LRU
    /// position. A stale-version entry counts as a miss and is removed.
    pub fn lookup(&self, key: &PlanKey) -> Option<(Arc<PhysicalPlan>, Vec<Value>)> {
        let version = self.stats_version();
        let mut shard = self.shard(key).lock();
        match shard.map.get_mut(key) {
            Some(entry) if entry.version == version => {
                entry.last_used = self.tick();
                let out = (Arc::clone(&entry.plan), entry.params.clone());
                drop(shard);
                self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            Some(_) => {
                shard.map.remove(key);
                drop(shard);
                self.metrics.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(shard);
                self.metrics.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) a plan skeleton optimized with `params` under the
    /// current statistics version, evicting the shard's LRU entry when the
    /// shard is full.
    pub fn insert(&self, key: PlanKey, plan: Arc<PhysicalPlan>, params: Vec<Value>) {
        self.insert_at(key, plan, params, self.stats_version());
    }

    /// Insert stamped with an explicit statistics version: callers that
    /// *began* optimizing before a concurrent `invalidate_all` pass the
    /// version they observed, so a plan costed against superseded
    /// statistics is born stale and dies on its next lookup instead of
    /// being served as current.
    pub fn insert_at(
        &self,
        key: PlanKey,
        plan: Arc<PhysicalPlan>,
        params: Vec<Value>,
        version: u64,
    ) {
        let current = self.stats_version();
        let last_used = self.tick();
        let mut shard = self.shard(&key).lock();
        let replacing = shard.map.contains_key(&key);
        if !replacing && shard.map.len() >= self.per_shard_capacity {
            // Evict the least-recently-used entry (stale entries first —
            // they are dead weight regardless of recency).
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| (e.version == current, e.last_used))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                shard.map.remove(&victim);
                self.metrics.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                plan,
                params,
                version,
                last_used,
            },
        );
    }

    /// Record that a hit's skeleton could not be rebound (the caller fell
    /// back to the optimizer).
    pub fn note_rebind_failure(&self) {
        self.metrics.rebind_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Pin `plan` under the current statistics version. The returned
    /// snapshot stays executable across LRU evictions; staleness is checked
    /// with [`PlanCache::pin_is_current`].
    pub fn pin(&self, plan: Arc<PhysicalPlan>, params: Vec<Value>) -> PinnedPlan {
        PinnedPlan {
            plan,
            params,
            version: self.stats_version(),
        }
    }

    /// Pin `plan` under an explicit statistics version (the version the
    /// caller observed before optimizing — see [`PlanCache::insert_at`]).
    pub fn pin_at(&self, plan: Arc<PhysicalPlan>, params: Vec<Value>, version: u64) -> PinnedPlan {
        PinnedPlan {
            plan,
            params,
            version,
        }
    }

    /// Whether `pin` was taken under the current statistics version.
    pub fn pin_is_current(&self, pin: &PinnedPlan) -> bool {
        pin.version == self.stats_version()
    }

    /// Record a prepared-statement execute served from a live pin.
    pub fn note_prepared_hit(&self) {
        self.metrics.prepared_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a prepared-statement execute that found its pin stale and
    /// re-optimized.
    pub fn note_prepared_invalidation(&self) {
        self.metrics
            .prepared_invalidations
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the metric counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            hits: self.metrics.hits.load(Ordering::Relaxed),
            misses: self.metrics.misses.load(Ordering::Relaxed),
            evictions: self.metrics.evictions.load(Ordering::Relaxed),
            invalidations: self.metrics.invalidations.load(Ordering::Relaxed),
            rebind_failures: self.metrics.rebind_failures.load(Ordering::Relaxed),
            prepared_hits: self.metrics.prepared_hits.load(Ordering::Relaxed),
            prepared_invalidations: self.metrics.prepared_invalidations.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (metrics are kept).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_core::{OptimizerMode, PhysicalPlan, RelOp};
    use relgo_pattern::PatternBuilder;

    fn dummy_plan() -> Arc<PhysicalPlan> {
        let mut b = PatternBuilder::new();
        b.vertex("v", relgo_common::LabelId(0));
        Arc::new(PhysicalPlan {
            pattern: b.build().unwrap(),
            root: RelOp::ScanTable {
                table: "t".to_string(),
                predicate: None,
            },
        })
    }

    fn key(n: u64) -> PlanKey {
        PlanKey {
            mode: OptimizerMode::RelGo,
            canon_fingerprint: n,
            shape: format!("shape-{n}"),
            slot_sig: "i".to_string(),
        }
    }

    #[test]
    fn hit_miss_and_params_roundtrip() {
        let cache = PlanCache::default();
        assert!(cache.lookup(&key(1)).is_none());
        cache.insert(key(1), dummy_plan(), vec![Value::Int(5)]);
        let (plan, params) = cache.lookup(&key(1)).expect("hit");
        assert_eq!(params, vec![Value::Int(5)]);
        assert!(matches!(plan.root, RelOp::ScanTable { .. }));
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        let cache = PlanCache::new(CacheConfig {
            shards: 1,
            capacity: 2,
        });
        cache.insert(key(1), dummy_plan(), vec![]);
        cache.insert(key(2), dummy_plan(), vec![]);
        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(3), dummy_plan(), vec![]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.metrics().evictions, 1);
        assert!(cache.lookup(&key(1)).is_some(), "recently used survives");
        assert!(cache.lookup(&key(2)).is_none(), "LRU evicted");
        assert!(cache.lookup(&key(3)).is_some());
    }

    #[test]
    fn invalidation_makes_entries_stale() {
        let cache = PlanCache::default();
        cache.insert(key(1), dummy_plan(), vec![]);
        assert!(cache.lookup(&key(1)).is_some());
        cache.invalidate_all();
        assert!(cache.lookup(&key(1)).is_none(), "stale after version bump");
        assert_eq!(cache.metrics().invalidations, 1);
        // Re-insert under the new version works.
        cache.insert(key(1), dummy_plan(), vec![]);
        assert!(cache.lookup(&key(1)).is_some());
    }

    #[test]
    fn concurrent_hits_from_many_threads() {
        let cache = Arc::new(PlanCache::new(CacheConfig {
            shards: 4,
            capacity: 64,
        }));
        for n in 0..8 {
            cache.insert(key(n), dummy_plan(), vec![Value::Int(n as i64)]);
        }
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for round in 0..100 {
                        let n = (t + round) % 8;
                        let (_, params) = cache.lookup(&key(n)).expect("hit");
                        assert_eq!(params, vec![Value::Int(n as i64)]);
                    }
                });
            }
        });
        let m = cache.metrics();
        assert_eq!(m.hits, 800);
        assert_eq!(m.misses, 0);
    }

    #[test]
    fn pinned_plans_survive_eviction_but_not_invalidation() {
        let cache = PlanCache::new(CacheConfig {
            shards: 1,
            capacity: 1,
        });
        cache.insert(key(1), dummy_plan(), vec![Value::Int(5)]);
        let (plan, params) = cache.lookup(&key(1)).expect("hit");
        let pin = cache.pin(plan, params);
        // Displace the entry: the pin still answers.
        cache.insert(key(2), dummy_plan(), vec![]);
        assert!(cache.lookup(&key(1)).is_none(), "entry evicted");
        assert!(cache.pin_is_current(&pin), "pin outlives eviction");
        assert_eq!(pin.params, vec![Value::Int(5)]);
        // A statistics bump makes the pin stale.
        cache.invalidate_all();
        assert!(!cache.pin_is_current(&pin));
        cache.note_prepared_invalidation();
        cache.note_prepared_hit();
        let m = cache.metrics();
        assert_eq!((m.prepared_hits, m.prepared_invalidations), (1, 1));
    }

    #[test]
    fn insert_at_superseded_version_is_born_stale() {
        let cache = PlanCache::default();
        // A caller snapshots the version, then a rebuild races past it.
        let observed = cache.stats_version();
        cache.invalidate_all();
        cache.insert_at(key(1), dummy_plan(), vec![], observed);
        assert!(
            cache.lookup(&key(1)).is_none(),
            "plan optimized against superseded statistics must not be served"
        );
        // A pin taken at the observed version is likewise already stale.
        let pin = cache.pin_at(dummy_plan(), vec![], observed);
        assert!(!cache.pin_is_current(&pin));
    }

    #[test]
    fn metrics_snapshot_delta() {
        let a = MetricsSnapshot {
            hits: 10,
            misses: 4,
            evictions: 1,
            invalidations: 0,
            rebind_failures: 0,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            hits: 25,
            misses: 5,
            evictions: 1,
            invalidations: 1,
            rebind_failures: 2,
            prepared_hits: 3,
            prepared_invalidations: 1,
        };
        let d = b.since(&a);
        assert_eq!(d.hits, 15);
        assert_eq!(d.misses, 1);
        assert_eq!(d.prepared_hits, 3);
        assert_eq!(d.prepared_invalidations, 1);
        assert!((d.hit_ratio() - 15.0 / 16.0).abs() < 1e-12);
    }
}
