//! Parameterized query templates for the plan-cache serving path.
//!
//! A [`QueryTemplate`] is a named generator: `instantiate(draw)` yields one
//! concrete [`SpjmQuery`] whose *structure* is fixed while its comparison
//! literals (person ids, dates, tags, keywords, country codes, years) vary
//! with `draw`. Every instance of one template therefore parameterizes to
//! the same plan-cache key — replaying a workload of template draws is the
//! cache's intended traffic shape.
//!
//! Parameter pools stay within what the `relgo-datagen` generators
//! guarantee to exist at any scale factor (≥ 20 persons, the 8 special
//! keywords, the fixed country-code list), so instances return plausible,
//! usually non-empty results.
//!
//! For the prepared-statement serving path, a template can also expose a
//! **binding generator**: `bindings(draw)` yields just the parameter-slot
//! values of `instantiate(draw)`, in slot order, without building (or
//! re-parameterizing) the query — what `PreparedStatement::execute` wants
//! on its hot path. Generators attached via [`QueryTemplate::with_bindings`]
//! must agree with `parameterize(instantiate(draw)).params`; the fallback
//! derives the bindings that way directly.

use crate::job_queries::{self, ImdbSchema, JobSpec};
use crate::snb_queries::{self, SnbSchema};
use relgo_common::{Result, Value};
use relgo_core::SpjmQuery;

/// A named query template: a fixed structure with draw-dependent literals.
pub struct QueryTemplate {
    name: String,
    make: Box<dyn Fn(u64) -> Result<SpjmQuery> + Send + Sync>,
    bind: Option<Box<dyn Fn(u64) -> Vec<Value> + Send + Sync>>,
}

impl std::fmt::Debug for QueryTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTemplate")
            .field("name", &self.name)
            .finish()
    }
}

impl QueryTemplate {
    /// Wrap a generator closure.
    pub fn new(
        name: impl Into<String>,
        make: impl Fn(u64) -> Result<SpjmQuery> + Send + Sync + 'static,
    ) -> QueryTemplate {
        QueryTemplate {
            name: name.into(),
            make: Box::new(make),
            bind: None,
        }
    }

    /// Attach an explicit binding generator: `bind(draw)` must equal
    /// `parameterize(instantiate(draw)).params` for every draw (the
    /// `binding_generators_match_parameterization` test enforces this).
    pub fn with_bindings(
        mut self,
        bind: impl Fn(u64) -> Vec<Value> + Send + Sync + 'static,
    ) -> QueryTemplate {
        self.bind = Some(Box::new(bind));
        self
    }

    /// The template's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Produce the instance for `draw`.
    pub fn instantiate(&self, draw: u64) -> Result<SpjmQuery> {
        (self.make)(draw)
    }

    /// The parameter-slot bindings of `instantiate(draw)`, in slot order.
    /// With an attached generator this never builds the query; otherwise it
    /// falls back to parameterizing the instance.
    pub fn bindings(&self, draw: u64) -> Result<Vec<Value>> {
        match &self.bind {
            Some(f) => Ok(f(draw)),
            None => Ok(relgo_core::parameterize(&self.instantiate(draw)?).params),
        }
    }
}

/// A person id the SNB generator guarantees to exist (≥ 20 persons at any
/// scale factor; low ids are hubs under the preferential skew).
fn person(draw: u64) -> i64 {
    (draw % 20) as i64
}

/// Templated SNB interactive queries: the id- and date-parameterized IC
/// variants the serving benchmarks replay.
pub fn snb_templates(schema: &SnbSchema) -> Vec<QueryTemplate> {
    let s = *schema;
    vec![
        QueryTemplate::new("IC1-2", move |d| snb_queries::ic1(&s, 2, person(d)))
            .with_bindings(|d| vec![Value::Int(person(d))]),
        QueryTemplate::new("IC2", move |d| {
            snb_queries::ic2(&s, person(d), 15_000 + (d % 4_000) as i64)
        })
        .with_bindings(|d| {
            vec![
                Value::Int(person(d)),
                Value::Date(15_000 + (d % 4_000) as i64),
            ]
        }),
        QueryTemplate::new("IC6-1", move |d| {
            snb_queries::ic6(&s, 1, person(d), &format!("tag_{}", d % 8))
        })
        .with_bindings(|d| {
            // The third slot is IC6's structural `is_post = true` literal.
            vec![
                Value::Int(person(d)),
                Value::str(format!("tag_{}", d % 8)),
                Value::Bool(true),
            ]
        }),
        QueryTemplate::new("IC7", move |d| snb_queries::ic7(&s, person(d)))
            .with_bindings(|d| vec![Value::Int(person(d))]),
        QueryTemplate::new("IC9-1", move |d| {
            snb_queries::ic9(&s, 1, person(d), 14_000 + (d % 6_000) as i64)
        })
        .with_bindings(|d| {
            vec![
                Value::Int(person(d)),
                Value::Date(14_000 + (d % 6_000) as i64),
            ]
        }),
    ]
}

const KW_POOL: [&str; 4] = ["sequel", "murder", "based-on-novel", "love"];
const COUNTRY_POOL: [&str; 4] = ["[us]", "[gb]", "[de]", "[fr]"];

/// Templated JOB-style queries: keyword/country/year parameterized star
/// joins (keyword and company-type literals live in *pattern* predicates,
/// exercising pattern-constraint rebinding).
pub fn job_templates(schema: &ImdbSchema) -> Vec<QueryTemplate> {
    let s = *schema;
    vec![
        QueryTemplate::new("JOB-kw-country", move |d| {
            job_queries::build_job(
                &s,
                &JobSpec {
                    with_company: true,
                    with_keyword: true,
                    kw: Some(KW_POOL[(d % 4) as usize]),
                    country: Some(COUNTRY_POOL[((d / 4) % 4) as usize]),
                    ..Default::default()
                },
            )
        })
        .with_bindings(|d| {
            // Selection slot (country) first, then the keyword-vertex
            // pattern predicate in canonical element order.
            vec![
                Value::str(COUNTRY_POOL[((d / 4) % 4) as usize]),
                Value::str(KW_POOL[(d % 4) as usize]),
            ]
        }),
        QueryTemplate::new("JOB-kw-year", move |d| {
            job_queries::build_job(
                &s,
                &JobSpec {
                    with_cast: true,
                    with_keyword: true,
                    kw: Some(KW_POOL[(d % 4) as usize]),
                    year_gt: Some(1950 + (d % 60) as i64),
                    ..Default::default()
                },
            )
        })
        .with_bindings(|d| {
            vec![
                Value::Int(1950 + (d % 60) as i64),
                Value::str(KW_POOL[(d % 4) as usize]),
            ]
        }),
        QueryTemplate::new("JOB-ctype", move |d| {
            job_queries::build_job(
                &s,
                &JobSpec {
                    with_company: true,
                    with_info: true,
                    ctype: Some((d % 4) as i64),
                    info: Some("info_1"),
                    ..Default::default()
                },
            )
        })
        .with_bindings(|d| {
            // Both slots live in edge predicates (canonical edge order:
            // movie_companies before movie_info); the info literal is
            // structural — constant across draws.
            vec![Value::Int((d % 4) as i64), Value::str("info_1")]
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_core::parameterize;
    use relgo_datagen::{generate_imdb, generate_snb, ImdbParams, SnbParams};
    use relgo_graph::GraphView;

    #[test]
    fn snb_instances_share_template_keys() {
        let (mut db, mapping) = generate_snb(&SnbParams { sf: 0.05, seed: 42 });
        let view = GraphView::build(&mut db, mapping).unwrap();
        let s = SnbSchema::resolve(view.schema()).unwrap();
        for t in snb_templates(&s) {
            let a = parameterize(&t.instantiate(0).unwrap());
            let b = parameterize(&t.instantiate(13).unwrap());
            assert_eq!(a.shape, b.shape, "{}", t.name());
            assert_eq!(a.canon_fingerprint, b.canon_fingerprint, "{}", t.name());
            assert!(!a.params.is_empty(), "{} has parameter slots", t.name());
        }
    }

    #[test]
    fn job_instances_share_template_keys() {
        let (mut db, mapping) = generate_imdb(&ImdbParams { sf: 0.1, seed: 7 });
        let view = GraphView::build(&mut db, mapping).unwrap();
        let s = ImdbSchema::resolve(view.schema()).unwrap();
        for t in job_templates(&s) {
            let a = parameterize(&t.instantiate(1).unwrap());
            let b = parameterize(&t.instantiate(9).unwrap());
            assert_eq!(a.shape, b.shape, "{}", t.name());
            assert!(!a.params.is_empty(), "{} has parameter slots", t.name());
        }
    }

    #[test]
    fn binding_generators_match_parameterization() {
        let (mut db, mapping) = generate_snb(&SnbParams { sf: 0.05, seed: 42 });
        let view = GraphView::build(&mut db, mapping).unwrap();
        let snb = SnbSchema::resolve(view.schema()).unwrap();
        let (mut db, mapping) = generate_imdb(&ImdbParams { sf: 0.1, seed: 7 });
        let view = GraphView::build(&mut db, mapping).unwrap();
        let imdb = ImdbSchema::resolve(view.schema()).unwrap();
        let all: Vec<QueryTemplate> = snb_templates(&snb)
            .into_iter()
            .chain(job_templates(&imdb))
            .collect();
        for t in &all {
            for draw in [0u64, 1, 3, 7, 13, 19, 37] {
                let derived = parameterize(&t.instantiate(draw).unwrap()).params;
                assert_eq!(
                    t.bindings(draw).unwrap(),
                    derived,
                    "{} draw {draw}: generator diverges from parameterize()",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn distinct_templates_have_distinct_shapes() {
        let (mut db, mapping) = generate_snb(&SnbParams { sf: 0.05, seed: 42 });
        let view = GraphView::build(&mut db, mapping).unwrap();
        let s = SnbSchema::resolve(view.schema()).unwrap();
        let shapes: Vec<String> = snb_templates(&s)
            .iter()
            .map(|t| {
                let pq = parameterize(&t.instantiate(0).unwrap());
                format!("{}#{}", pq.canon_fingerprint, pq.shape)
            })
            .collect();
        let mut dedup = shapes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), shapes.len(), "no two templates collide");
    }
}
