//! LDBC-SNB-like query workloads: IC variants, QR rule micro-benchmarks,
//! QC cyclic micro-benchmarks (paper §5.1).
//!
//! Following the paper, variable-length-path queries are split into
//! fixed-length variants suffixed `-l`. Query parameters (person names,
//! countries, tags, dates) are pinned to values the generator guarantees to
//! exist.

use crate::Workload;
use relgo_common::{LabelId, RelGoError, Result, Value};
use relgo_core::{SpjmBuilder, SpjmQuery};
use relgo_graph::GraphSchema;
use relgo_pattern::{MatchSemantics, PatternBuilder};
use relgo_storage::ops::AggFunc;
use relgo_storage::{BinaryOp, ScalarExpr};

/// Resolved label handles of the SNB-like graph.
#[derive(Debug, Clone, Copy)]
pub struct SnbSchema {
    /// `Person` vertex label.
    pub person: LabelId,
    /// `Message` vertex label.
    pub message: LabelId,
    /// `Forum` vertex label.
    pub forum: LabelId,
    /// `Tag` vertex label.
    pub tag: LabelId,
    /// `TagClass` vertex label.
    pub tagclass: LabelId,
    /// `Place` vertex label.
    pub place: LabelId,
    /// `Company` vertex label.
    pub company: LabelId,
    /// `Knows` edge label (Person → Person).
    pub knows: LabelId,
    /// `Likes` edge label (Person → Message).
    pub likes: LabelId,
    /// `HasCreator` edge label (Message → Person).
    pub has_creator: LabelId,
    /// `ReplyOf` edge label (Message → Message).
    pub reply_of: LabelId,
    /// `HasTag` edge label (Message → Tag).
    pub has_tag: LabelId,
    /// `HasMember` edge label (Forum → Person).
    pub has_member: LabelId,
    /// `ContainerOf` edge label (Forum → Message).
    pub container_of: LabelId,
    /// `MsgLocatedIn` edge label (Message → Place).
    pub msg_located_in: LabelId,
    /// `PersonLocatedIn` edge label (Person → Place).
    pub person_located_in: LabelId,
    /// `CompanyLocatedIn` edge label (Company → Place).
    pub company_located_in: LabelId,
    /// `WorksAt` edge label (Person → Company).
    pub works_at: LabelId,
    /// `TagHasType` edge label (Tag → TagClass).
    pub tag_has_type: LabelId,
}

/// Column indexes in the generator's tables (kept in one place).
pub mod cols {
    /// `Person.name`.
    pub const PERSON_NAME: usize = 1;
    /// `Person.creation_date`.
    pub const PERSON_DATE: usize = 2;
    /// `Message.content`.
    pub const MSG_CONTENT: usize = 1;
    /// `Message.creation_date`.
    pub const MSG_DATE: usize = 2;
    /// `Message.is_post`.
    pub const MSG_IS_POST: usize = 3;
    /// `Tag.name` / `TagClass.name` / `Place.name` / `Company.name`.
    pub const NAME: usize = 1;
    /// `Forum.title`.
    pub const FORUM_TITLE: usize = 1;
    /// `Likes.date` / `Knows.date`.
    pub const EDGE_DATE: usize = 3;
    /// `HasMember.join_date`.
    pub const MEMBER_DATE: usize = 3;
    /// `WorksAt.since`.
    pub const WORKS_SINCE: usize = 3;
}

impl SnbSchema {
    /// Resolve handles from the graph schema (panics never; errors if the
    /// mapping does not look like the SNB mapping).
    pub fn resolve(schema: &GraphSchema) -> Result<SnbSchema> {
        Ok(SnbSchema {
            person: schema.vertex_label_id("Person")?,
            message: schema.vertex_label_id("Message")?,
            forum: schema.vertex_label_id("Forum")?,
            tag: schema.vertex_label_id("Tag")?,
            tagclass: schema.vertex_label_id("TagClass")?,
            place: schema.vertex_label_id("Place")?,
            company: schema.vertex_label_id("Company")?,
            knows: schema.edge_label_id("Knows")?,
            likes: schema.edge_label_id("Likes")?,
            has_creator: schema.edge_label_id("HasCreator")?,
            reply_of: schema.edge_label_id("ReplyOf")?,
            has_tag: schema.edge_label_id("HasTag")?,
            has_member: schema.edge_label_id("HasMember")?,
            container_of: schema.edge_label_id("ContainerOf")?,
            msg_located_in: schema.edge_label_id("MsgLocatedIn")?,
            person_located_in: schema.edge_label_id("PersonLocatedIn")?,
            company_located_in: schema.edge_label_id("CompanyLocatedIn")?,
            works_at: schema.edge_label_id("WorksAt")?,
            tag_has_type: schema.edge_label_id("TagHasType")?,
        })
    }
}

/// Helper: a `knows^l` chain `p0 -> p1 -> … -> pl` inside a builder;
/// returns the vertex indices.
fn knows_chain(b: &mut PatternBuilder, s: &SnbSchema, l: usize) -> Result<Vec<usize>> {
    let mut vs = vec![b.vertex("p0", s.person)];
    for i in 1..=l {
        let v = b.vertex(&format!("p{i}"), s.person);
        b.edge(vs[i - 1], v, s.knows)?;
        vs.push(v);
    }
    Ok(vs)
}

/// IC1-l: persons at knows-distance `l` from the seed person (LDBC
/// parameterizes the IC queries by unique person id).
pub fn ic1(s: &SnbSchema, l: usize, person: i64) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let vs = knows_chain(&mut pb, s, l)?;
    let friend = *vs.last().ok_or_else(|| RelGoError::query("empty chain"))?;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(vs[0], 0, "p_id");
    let f_name = b.vertex_column(friend, cols::PERSON_NAME, "f_name");
    let f_date = b.vertex_column(friend, cols::PERSON_DATE, "f_date");
    b.select(ScalarExpr::col_eq(p_id, person));
    b.project(&[f_name, f_date]);
    Ok(b.build())
}

/// IC2: recent messages by friends of the named person.
pub fn ic2(s: &SnbSchema, person: i64, before: i64) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let p = pb.vertex("p", s.person);
    let f = pb.vertex("f", s.person);
    let m = pb.vertex("m", s.message);
    pb.edge(p, f, s.knows)?;
    pb.edge(m, f, s.has_creator)?;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(p, 0, "p_id");
    let f_name = b.vertex_column(f, cols::PERSON_NAME, "f_name");
    let m_content = b.vertex_column(m, cols::MSG_CONTENT, "m_content");
    let m_date = b.vertex_column(m, cols::MSG_DATE, "m_date");
    b.select(ScalarExpr::col_eq(p_id, person).and(ScalarExpr::col_cmp(
        m_date,
        BinaryOp::Le,
        Value::Date(before),
    )));
    b.project(&[f_name, m_content, m_date]);
    Ok(b.build())
}

/// IC3-l: messages by friends (distance `l`) located in the named country.
pub fn ic3(s: &SnbSchema, l: usize, person: i64, country: &str) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let vs = knows_chain(&mut pb, s, l)?;
    let f = *vs.last().expect("chain");
    let m = pb.vertex("m", s.message);
    let pl = pb.vertex("pl", s.place);
    pb.edge(m, f, s.has_creator)?;
    pb.edge(m, pl, s.msg_located_in)?;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(vs[0], 0, "p_id");
    let f_name = b.vertex_column(f, cols::PERSON_NAME, "f_name");
    let pl_name = b.vertex_column(pl, cols::NAME, "pl_name");
    let m_content = b.vertex_column(m, cols::MSG_CONTENT, "m_content");
    b.select(ScalarExpr::col_eq(p_id, person).and(ScalarExpr::col_eq(pl_name, country)));
    b.project(&[f_name, m_content]);
    Ok(b.build())
}

/// IC4: tags on recent posts by friends of the named person.
pub fn ic4(s: &SnbSchema, person: i64, from: i64, to: i64) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let p = pb.vertex("p", s.person);
    let f = pb.vertex("f", s.person);
    let m = pb.vertex("m", s.message);
    let t = pb.vertex("t", s.tag);
    pb.edge(p, f, s.knows)?;
    pb.edge(m, f, s.has_creator)?;
    pb.edge(m, t, s.has_tag)?;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(p, 0, "p_id");
    let is_post = b.vertex_column(m, cols::MSG_IS_POST, "is_post");
    let m_date = b.vertex_column(m, cols::MSG_DATE, "m_date");
    let t_name = b.vertex_column(t, cols::NAME, "t_name");
    b.select(
        ScalarExpr::col_eq(p_id, person)
            .and(ScalarExpr::col_eq(is_post, true))
            .and(ScalarExpr::col_cmp(m_date, BinaryOp::Ge, Value::Date(from)))
            .and(ScalarExpr::col_cmp(m_date, BinaryOp::Lt, Value::Date(to))),
    );
    b.project(&[t_name]);
    Ok(b.build())
}

/// IC5-l (cyclic): forums where friends (distance `l`) posted, joined after
/// a date — the friend/forum/post triangle.
pub fn ic5(s: &SnbSchema, l: usize, person: i64, joined_after: i64) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let vs = knows_chain(&mut pb, s, l)?;
    let f = *vs.last().expect("chain");
    let fo = pb.vertex("fo", s.forum);
    let po = pb.vertex("po", s.message);
    let e_member = pb.edge(fo, f, s.has_member)?;
    pb.edge(fo, po, s.container_of)?;
    pb.edge(po, f, s.has_creator)?;
    pb.edge_predicate(
        e_member,
        ScalarExpr::col_cmp(cols::MEMBER_DATE, BinaryOp::Gt, Value::Date(joined_after)),
    );
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(vs[0], 0, "p_id");
    let fo_title = b.vertex_column(fo, cols::FORUM_TITLE, "fo_title");
    b.select(ScalarExpr::col_eq(p_id, person));
    b.project(&[fo_title]);
    Ok(b.build())
}

/// IC6-l: posts by friends (distance `l`) with the named tag.
pub fn ic6(s: &SnbSchema, l: usize, person: i64, tag: &str) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let vs = knows_chain(&mut pb, s, l)?;
    let f = *vs.last().expect("chain");
    let m = pb.vertex("m", s.message);
    let t = pb.vertex("t", s.tag);
    pb.edge(m, f, s.has_creator)?;
    pb.edge(m, t, s.has_tag)?;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(vs[0], 0, "p_id");
    let is_post = b.vertex_column(m, cols::MSG_IS_POST, "is_post");
    let t_name = b.vertex_column(t, cols::NAME, "t_name");
    let m_content = b.vertex_column(m, cols::MSG_CONTENT, "m_content");
    b.select(
        ScalarExpr::col_eq(p_id, person)
            .and(ScalarExpr::col_eq(t_name, tag))
            .and(ScalarExpr::col_eq(is_post, true)),
    );
    b.project(&[m_content]);
    Ok(b.build())
}

/// IC7 (cyclic): who liked the named person's messages and knows them —
/// the person/message/liker triangle.
pub fn ic7(s: &SnbSchema, person: i64) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let p = pb.vertex("p", s.person);
    let m = pb.vertex("m", s.message);
    let liker = pb.vertex("liker", s.person);
    pb.edge(m, p, s.has_creator)?;
    let e_like = pb.edge(liker, m, s.likes)?;
    pb.edge(liker, p, s.knows)?;
    let _ = e_like;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(p, 0, "p_id");
    let liker_name = b.vertex_column(liker, cols::PERSON_NAME, "liker_name");
    let like_date = b.edge_column(1, cols::EDGE_DATE, "like_date");
    b.select(ScalarExpr::col_eq(p_id, person));
    b.project(&[liker_name, like_date]);
    Ok(b.build())
}

/// IC8: repliers to the named person's messages.
pub fn ic8(s: &SnbSchema, person: i64) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let p = pb.vertex("p", s.person);
    let m = pb.vertex("m", s.message);
    let c = pb.vertex("c", s.message);
    let author = pb.vertex("author", s.person);
    pb.edge(m, p, s.has_creator)?;
    pb.edge(c, m, s.reply_of)?;
    pb.edge(c, author, s.has_creator)?;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(p, 0, "p_id");
    let author_name = b.vertex_column(author, cols::PERSON_NAME, "author_name");
    let c_date = b.vertex_column(c, cols::MSG_DATE, "c_date");
    let c_content = b.vertex_column(c, cols::MSG_CONTENT, "c_content");
    b.select(ScalarExpr::col_eq(p_id, person));
    b.project(&[author_name, c_date, c_content]);
    Ok(b.build())
}

/// IC9-l: messages by friends (distance `l`) created before a date.
pub fn ic9(s: &SnbSchema, l: usize, person: i64, before: i64) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let vs = knows_chain(&mut pb, s, l)?;
    let f = *vs.last().expect("chain");
    let m = pb.vertex("m", s.message);
    pb.edge(m, f, s.has_creator)?;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(vs[0], 0, "p_id");
    let f_name = b.vertex_column(f, cols::PERSON_NAME, "f_name");
    let m_date = b.vertex_column(m, cols::MSG_DATE, "m_date");
    let m_content = b.vertex_column(m, cols::MSG_CONTENT, "m_content");
    b.select(ScalarExpr::col_eq(p_id, person).and(ScalarExpr::col_cmp(
        m_date,
        BinaryOp::Lt,
        Value::Date(before),
    )));
    b.project(&[f_name, m_content, m_date]);
    Ok(b.build())
}

/// IC11-l: friends (distance `l`) working at companies in the named country.
pub fn ic11(s: &SnbSchema, l: usize, person: i64, country: &str) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let vs = knows_chain(&mut pb, s, l)?;
    let f = *vs.last().expect("chain");
    let co = pb.vertex("co", s.company);
    let pl = pb.vertex("pl", s.place);
    let e_works = pb.edge(f, co, s.works_at)?;
    pb.edge(co, pl, s.company_located_in)?;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(vs[0], 0, "p_id");
    let f_name = b.vertex_column(f, cols::PERSON_NAME, "f_name");
    let co_name = b.vertex_column(co, cols::NAME, "co_name");
    let since = b.edge_column(e_works, cols::WORKS_SINCE, "since");
    let pl_name = b.vertex_column(pl, cols::NAME, "pl_name");
    b.select(ScalarExpr::col_eq(p_id, person).and(ScalarExpr::col_eq(pl_name, country)));
    b.project(&[f_name, co_name, since]);
    Ok(b.build())
}

/// IC12: reply authors among friends, where the reply's parent post has a
/// tag of the named class.
pub fn ic12(s: &SnbSchema, person: i64, class: &str) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let p = pb.vertex("p", s.person);
    let f = pb.vertex("f", s.person);
    let c = pb.vertex("c", s.message);
    let po = pb.vertex("po", s.message);
    let t = pb.vertex("t", s.tag);
    let tc = pb.vertex("tc", s.tagclass);
    pb.edge(p, f, s.knows)?;
    pb.edge(c, f, s.has_creator)?;
    pb.edge(c, po, s.reply_of)?;
    pb.edge(po, t, s.has_tag)?;
    pb.edge(t, tc, s.tag_has_type)?;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p_id = b.vertex_column(p, 0, "p_id");
    let f_name = b.vertex_column(f, cols::PERSON_NAME, "f_name");
    let t_name = b.vertex_column(t, cols::NAME, "t_name");
    let tc_name = b.vertex_column(tc, cols::NAME, "tc_name");
    b.select(ScalarExpr::col_eq(p_id, person).and(ScalarExpr::col_eq(tc_name, class)));
    b.project(&[f_name, t_name]);
    Ok(b.build())
}

/// The IC workload of the paper's figures: the 18 fixed-length variants
/// `1-1,1-2,1-3, 2, 3-1,3-2, 4, 5-1,5-2, 6-1,6-2, 7, 8, 9-1,9-2, 11-1,11-2,
/// 12`.
pub fn ldbc_interactive(s: &SnbSchema) -> Result<Vec<Workload>> {
    // Low person ids are hubs under the generator's preferential skew —
    // like LDBC's official parameter selection, the seed has activity.
    let person = 5i64;
    Ok(vec![
        Workload::new("IC1-1", ic1(s, 1, person)?, false),
        Workload::new("IC1-2", ic1(s, 2, person)?, false),
        Workload::new("IC1-3", ic1(s, 3, person)?, false),
        Workload::new("IC2", ic2(s, person, 18500)?, false),
        Workload::new("IC3-1", ic3(s, 1, person, "country_3")?, false),
        Workload::new("IC3-2", ic3(s, 2, person, "country_3")?, false),
        Workload::new("IC4", ic4(s, person, 15500, 18500)?, false),
        Workload::new("IC5-1", ic5(s, 1, person, 14000)?, true),
        Workload::new("IC5-2", ic5(s, 2, person, 14000)?, true),
        Workload::new("IC6-1", ic6(s, 1, person, "tag_3")?, false),
        Workload::new("IC6-2", ic6(s, 2, person, "tag_3")?, false),
        Workload::new("IC7", ic7(s, person)?, true),
        Workload::new("IC8", ic8(s, person)?, false),
        Workload::new("IC9-1", ic9(s, 1, person, 17000)?, false),
        Workload::new("IC9-2", ic9(s, 2, person, 17000)?, false),
        Workload::new("IC11-1", ic11(s, 1, person, "country_2")?, false),
        Workload::new("IC11-2", ic11(s, 2, person, "country_2")?, false),
        Workload::new("IC12", ic12(s, person, "class_1")?, false),
    ])
}

/// QR1/QR2 exercise `FilterIntoMatchRule` (selective predicates phrased as
/// post-match selections); QR3/QR4 exercise `TrimAndFuseRule` in isolation
/// (no selective predicates — the only difference the rule makes is
/// trimming unused columns and fusing `EXPAND_EDGE`+`GET_VERTEX`).
pub fn qr_queries(s: &SnbSchema) -> Result<Vec<Workload>> {
    // QR1: two-hop friends of a seed person; the id filter is written as a
    // post-match selection for FilterIntoMatchRule to push down.
    let qr1 = ic1(s, 2, 11)?;
    // QR2: tags on the messages a seed person likes; same pushdown story
    // through a two-edge pattern.
    let qr2 = {
        let mut pb = PatternBuilder::new();
        let p = pb.vertex("p", s.person);
        let m = pb.vertex("m", s.message);
        let t = pb.vertex("t", s.tag);
        pb.edge(p, m, s.likes)?;
        pb.edge(m, t, s.has_tag)?;
        let pattern = pb.build()?;
        let mut b = SpjmBuilder::new(pattern);
        let p_id = b.vertex_column(p, 0, "p_id");
        let t_name = b.vertex_column(t, cols::NAME, "t_name");
        b.select(ScalarExpr::col_eq(p_id, 11i64));
        b.project(&[t_name]);
        b.build()
    };
    // QR3: three-hop knows paths projecting only the endpoint name — every
    // edge column is trimmable and the expands fuse; no predicates, so the
    // RelGo/RelGoNoRule gap isolates TrimAndFuseRule.
    let qr3 = {
        let mut pb = PatternBuilder::new();
        let vs = knows_chain(&mut pb, s, 3)?;
        let pattern = pb.build()?;
        let mut b = SpjmBuilder::new(pattern);
        // Project edge ids too — then never use them (the field trimmer's
        // "projected in SCAN_GRAPH_TABLE but unused" case).
        let _e0 = b.edge_id(0, "k0_id");
        let _e1 = b.edge_id(1, "k1_id");
        let _e2 = b.edge_id(2, "k2_id");
        let f_name = b.vertex_column(vs[3], cols::PERSON_NAME, "f_name");
        b.project(&[f_name]);
        b.build()
    };
    // QR4: likes → tag chain projecting only the tag name; unfiltered, so
    // again only the trim/fuse differs.
    let qr4 = {
        let mut pb = PatternBuilder::new();
        let p = pb.vertex("p", s.person);
        let m = pb.vertex("m", s.message);
        let t = pb.vertex("t", s.tag);
        pb.edge(p, m, s.likes)?;
        pb.edge(m, t, s.has_tag)?;
        let pattern = pb.build()?;
        let mut b = SpjmBuilder::new(pattern);
        let _like_id = b.edge_id(0, "like_id");
        let _tag_edge_id = b.edge_id(1, "ht_id");
        let t_name = b.vertex_column(t, cols::NAME, "t_name");
        b.project(&[t_name]);
        b.build()
    };
    Ok(vec![
        Workload::new("QR1", qr1, false),
        Workload::new("QR2", qr2, false),
        Workload::new("QR3", qr3, false),
        Workload::new("QR4", qr4, false),
    ])
}

/// QC1 triangle, QC2 square, QC3 4-clique over `Knows`, counted with
/// distinct-vertex semantics (the paper's cyclic micro-benchmarks).
pub fn qc_queries(s: &SnbSchema) -> Result<Vec<Workload>> {
    let triangle = {
        let mut pb = PatternBuilder::new();
        let a = pb.vertex("a", s.person);
        let b_ = pb.vertex("b", s.person);
        let c = pb.vertex("c", s.person);
        pb.edge(a, b_, s.knows)?;
        pb.edge(b_, c, s.knows)?;
        pb.edge(a, c, s.knows)?;
        pb.semantics(MatchSemantics::DistinctVertices);
        let pattern = pb.build()?;
        let mut b = SpjmBuilder::new(pattern);
        let a_id = b.vertex_id(a, "a_id");
        b.aggregate(AggFunc::Count, a_id);
        b.build()
    };
    let square = {
        let mut pb = PatternBuilder::new();
        let a = pb.vertex("a", s.person);
        let b_ = pb.vertex("b", s.person);
        let c = pb.vertex("c", s.person);
        let d = pb.vertex("d", s.person);
        pb.edge(a, b_, s.knows)?;
        pb.edge(b_, c, s.knows)?;
        pb.edge(c, d, s.knows)?;
        pb.edge(d, a, s.knows)?;
        pb.semantics(MatchSemantics::DistinctVertices);
        let pattern = pb.build()?;
        let mut b = SpjmBuilder::new(pattern);
        let a_id = b.vertex_id(a, "a_id");
        b.aggregate(AggFunc::Count, a_id);
        b.build()
    };
    let clique4 = {
        let mut pb = PatternBuilder::new();
        let a = pb.vertex("a", s.person);
        let b_ = pb.vertex("b", s.person);
        let c = pb.vertex("c", s.person);
        let d = pb.vertex("d", s.person);
        pb.edge(a, b_, s.knows)?;
        pb.edge(a, c, s.knows)?;
        pb.edge(a, d, s.knows)?;
        pb.edge(b_, c, s.knows)?;
        pb.edge(b_, d, s.knows)?;
        pb.edge(c, d, s.knows)?;
        pb.semantics(MatchSemantics::DistinctVertices);
        let pattern = pb.build()?;
        let mut b = SpjmBuilder::new(pattern);
        let a_id = b.vertex_id(a, "a_id");
        b.aggregate(AggFunc::Count, a_id);
        b.build()
    };
    Ok(vec![
        Workload::new("QC1", triangle, true),
        Workload::new("QC2", square, true),
        Workload::new("QC3", clique4, true),
    ])
}

/// The paper's Fig. 1 running example: a hybrid SPJM query — the graph
/// component matches the likes/knows triangle (with `p1`'s location), and
/// the relational component joins the `Place` table to fetch the place name.
///
/// In the paper, `Person.place_id` is a plain column; our generator stores
/// location as the `PersonLocatedIn` edge, so the pattern includes the
/// place vertex and the relational join goes through its key — the same
/// graph-plus-relational-join shape.
pub fn fig1_example(s: &SnbSchema, name: &str) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let p1 = pb.vertex("p1", s.person);
    let p2 = pb.vertex("p2", s.person);
    let m = pb.vertex("m", s.message);
    let pl = pb.vertex("pl", s.place);
    pb.edge(p1, m, s.likes)?;
    pb.edge(p2, m, s.likes)?;
    pb.edge(p1, p2, s.knows)?;
    pb.edge(p1, pl, s.person_located_in)?;
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let p1_name = b.vertex_column(p1, cols::PERSON_NAME, "p1_name");
    let p2_name = b.vertex_column(p2, cols::PERSON_NAME, "p2_name");
    let pl_id = b.vertex_column(pl, 0, "pl_id");
    b.table("Place");
    // Global schema: 3 graph columns, then Place(id, name) at 3..5.
    b.join(pl_id, 3);
    b.select(ScalarExpr::col_eq(p1_name, name));
    b.project(&[p2_name, 4]);
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_datagen::{generate_snb, SnbParams};
    use relgo_graph::GraphView;

    fn schema() -> (SnbSchema, GraphView) {
        let (mut db, mapping) = generate_snb(&SnbParams { sf: 0.05, seed: 42 });
        let view = GraphView::build(&mut db, mapping).unwrap();
        let s = SnbSchema::resolve(view.schema()).unwrap();
        (s, view)
    }

    #[test]
    fn all_ic_queries_build_and_validate_structurally() {
        let (s, _) = schema();
        let ws = ldbc_interactive(&s).unwrap();
        assert_eq!(ws.len(), 18);
        for w in &ws {
            assert!(w.query.pattern.is_connected(), "{}", w.name);
            assert!(!w.query.columns.is_empty(), "{}", w.name);
        }
        // Cyclic markers on IC5 and IC7.
        let cyclic: Vec<&str> = ws
            .iter()
            .filter(|w| w.cyclic)
            .map(|w| w.name.as_str())
            .collect();
        assert_eq!(cyclic, vec!["IC5-1", "IC5-2", "IC7"]);
    }

    #[test]
    fn qr_and_qc_build() {
        let (s, _) = schema();
        assert_eq!(qr_queries(&s).unwrap().len(), 4);
        let qc = qc_queries(&s).unwrap();
        assert_eq!(qc.len(), 3);
        for w in &qc {
            assert_eq!(
                w.query.pattern.semantics(),
                MatchSemantics::DistinctVertices,
                "{}",
                w.name
            );
            assert!(!w.query.aggregates.is_empty());
        }
        assert_eq!(qc[2].query.pattern.edge_count(), 6, "4-clique");
    }

    #[test]
    fn fig1_is_hybrid() {
        let (s, _) = schema();
        let q = fig1_example(&s, "Tom").unwrap();
        assert_eq!(q.tables, vec!["Place".to_string()]);
        assert_eq!(q.join_on, vec![(2, 3)]);
        assert!(q.selection.is_some());
    }
}
