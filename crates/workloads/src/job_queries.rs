//! JOB-style join-order workload over the IMDB-like schema (paper §5.1).
//!
//! Thirty-three acyclic queries shaped like the Join Order Benchmark's "a"
//! variants: star patterns around `title` with 2–4 link-table legs, skewed
//! correlated predicates (keywords, country codes, name prefixes,
//! production years, company types, info strings) and `MIN` aggregates.

use crate::Workload;
use relgo_common::{LabelId, Result, Value};
use relgo_core::{SpjmBuilder, SpjmQuery};
use relgo_graph::GraphSchema;
use relgo_pattern::PatternBuilder;
use relgo_storage::ops::AggFunc;
use relgo_storage::{BinaryOp, ScalarExpr};

/// Resolved label handles of the IMDB-like graph.
#[derive(Debug, Clone, Copy)]
pub struct ImdbSchema {
    /// `title` vertex label.
    pub title: LabelId,
    /// `name` vertex label.
    pub name: LabelId,
    /// `company_name` vertex label.
    pub company_name: LabelId,
    /// `keyword` vertex label.
    pub keyword: LabelId,
    /// `info_type` vertex label.
    pub info_type: LabelId,
    /// `cast_info` edge (name → title).
    pub cast_info: LabelId,
    /// `movie_companies` edge (company_name → title).
    pub movie_companies: LabelId,
    /// `movie_keyword` edge (keyword → title).
    pub movie_keyword: LabelId,
    /// `movie_info` edge (info_type → title).
    pub movie_info: LabelId,
}

impl ImdbSchema {
    /// Resolve from the graph schema.
    pub fn resolve(schema: &GraphSchema) -> Result<ImdbSchema> {
        Ok(ImdbSchema {
            title: schema.vertex_label_id("title")?,
            name: schema.vertex_label_id("name")?,
            company_name: schema.vertex_label_id("company_name")?,
            keyword: schema.vertex_label_id("keyword")?,
            info_type: schema.vertex_label_id("info_type")?,
            cast_info: schema.edge_label_id("cast_info")?,
            movie_companies: schema.edge_label_id("movie_companies")?,
            movie_keyword: schema.edge_label_id("movie_keyword")?,
            movie_info: schema.edge_label_id("movie_info")?,
        })
    }
}

/// Column indexes in the IMDB-like tables.
pub mod cols {
    /// `title.title`.
    pub const TITLE: usize = 1;
    /// `title.production_year`.
    pub const YEAR: usize = 2;
    /// `name.name`.
    pub const NAME: usize = 1;
    /// `company_name.country_code`.
    pub const COUNTRY: usize = 2;
    /// `keyword.keyword`.
    pub const KEYWORD: usize = 1;
    /// `movie_companies.company_type_id`.
    pub const MC_CTYPE: usize = 3;
    /// `movie_info.info`.
    pub const MI_INFO: usize = 3;
}

/// Declarative description of one JOB-style query.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobSpec {
    /// Include the `cast_info` leg (actor).
    pub with_cast: bool,
    /// Include the `movie_companies` leg (studio).
    pub with_company: bool,
    /// Include the `movie_keyword` leg.
    pub with_keyword: bool,
    /// Include the `movie_info` leg.
    pub with_info: bool,
    /// `keyword.keyword = …`.
    pub kw: Option<&'static str>,
    /// `company_name.country_code = …`.
    pub country: Option<&'static str>,
    /// `name.name STARTS WITH …`.
    pub name_prefix: Option<&'static str>,
    /// `title.production_year > …`.
    pub year_gt: Option<i64>,
    /// `movie_companies.company_type_id = …` (edge predicate).
    pub ctype: Option<i64>,
    /// `movie_info.info = …` (edge predicate).
    pub info: Option<&'static str>,
}

/// Build one query from a spec.
pub fn build_job(s: &ImdbSchema, spec: &JobSpec) -> Result<SpjmQuery> {
    let mut pb = PatternBuilder::new();
    let t = pb.vertex("t", s.title);
    let mut n = None;
    let mut cn = None;
    if spec.with_cast {
        let v = pb.vertex("n", s.name);
        pb.edge(v, t, s.cast_info)?;
        n = Some(v);
    }
    if spec.with_company {
        let v = pb.vertex("cn", s.company_name);
        let e = pb.edge(v, t, s.movie_companies)?;
        if let Some(ct) = spec.ctype {
            pb.edge_predicate(e, ScalarExpr::col_eq(cols::MC_CTYPE, ct));
        }
        cn = Some(v);
    }
    if spec.with_keyword {
        let v = pb.vertex("k", s.keyword);
        pb.edge(v, t, s.movie_keyword)?;
        if let Some(kw) = spec.kw {
            pb.vertex_predicate(v, ScalarExpr::col_eq(cols::KEYWORD, kw));
        }
    }
    if spec.with_info {
        let v = pb.vertex("it", s.info_type);
        let e = pb.edge(v, t, s.movie_info)?;
        if let Some(info) = spec.info {
            pb.edge_predicate(e, ScalarExpr::col_eq(cols::MI_INFO, info));
        }
    }
    let pattern = pb.build()?;
    let mut b = SpjmBuilder::new(pattern);
    let t_title = b.vertex_column(t, cols::TITLE, "t_title");
    let t_year = b.vertex_column(t, cols::YEAR, "t_year");
    let mut aggs = vec![t_title];
    if let Some(nv) = n {
        let n_name = b.vertex_column(nv, cols::NAME, "n_name");
        aggs.push(n_name);
        if let Some(prefix) = spec.name_prefix {
            b.select(ScalarExpr::StartsWith(
                Box::new(ScalarExpr::Col(n_name)),
                prefix.to_string(),
            ));
        }
    }
    if let Some(cv) = cn {
        let country_col = b.vertex_column(cv, cols::COUNTRY, "cn_country");
        if let Some(cc) = spec.country {
            b.select(ScalarExpr::col_eq(country_col, cc));
        }
    }
    if let Some(y) = spec.year_gt {
        b.select(ScalarExpr::col_cmp(t_year, BinaryOp::Gt, Value::Int(y)));
    }
    for a in aggs {
        b.aggregate(AggFunc::Min, a);
    }
    Ok(b.build())
}

/// The 33 JOB-style queries. `JOB17` reproduces the paper's Fig. 12 case
/// study (`character-name-in-title`, `[us]` studios, names starting with
/// "B").
pub fn job_specs() -> Vec<JobSpec> {
    let kw = |k| Some(k);
    vec![
        // 1–4: keyword + company combos (Fig 7b's subset).
        JobSpec {
            with_company: true,
            with_keyword: true,
            kw: kw("sequel"),
            country: Some("[de]"),
            ..Default::default()
        },
        JobSpec {
            with_company: true,
            with_keyword: true,
            kw: kw("murder"),
            ctype: Some(0),
            ..Default::default()
        },
        JobSpec {
            with_keyword: true,
            with_info: true,
            kw: kw("based-on-novel"),
            info: Some("info_1"),
            ..Default::default()
        },
        JobSpec {
            with_company: true,
            with_info: true,
            country: Some("[gb]"),
            info: Some("info_2"),
            ..Default::default()
        },
        // 5–10: cast-centric with prefixes and years.
        JobSpec {
            with_cast: true,
            with_keyword: true,
            kw: kw("love"),
            name_prefix: Some("A"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_company: true,
            country: Some("[us]"),
            year_gt: Some(2000),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_info: true,
            info: Some("info_3"),
            name_prefix: Some("C"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_keyword: true,
            with_company: true,
            kw: kw("revenge"),
            country: Some("[fr]"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_keyword: true,
            kw: kw("independent-film"),
            year_gt: Some(1990),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_company: true,
            ctype: Some(1),
            name_prefix: Some("B"),
            ..Default::default()
        },
        // 11–16: three-leg combinations.
        JobSpec {
            with_company: true,
            with_keyword: true,
            with_info: true,
            kw: kw("sequel"),
            info: Some("info_5"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_company: true,
            with_info: true,
            country: Some("[it]"),
            info: Some("info_7"),
            ..Default::default()
        },
        JobSpec {
            with_company: true,
            with_keyword: true,
            kw: kw("female-nudity"),
            country: Some("[us]"),
            ctype: Some(2),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_keyword: true,
            with_info: true,
            kw: kw("murder"),
            info: Some("info_11"),
            ..Default::default()
        },
        JobSpec {
            with_company: true,
            with_info: true,
            country: Some("[jp]"),
            year_gt: Some(2005),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_keyword: true,
            kw: kw("character-name-in-title"),
            name_prefix: Some("D"),
            ..Default::default()
        },
        // 17: the Fig. 12 case study.
        JobSpec {
            with_cast: true,
            with_company: true,
            with_keyword: true,
            kw: kw("character-name-in-title"),
            country: Some("[us]"),
            name_prefix: Some("B"),
            ..Default::default()
        },
        // 18–25: four-leg stars.
        JobSpec {
            with_cast: true,
            with_company: true,
            with_keyword: true,
            with_info: true,
            kw: kw("sequel"),
            country: Some("[us]"),
            info: Some("info_13"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_company: true,
            with_keyword: true,
            kw: kw("love"),
            ctype: Some(0),
            year_gt: Some(1995),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_keyword: true,
            with_info: true,
            kw: kw("revenge"),
            info: Some("info_17"),
            name_prefix: Some("E"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_company: true,
            with_info: true,
            country: Some("[ca]"),
            info: Some("info_19"),
            ..Default::default()
        },
        JobSpec {
            with_company: true,
            with_keyword: true,
            with_info: true,
            kw: kw("based-on-novel"),
            country: Some("[gb]"),
            info: Some("info_23"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_company: true,
            with_keyword: true,
            with_info: true,
            kw: kw("murder"),
            country: Some("[us]"),
            info: Some("info_29"),
            name_prefix: Some("F"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_company: true,
            country: Some("[es]"),
            name_prefix: Some("G"),
            ..Default::default()
        },
        JobSpec {
            with_keyword: true,
            with_info: true,
            kw: kw("independent-film"),
            info: Some("info_31"),
            year_gt: Some(1985),
            ..Default::default()
        },
        // 26–33: selectivity extremes.
        JobSpec {
            with_cast: true,
            with_keyword: true,
            kw: kw("character-name-in-title"),
            year_gt: Some(2010),
            ..Default::default()
        },
        JobSpec {
            with_company: true,
            with_keyword: true,
            kw: kw("sequel"),
            country: Some("[se]"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_company: true,
            with_keyword: true,
            kw: kw("love"),
            country: Some("[dk]"),
            name_prefix: Some("H"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_info: true,
            info: Some("info_37"),
            year_gt: Some(1980),
            ..Default::default()
        },
        JobSpec {
            with_company: true,
            with_keyword: true,
            with_info: true,
            kw: kw("revenge"),
            ctype: Some(3),
            info: Some("info_2"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_company: true,
            with_keyword: true,
            kw: kw("based-on-novel"),
            country: Some("[au]"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_keyword: true,
            with_company: true,
            with_info: true,
            kw: kw("female-nudity"),
            country: Some("[us]"),
            ctype: Some(0),
            info: Some("info_3"),
            ..Default::default()
        },
        JobSpec {
            with_cast: true,
            with_company: true,
            with_keyword: true,
            with_info: true,
            kw: kw("character-name-in-title"),
            country: Some("[gb]"),
            info: Some("info_5"),
            name_prefix: Some("B"),
            year_gt: Some(1975),
            ..Default::default()
        },
    ]
}

/// All 33 workloads, named `JOB1..JOB33`.
pub fn job_queries(s: &ImdbSchema) -> Result<Vec<Workload>> {
    job_specs()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            Ok(Workload::new(
                format!("JOB{}", i + 1),
                build_job(s, spec)?,
                false,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_datagen::{generate_imdb, ImdbParams};
    use relgo_graph::GraphView;

    fn schema() -> ImdbSchema {
        let (mut db, mapping) = generate_imdb(&ImdbParams { sf: 0.1, seed: 1 });
        let view = GraphView::build(&mut db, mapping).unwrap();
        ImdbSchema::resolve(view.schema()).unwrap()
    }

    #[test]
    fn thirty_three_queries_build() {
        let s = schema();
        let ws = job_queries(&s).unwrap();
        assert_eq!(ws.len(), 33);
        for w in &ws {
            assert!(w.query.pattern.is_connected(), "{}", w.name);
            assert!(!w.query.aggregates.is_empty(), "{}", w.name);
            assert!(!w.cyclic, "JOB has no cyclic queries");
        }
    }

    #[test]
    fn job17_matches_fig12_shape() {
        let s = schema();
        let specs = job_specs();
        let j17 = &specs[16];
        assert!(j17.with_cast && j17.with_company && j17.with_keyword);
        assert_eq!(j17.kw, Some("character-name-in-title"));
        assert_eq!(j17.country, Some("[us]"));
        assert_eq!(j17.name_prefix, Some("B"));
        let q = build_job(&s, j17).unwrap();
        // Pattern: t + n + cn + k = 4 vertices, 3 edges.
        assert_eq!(q.pattern.vertex_count(), 4);
        assert_eq!(q.pattern.edge_count(), 3);
    }

    #[test]
    fn specs_are_distinct() {
        let specs = job_specs();
        for (i, a) in specs.iter().enumerate() {
            for (j, b) in specs.iter().enumerate() {
                if i < j {
                    assert_ne!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "JOB{} vs JOB{}",
                        i + 1,
                        j + 1
                    );
                }
            }
        }
    }

    #[test]
    fn leg_counts_vary() {
        let specs = job_specs();
        let edge_counts: Vec<usize> = specs
            .iter()
            .map(|s| {
                [s.with_cast, s.with_company, s.with_keyword, s.with_info]
                    .iter()
                    .filter(|&&x| x)
                    .count()
            })
            .collect();
        assert!(edge_counts.contains(&2));
        assert!(edge_counts.contains(&3));
        assert!(edge_counts.contains(&4));
    }
}
