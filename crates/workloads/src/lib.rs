//! # relgo-workloads
//!
//! The benchmark query workloads of the paper's evaluation (§5.1), as SPJM
//! ASTs over the synthetic datasets of `relgo-datagen`:
//!
//! * [`snb_queries`] — the LDBC Interactive Complex subset
//!   `IC1,…,9,11,12` with the paper's fixed-length-path `-l` variants, the
//!   rule micro-benchmarks `QR1..QR4`, and the cyclic micro-benchmarks
//!   `QC1..QC3` (triangle, square, 4-clique);
//! * [`job_queries`] — 33 JOB-style join-order queries over the IMDB-like
//!   schema (all acyclic, star-shaped around `title`, with skewed
//!   predicates and `MIN` aggregates like the originals);
//! * [`templates`] — parameterized query templates (fixed structure,
//!   draw-dependent literals) replayed against the plan cache;
//! * [`Workload`] — a named query with metadata used by the harness.

pub mod dynamic;
pub mod job_queries;
pub mod snb_queries;
pub mod templates;

use relgo_core::SpjmQuery;

/// A named benchmark query.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (`IC5-1`, `QC3`, `JOB17`, …).
    pub name: String,
    /// The query.
    pub query: SpjmQuery,
    /// Whether the pattern contains a cycle (drives per-figure grouping).
    pub cyclic: bool,
}

impl Workload {
    /// Construct a workload entry.
    pub fn new(name: impl Into<String>, query: SpjmQuery, cyclic: bool) -> Self {
        Workload {
            name: name.into(),
            query,
            cyclic,
        }
    }
}
