//! LDBC-SNB-like social network generator.
//!
//! Entities: `Place`, `TagClass`, `Tag`, `Company`, `Person`, `Forum`,
//! `Message`. Relationships (edge tables): `Knows`, `Likes`, `HasCreator`,
//! `ReplyOf`, `HasTag`, `HasMember`, `ContainerOf`, `MsgLocatedIn`,
//! `PersonLocatedIn`, `CompanyLocatedIn`, `WorksAt`, `TagHasType`.
//!
//! Shapes that matter for the experiments are reproduced: `Knows` is
//! power-law and stored in both directions (as LDBC does), `Likes` is
//! skewed, every message has exactly one creator and location, posts live
//! in forums, and attribute values (names, dates, countries) are drawn from
//! small pools so equality predicates have realistic selectivities.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relgo_common::Schema;
use relgo_common::{DataType, Value};
use relgo_graph::RGMapping;
use relgo_storage::{Database, TableBuilder};

/// Scale parameters of the SNB-like generator.
#[derive(Debug, Clone, Copy)]
pub struct SnbParams {
    /// Scale factor: persons = 1000 × sf, messages = 8 × persons, …
    pub sf: f64,
    /// RNG seed (all tables derive from it deterministically).
    pub seed: u64,
}

impl Default for SnbParams {
    fn default() -> Self {
        SnbParams { sf: 0.1, seed: 42 }
    }
}

/// First-name pool (size 40 → `name = X` keeps ~2.5% of persons).
const FIRST_NAMES: [&str; 40] = [
    "Jan", "Tom", "Bob", "Ada", "Eve", "Max", "Ida", "Leo", "Mia", "Kai", "Uma", "Rex", "Zoe",
    "Ben", "Amy", "Gus", "Ivy", "Sam", "Lia", "Ned", "Ola", "Pia", "Quy", "Ron", "Sue", "Tim",
    "Ula", "Vic", "Wes", "Xia", "Yan", "Zed", "Abe", "Bea", "Cal", "Dot", "Eli", "Fay", "Gil",
    "Hal",
];

const COUNTRIES: usize = 30;
const TAG_CLASSES: usize = 8;
const TAGS: usize = 80;
const COMPANIES: usize = 60;

fn days(rng: &mut StdRng, lo: i64, hi: i64) -> i64 {
    rng.gen_range(lo..hi)
}

/// Skewed partner sampling: quadratic bias toward low ids (a cheap
/// power-law stand-in that concentrates degree on "old" entities).
fn skewed(rng: &mut StdRng, n: usize) -> usize {
    let x: f64 = rng.gen::<f64>();
    ((x * x) * n as f64) as usize % n.max(1)
}

/// Generate the database and its RGMapping.
pub fn generate_snb(params: &SnbParams) -> (Database, RGMapping) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n_person = ((1000.0 * params.sf) as usize).max(20);
    let n_message = n_person * 8;
    let n_forum = (n_person / 2).max(4);

    let mut db = Database::new();

    // ---- Place -------------------------------------------------------
    let mut t = TableBuilder::with_capacity(
        "Place",
        Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]),
        COUNTRIES,
    );
    for i in 0..COUNTRIES {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("country_{i}")),
        ])
        .expect("static row");
    }
    db.add_table(t.finish());
    db.set_primary_key("Place", "id").unwrap();

    // ---- TagClass ------------------------------------------------------
    let mut t = TableBuilder::new(
        "TagClass",
        Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]),
    );
    for i in 0..TAG_CLASSES {
        t.push_row(vec![Value::Int(i as i64), Value::str(format!("class_{i}"))])
            .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("TagClass", "id").unwrap();

    // ---- Tag -----------------------------------------------------------
    let mut t = TableBuilder::new(
        "Tag",
        Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]),
    );
    let mut tag_class_rows = Vec::with_capacity(TAGS);
    for i in 0..TAGS {
        t.push_row(vec![Value::Int(i as i64), Value::str(format!("tag_{i}"))])
            .unwrap();
        tag_class_rows.push(i % TAG_CLASSES);
    }
    db.add_table(t.finish());
    db.set_primary_key("Tag", "id").unwrap();

    // ---- Company -------------------------------------------------------
    let mut t = TableBuilder::new(
        "Company",
        Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]),
    );
    let mut company_place = Vec::with_capacity(COMPANIES);
    for i in 0..COMPANIES {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("company_{i}")),
        ])
        .unwrap();
        company_place.push(skewed(&mut rng, COUNTRIES));
    }
    db.add_table(t.finish());
    db.set_primary_key("Company", "id").unwrap();

    // ---- Person --------------------------------------------------------
    let mut t = TableBuilder::with_capacity(
        "Person",
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("creation_date", DataType::Date),
        ]),
        n_person,
    );
    let mut person_place = Vec::with_capacity(n_person);
    for i in 0..n_person {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::str(FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())]),
            Value::Date(days(&mut rng, 11000, 18000)),
        ])
        .unwrap();
        person_place.push(skewed(&mut rng, COUNTRIES));
    }
    db.add_table(t.finish());
    db.set_primary_key("Person", "id").unwrap();

    // ---- Forum ---------------------------------------------------------
    let mut t = TableBuilder::new(
        "Forum",
        Schema::of(&[("id", DataType::Int), ("title", DataType::Str)]),
    );
    for i in 0..n_forum {
        t.push_row(vec![Value::Int(i as i64), Value::str(format!("forum_{i}"))])
            .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("Forum", "id").unwrap();

    // ---- Message -------------------------------------------------------
    // The first 40% are posts (they live in forums); the rest are comments
    // replying to an earlier message.
    let n_post = n_message * 2 / 5;
    let mut t = TableBuilder::with_capacity(
        "Message",
        Schema::of(&[
            ("id", DataType::Int),
            ("content", DataType::Str),
            ("creation_date", DataType::Date),
            ("is_post", DataType::Bool),
            ("length", DataType::Int),
        ]),
        n_message,
    );
    let mut msg_creator = Vec::with_capacity(n_message);
    let mut msg_place = Vec::with_capacity(n_message);
    for i in 0..n_message {
        let is_post = i < n_post;
        t.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("content_{}", i % 97)),
            Value::Date(days(&mut rng, 15000, 19000)),
            Value::Bool(is_post),
            Value::Int(rng.gen_range(5..200)),
        ])
        .unwrap();
        msg_creator.push(skewed(&mut rng, n_person));
        msg_place.push(skewed(&mut rng, COUNTRIES));
    }
    db.add_table(t.finish());
    db.set_primary_key("Message", "id").unwrap();

    // ---- Knows (power-law, both directions) -----------------------------
    let mut t = TableBuilder::new(
        "Knows",
        Schema::of(&[
            ("id", DataType::Int),
            ("p1", DataType::Int),
            ("p2", DataType::Int),
            ("date", DataType::Date),
        ]),
    );
    let mut eid = 0i64;
    let mut seen = relgo_common::FxHashSet::default();
    for p in 0..n_person {
        // Average ~6 undirected friendships per person → ~12 directed rows.
        let d = 1 + skewed(&mut rng, 11);
        for _ in 0..d {
            let q = skewed(&mut rng, n_person);
            if q == p || !seen.insert((p.min(q), p.max(q))) {
                continue;
            }
            let date = days(&mut rng, 12000, 19000);
            t.push_row(vec![
                Value::Int(eid),
                Value::Int(p as i64),
                Value::Int(q as i64),
                Value::Date(date),
            ])
            .unwrap();
            eid += 1;
            t.push_row(vec![
                Value::Int(eid),
                Value::Int(q as i64),
                Value::Int(p as i64),
                Value::Date(date),
            ])
            .unwrap();
            eid += 1;
        }
    }
    db.add_table(t.finish());
    db.set_primary_key("Knows", "id").unwrap();

    // ---- Likes (skewed toward popular messages) -------------------------
    let mut t = TableBuilder::new(
        "Likes",
        Schema::of(&[
            ("id", DataType::Int),
            ("person", DataType::Int),
            ("message", DataType::Int),
            ("date", DataType::Date),
        ]),
    );
    let mut eid = 0i64;
    for p in 0..n_person {
        let d = 2 + skewed(&mut rng, 14);
        for _ in 0..d {
            let m = skewed(&mut rng, n_message);
            t.push_row(vec![
                Value::Int(eid),
                Value::Int(p as i64),
                Value::Int(m as i64),
                Value::Date(days(&mut rng, 15000, 19000)),
            ])
            .unwrap();
            eid += 1;
        }
    }
    db.add_table(t.finish());
    db.set_primary_key("Likes", "id").unwrap();

    // ---- HasCreator ------------------------------------------------------
    let mut t = TableBuilder::with_capacity(
        "HasCreator",
        Schema::of(&[
            ("id", DataType::Int),
            ("message", DataType::Int),
            ("person", DataType::Int),
        ]),
        n_message,
    );
    for (m, &p) in msg_creator.iter().enumerate() {
        t.push_row(vec![
            Value::Int(m as i64),
            Value::Int(m as i64),
            Value::Int(p as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("HasCreator", "id").unwrap();

    // ---- ReplyOf ---------------------------------------------------------
    let mut t = TableBuilder::new(
        "ReplyOf",
        Schema::of(&[
            ("id", DataType::Int),
            ("comment", DataType::Int),
            ("parent", DataType::Int),
        ]),
    );
    for (eid, c) in (n_post..n_message).enumerate() {
        // Reply to some earlier message (post-heavy).
        let parent = skewed(&mut rng, c.max(1));
        t.push_row(vec![
            Value::Int(eid as i64),
            Value::Int(c as i64),
            Value::Int(parent as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("ReplyOf", "id").unwrap();

    // ---- HasTag ----------------------------------------------------------
    let mut t = TableBuilder::new(
        "HasTag",
        Schema::of(&[
            ("id", DataType::Int),
            ("message", DataType::Int),
            ("tag", DataType::Int),
        ]),
    );
    let mut eid = 0i64;
    for m in 0..n_message {
        let k = 1 + skewed(&mut rng, 2);
        for _ in 0..k {
            t.push_row(vec![
                Value::Int(eid),
                Value::Int(m as i64),
                Value::Int(skewed(&mut rng, TAGS) as i64),
            ])
            .unwrap();
            eid += 1;
        }
    }
    db.add_table(t.finish());
    db.set_primary_key("HasTag", "id").unwrap();

    // ---- HasMember ---------------------------------------------------------
    let mut t = TableBuilder::new(
        "HasMember",
        Schema::of(&[
            ("id", DataType::Int),
            ("forum", DataType::Int),
            ("person", DataType::Int),
            ("join_date", DataType::Date),
        ]),
    );
    let mut eid = 0i64;
    for f in 0..n_forum {
        let k = 4 + skewed(&mut rng, 24);
        for _ in 0..k {
            t.push_row(vec![
                Value::Int(eid),
                Value::Int(f as i64),
                Value::Int(skewed(&mut rng, n_person) as i64),
                Value::Date(days(&mut rng, 13000, 19000)),
            ])
            .unwrap();
            eid += 1;
        }
    }
    db.add_table(t.finish());
    db.set_primary_key("HasMember", "id").unwrap();

    // ---- ContainerOf (each post in exactly one forum) ---------------------
    let mut t = TableBuilder::with_capacity(
        "ContainerOf",
        Schema::of(&[
            ("id", DataType::Int),
            ("forum", DataType::Int),
            ("post", DataType::Int),
        ]),
        n_post,
    );
    for m in 0..n_post {
        t.push_row(vec![
            Value::Int(m as i64),
            Value::Int(skewed(&mut rng, n_forum) as i64),
            Value::Int(m as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("ContainerOf", "id").unwrap();

    // ---- Location edges ----------------------------------------------------
    let mut t = TableBuilder::with_capacity(
        "MsgLocatedIn",
        Schema::of(&[
            ("id", DataType::Int),
            ("message", DataType::Int),
            ("place", DataType::Int),
        ]),
        n_message,
    );
    for (m, &pl) in msg_place.iter().enumerate() {
        t.push_row(vec![
            Value::Int(m as i64),
            Value::Int(m as i64),
            Value::Int(pl as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("MsgLocatedIn", "id").unwrap();

    let mut t = TableBuilder::with_capacity(
        "PersonLocatedIn",
        Schema::of(&[
            ("id", DataType::Int),
            ("person", DataType::Int),
            ("place", DataType::Int),
        ]),
        n_person,
    );
    for (p, &pl) in person_place.iter().enumerate() {
        t.push_row(vec![
            Value::Int(p as i64),
            Value::Int(p as i64),
            Value::Int(pl as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("PersonLocatedIn", "id").unwrap();

    let mut t = TableBuilder::with_capacity(
        "CompanyLocatedIn",
        Schema::of(&[
            ("id", DataType::Int),
            ("company", DataType::Int),
            ("place", DataType::Int),
        ]),
        COMPANIES,
    );
    for (c, &pl) in company_place.iter().enumerate() {
        t.push_row(vec![
            Value::Int(c as i64),
            Value::Int(c as i64),
            Value::Int(pl as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("CompanyLocatedIn", "id").unwrap();

    // ---- WorksAt -----------------------------------------------------------
    let mut t = TableBuilder::new(
        "WorksAt",
        Schema::of(&[
            ("id", DataType::Int),
            ("person", DataType::Int),
            ("company", DataType::Int),
            ("since", DataType::Date),
        ]),
    );
    let mut eid = 0i64;
    for p in 0..n_person {
        let jobs = 1 + (rng.gen::<f64>() < 0.2) as usize;
        for _ in 0..jobs {
            t.push_row(vec![
                Value::Int(eid),
                Value::Int(p as i64),
                Value::Int(skewed(&mut rng, COMPANIES) as i64),
                Value::Date(days(&mut rng, 11000, 18000)),
            ])
            .unwrap();
            eid += 1;
        }
    }
    db.add_table(t.finish());
    db.set_primary_key("WorksAt", "id").unwrap();

    // ---- TagHasType ----------------------------------------------------------
    let mut t = TableBuilder::with_capacity(
        "TagHasType",
        Schema::of(&[
            ("id", DataType::Int),
            ("tag", DataType::Int),
            ("class", DataType::Int),
        ]),
        TAGS,
    );
    for (tag, &cls) in tag_class_rows.iter().enumerate() {
        t.push_row(vec![
            Value::Int(tag as i64),
            Value::Int(tag as i64),
            Value::Int(cls as i64),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("TagHasType", "id").unwrap();

    let mapping = snb_mapping();
    (db, mapping)
}

/// One dynamic-workload update operation: a row to append to `table`.
/// Generic on purpose — the ingest layer replays ops without knowing the
/// dataset's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateOp {
    /// Target table.
    pub table: String,
    /// The row to insert (matches the table's schema).
    pub row: Vec<Value>,
}

/// A deterministic dynamic-SNB update stream: person inserts interleaved
/// with knows-edge inserts (the LDBC update-stream shape scaled down to the
/// relationships the IC templates traverse).
///
/// Ops are safe to apply **in stream order** split across any number of
/// commits: new surrogate keys continue past `db`'s current maxima, and a
/// knows edge only ever references base persons or persons inserted
/// *earlier in the stream* — so every prefix of the stream commits cleanly.
pub fn snb_update_stream(
    db: &Database,
    seed: u64,
    ops: usize,
) -> relgo_common::Result<Vec<UpdateOp>> {
    let person = db.table("Person")?;
    let knows = db.table("Knows")?;
    let max_int = |t: &relgo_storage::Table, col: usize| -> i64 {
        (0..t.num_rows() as u32)
            .filter_map(|r| t.value(r, col).as_int())
            .max()
            .unwrap_or(-1)
    };
    let mut next_person = max_int(person, 0) + 1;
    let mut next_knows = max_int(knows, 0) + 1;
    let base_persons: Vec<i64> = (0..person.num_rows() as u32)
        .filter_map(|r| person.value(r, 0).as_int())
        .collect();
    let mut known_persons = base_persons;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_dde1);
    let mut out = Vec::with_capacity(ops);
    while out.len() < ops {
        if out.len() % 5 == 0 || known_persons.len() < 2 {
            // A new person joins the network.
            let id = next_person;
            next_person += 1;
            out.push(UpdateOp {
                table: "Person".to_string(),
                row: vec![
                    Value::Int(id),
                    Value::str(FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())]),
                    Value::Date(days(&mut rng, 18_000, 19_000)),
                ],
            });
            known_persons.push(id);
        } else {
            // A knows edge between two already-known persons (skewed toward
            // hubs, like the base generator).
            let pi = skewed(&mut rng, known_persons.len());
            let mut qi = skewed(&mut rng, known_persons.len());
            if qi == pi {
                qi = (qi + 1) % known_persons.len();
            }
            let (p, q) = (known_persons[pi], known_persons[qi]);
            let id = next_knows;
            next_knows += 1;
            out.push(UpdateOp {
                table: "Knows".to_string(),
                row: vec![
                    Value::Int(id),
                    Value::Int(p),
                    Value::Int(q),
                    Value::Date(days(&mut rng, 18_000, 19_000)),
                ],
            });
        }
    }
    Ok(out)
}

/// The SNB RGMapping (CREATE PROPERTY GRAPH equivalent).
pub fn snb_mapping() -> RGMapping {
    RGMapping::new()
        .vertex("Person")
        .vertex("Message")
        .vertex("Forum")
        .vertex("Tag")
        .vertex("TagClass")
        .vertex("Place")
        .vertex("Company")
        .edge("Knows", "p1", "Person", "p2", "Person")
        .edge("Likes", "person", "Person", "message", "Message")
        .edge("HasCreator", "message", "Message", "person", "Person")
        .edge("ReplyOf", "comment", "Message", "parent", "Message")
        .edge("HasTag", "message", "Message", "tag", "Tag")
        .edge("HasMember", "forum", "Forum", "person", "Person")
        .edge("ContainerOf", "forum", "Forum", "post", "Message")
        .edge("MsgLocatedIn", "message", "Message", "place", "Place")
        .edge("PersonLocatedIn", "person", "Person", "place", "Place")
        .edge("CompanyLocatedIn", "company", "Company", "place", "Place")
        .edge("WorksAt", "person", "Person", "company", "Company")
        .edge("TagHasType", "tag", "Tag", "class", "TagClass")
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_graph::GraphView;

    #[test]
    fn generation_is_deterministic() {
        let p = SnbParams { sf: 0.05, seed: 7 };
        let (db1, _) = generate_snb(&p);
        let (db2, _) = generate_snb(&p);
        for name in db1.table_names() {
            let t1 = db1.table(name).unwrap();
            let t2 = db2.table(name).unwrap();
            assert_eq!(t1.num_rows(), t2.num_rows(), "{name}");
            if t1.num_rows() > 0 {
                assert_eq!(t1.row(0), t2.row(0), "{name}");
                let last = (t1.num_rows() - 1) as u32;
                assert_eq!(t1.row(last), t2.row(last), "{name}");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = generate_snb(&SnbParams { sf: 0.05, seed: 1 });
        let (b, _) = generate_snb(&SnbParams { sf: 0.05, seed: 2 });
        assert_ne!(
            a.table("Knows").unwrap().num_rows(),
            b.table("Knows").unwrap().num_rows()
        );
    }

    #[test]
    fn mapping_validates_and_index_builds() {
        let (mut db, mapping) = generate_snb(&SnbParams { sf: 0.05, seed: 42 });
        let mut view = GraphView::build(&mut db, mapping).unwrap();
        view.build_index().unwrap();
        let s = view.stats();
        assert!(s.total_vertices() > 0);
        assert!(s.total_edges() > 0);
    }

    #[test]
    fn scale_factor_scales_rows() {
        let (small, _) = generate_snb(&SnbParams { sf: 0.05, seed: 42 });
        let (large, _) = generate_snb(&SnbParams { sf: 0.2, seed: 42 });
        assert!(
            large.table("Person").unwrap().num_rows()
                > 2 * small.table("Person").unwrap().num_rows()
        );
        assert!(
            large.table("Message").unwrap().num_rows()
                > 2 * small.table("Message").unwrap().num_rows()
        );
    }

    #[test]
    fn update_stream_is_deterministic_and_prefix_safe() {
        let (db, _) = generate_snb(&SnbParams { sf: 0.05, seed: 42 });
        let a = snb_update_stream(&db, 7, 40).unwrap();
        let b = snb_update_stream(&db, 7, 40).unwrap();
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, snb_update_stream(&db, 8, 40).unwrap());
        assert_eq!(a.len(), 40);
        // Knows edges only reference base persons or persons inserted
        // earlier in the stream (prefix safety).
        let n_base = db.table("Person").unwrap().num_rows() as i64;
        let mut seen_persons: Vec<i64> = (0..n_base).collect();
        let mut person_ops = 0;
        for op in &a {
            match op.table.as_str() {
                "Person" => {
                    let id = op.row[0].as_int().unwrap();
                    assert!(!seen_persons.contains(&id), "fresh person key");
                    seen_persons.push(id);
                    person_ops += 1;
                }
                "Knows" => {
                    let p = op.row[1].as_int().unwrap();
                    let q = op.row[2].as_int().unwrap();
                    assert_ne!(p, q);
                    assert!(seen_persons.contains(&p), "p known at this prefix");
                    assert!(seen_persons.contains(&q), "q known at this prefix");
                }
                other => panic!("unexpected table {other}"),
            }
        }
        assert!(person_ops >= 8, "person/knows mix: {person_ops} persons");
    }

    #[test]
    fn knows_is_symmetric() {
        let (db, _) = generate_snb(&SnbParams { sf: 0.05, seed: 42 });
        let knows = db.table("Knows").unwrap();
        let mut pairs = relgo_common::FxHashSet::default();
        for r in 0..knows.num_rows() as u32 {
            let p1 = knows.value(r, 1).as_int().unwrap();
            let p2 = knows.value(r, 2).as_int().unwrap();
            pairs.insert((p1, p2));
        }
        for &(a, b) in pairs.iter() {
            assert!(pairs.contains(&(b, a)), "missing reverse of ({a},{b})");
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let (db, _) = generate_snb(&SnbParams { sf: 0.2, seed: 42 });
        let likes = db.table("Likes").unwrap();
        let n_msg = db.table("Message").unwrap().num_rows();
        let mut indeg = vec![0usize; n_msg];
        for r in 0..likes.num_rows() as u32 {
            indeg[likes.value(r, 2).as_int().unwrap() as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        let avg = likes.num_rows() as f64 / n_msg as f64;
        assert!(
            max as f64 > 4.0 * avg,
            "popular messages should be far above average (max {max}, avg {avg:.1})"
        );
    }
}
