//! # relgo-datagen
//!
//! Deterministic synthetic datasets standing in for the paper's benchmarks:
//!
//! * [`snb`] — an LDBC-SNB-like social network (persons, messages, forums,
//!   tags, places, companies, and the full set of relationship tables) with
//!   power-law `Knows`/`Likes` degree distributions and a scale-factor knob.
//!   `sf = 0.1 / 0.3 / 1.0` play the roles of the paper's LDBC 10/30/100.
//! * [`imdb`] — an IMDB-like movie database (titles, names, companies,
//!   keywords, and the JOB link tables) with skewed cast/keyword
//!   distributions, backing the JOB-style join-order workload.
//!
//! All generation is seeded (`rand::StdRng`) and reproducible; every foreign
//! key is total (the λ functions of RGMapping must be total functions).

pub mod imdb;
pub mod snb;

pub use imdb::{generate_imdb, ImdbParams};
pub use snb::{generate_snb, snb_update_stream, SnbParams, UpdateOp};
