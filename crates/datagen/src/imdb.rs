//! IMDB-like generator backing the JOB-style join-order workload.
//!
//! Entities: `title`, `name`, `company_name`, `keyword`, `company_type`,
//! `info_type`. Link tables (edges): `cast_info` (name→title),
//! `movie_companies` (company_name→title, carrying a company-type
//! attribute), `movie_keyword` (keyword→title), `movie_info`
//! (info_type→title, carrying an info string).
//!
//! JOB stresses join-order choices through correlated, skewed predicates:
//! production years cluster, country codes are zipfian, a handful of
//! keywords dominate, and cast sizes are heavy-tailed — all reproduced here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relgo_common::{DataType, Schema, Value};
use relgo_graph::RGMapping;
use relgo_storage::{Database, TableBuilder};

/// Scale parameters of the IMDB-like generator.
#[derive(Debug, Clone, Copy)]
pub struct ImdbParams {
    /// Scale factor: titles = 4000 × sf, names = 6000 × sf, …
    pub sf: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbParams {
    fn default() -> Self {
        ImdbParams {
            sf: 0.25,
            seed: 4242,
        }
    }
}

const COUNTRY_CODES: [&str; 12] = [
    "[us]", "[gb]", "[de]", "[fr]", "[it]", "[jp]", "[in]", "[ca]", "[es]", "[se]", "[dk]", "[au]",
];

const KEYWORDS_SPECIAL: [&str; 8] = [
    "character-name-in-title",
    "based-on-novel",
    "sequel",
    "murder",
    "love",
    "independent-film",
    "revenge",
    "female-nudity",
];

const SURNAME_INITIALS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";

fn skewed(rng: &mut StdRng, n: usize) -> usize {
    let x: f64 = rng.gen::<f64>();
    ((x * x) * n as f64) as usize % n.max(1)
}

/// Cubic skew for highly concentrated dimensions (country codes: most
/// studios are American, like the real IMDB).
fn heavily_skewed(rng: &mut StdRng, n: usize) -> usize {
    let x: f64 = rng.gen::<f64>();
    ((x * x * x) * n as f64) as usize % n.max(1)
}

/// Generate the database and its RGMapping.
pub fn generate_imdb(params: &ImdbParams) -> (Database, RGMapping) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n_title = ((4000.0 * params.sf) as usize).max(50);
    let n_name = ((6000.0 * params.sf) as usize).max(60);
    let n_company = ((400.0 * params.sf) as usize).max(20);
    let n_keyword = ((800.0 * params.sf) as usize).max(KEYWORDS_SPECIAL.len());

    let mut db = Database::new();

    // ---- company_type / info_type (tiny dimension tables) ----------------
    let mut t = TableBuilder::new(
        "company_type",
        Schema::of(&[("id", DataType::Int), ("kind", DataType::Str)]),
    );
    for (i, kind) in [
        "production companies",
        "distributors",
        "special effects",
        "misc",
    ]
    .iter()
    .enumerate()
    {
        t.push_row(vec![Value::Int(i as i64), Value::str(*kind)])
            .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("company_type", "id").unwrap();

    let mut t = TableBuilder::new(
        "info_type",
        Schema::of(&[("id", DataType::Int), ("info", DataType::Str)]),
    );
    for (i, info) in [
        "budget",
        "rating",
        "genres",
        "languages",
        "runtimes",
        "votes",
    ]
    .iter()
    .enumerate()
    {
        t.push_row(vec![Value::Int(i as i64), Value::str(*info)])
            .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("info_type", "id").unwrap();

    // ---- title ------------------------------------------------------------
    let mut t = TableBuilder::with_capacity(
        "title",
        Schema::of(&[
            ("id", DataType::Int),
            ("title", DataType::Str),
            ("production_year", DataType::Int),
            ("kind_id", DataType::Int),
        ]),
        n_title,
    );
    for i in 0..n_title {
        // Years cluster toward the present (skew matters for year filters).
        let year = 2015 - skewed(&mut rng, 100) as i64;
        t.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("movie_{i}")),
            Value::Int(year),
            Value::Int(rng.gen_range(0..4)),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("title", "id").unwrap();

    // ---- name ---------------------------------------------------------------
    let mut t = TableBuilder::with_capacity(
        "name",
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("gender", DataType::Str),
        ]),
        n_name,
    );
    for i in 0..n_name {
        let initial = SURNAME_INITIALS[skewed(&mut rng, SURNAME_INITIALS.len())] as char;
        t.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("{initial}actor_{i}")),
            Value::str(if rng.gen::<bool>() { "m" } else { "f" }),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("name", "id").unwrap();

    // ---- company_name ----------------------------------------------------------
    let mut t = TableBuilder::with_capacity(
        "company_name",
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("country_code", DataType::Str),
        ]),
        n_company,
    );
    for i in 0..n_company {
        t.push_row(vec![
            Value::Int(i as i64),
            Value::str(format!("studio_{i}")),
            Value::str(COUNTRY_CODES[heavily_skewed(&mut rng, COUNTRY_CODES.len())]),
        ])
        .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("company_name", "id").unwrap();

    // ---- keyword -------------------------------------------------------------
    let mut t = TableBuilder::with_capacity(
        "keyword",
        Schema::of(&[("id", DataType::Int), ("keyword", DataType::Str)]),
        n_keyword,
    );
    for i in 0..n_keyword {
        let kw = match KEYWORDS_SPECIAL.get(i) {
            Some(special) => special.to_string(),
            None => format!("keyword_{i}"),
        };
        t.push_row(vec![Value::Int(i as i64), Value::str(kw)])
            .unwrap();
    }
    db.add_table(t.finish());
    db.set_primary_key("keyword", "id").unwrap();

    // ---- cast_info (heavy-tailed cast sizes) -----------------------------------
    let mut t = TableBuilder::new(
        "cast_info",
        Schema::of(&[
            ("id", DataType::Int),
            ("person_id", DataType::Int),
            ("movie_id", DataType::Int),
            ("role_id", DataType::Int),
        ]),
    );
    let mut eid = 0i64;
    for m in 0..n_title {
        let cast = 2 + skewed(&mut rng, 12);
        for _ in 0..cast {
            t.push_row(vec![
                Value::Int(eid),
                Value::Int(skewed(&mut rng, n_name) as i64),
                Value::Int(m as i64),
                Value::Int(rng.gen_range(0..11)),
            ])
            .unwrap();
            eid += 1;
        }
    }
    db.add_table(t.finish());
    db.set_primary_key("cast_info", "id").unwrap();

    // ---- movie_companies ----------------------------------------------------------
    let mut t = TableBuilder::new(
        "movie_companies",
        Schema::of(&[
            ("id", DataType::Int),
            ("movie_id", DataType::Int),
            ("company_id", DataType::Int),
            ("company_type_id", DataType::Int),
        ]),
    );
    let mut eid = 0i64;
    for m in 0..n_title {
        let k = 1 + skewed(&mut rng, 3);
        for _ in 0..k {
            t.push_row(vec![
                Value::Int(eid),
                Value::Int(m as i64),
                Value::Int(skewed(&mut rng, n_company) as i64),
                Value::Int(skewed(&mut rng, 4) as i64),
            ])
            .unwrap();
            eid += 1;
        }
    }
    db.add_table(t.finish());
    db.set_primary_key("movie_companies", "id").unwrap();

    // ---- movie_keyword ---------------------------------------------------------------
    let mut t = TableBuilder::new(
        "movie_keyword",
        Schema::of(&[
            ("id", DataType::Int),
            ("movie_id", DataType::Int),
            ("keyword_id", DataType::Int),
        ]),
    );
    let mut eid = 0i64;
    for m in 0..n_title {
        let k = 1 + skewed(&mut rng, 4);
        for _ in 0..k {
            t.push_row(vec![
                Value::Int(eid),
                Value::Int(m as i64),
                Value::Int(skewed(&mut rng, n_keyword) as i64),
            ])
            .unwrap();
            eid += 1;
        }
    }
    db.add_table(t.finish());
    db.set_primary_key("movie_keyword", "id").unwrap();

    // ---- movie_info --------------------------------------------------------------------
    let mut t = TableBuilder::new(
        "movie_info",
        Schema::of(&[
            ("id", DataType::Int),
            ("movie_id", DataType::Int),
            ("info_type_id", DataType::Int),
            ("info", DataType::Str),
        ]),
    );
    let mut eid = 0i64;
    for m in 0..n_title {
        let k = 1 + skewed(&mut rng, 3);
        for _ in 0..k {
            let it = skewed(&mut rng, 6);
            t.push_row(vec![
                Value::Int(eid),
                Value::Int(m as i64),
                Value::Int(it as i64),
                Value::str(format!("info_{}", skewed(&mut rng, 40))),
            ])
            .unwrap();
            eid += 1;
        }
    }
    db.add_table(t.finish());
    db.set_primary_key("movie_info", "id").unwrap();

    (db, imdb_mapping())
}

/// The IMDB RGMapping: entity tables become vertices, link tables edges.
pub fn imdb_mapping() -> RGMapping {
    RGMapping::new()
        .vertex("title")
        .vertex("name")
        .vertex("company_name")
        .vertex("keyword")
        .vertex("info_type")
        .edge("cast_info", "person_id", "name", "movie_id", "title")
        .edge(
            "movie_companies",
            "company_id",
            "company_name",
            "movie_id",
            "title",
        )
        .edge(
            "movie_keyword",
            "keyword_id",
            "keyword",
            "movie_id",
            "title",
        )
        .edge(
            "movie_info",
            "info_type_id",
            "info_type",
            "movie_id",
            "title",
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_graph::GraphView;

    #[test]
    fn deterministic_and_mapped() {
        let p = ImdbParams { sf: 0.1, seed: 9 };
        let (db1, m1) = generate_imdb(&p);
        let (db2, _) = generate_imdb(&p);
        assert_eq!(
            db1.table("cast_info").unwrap().num_rows(),
            db2.table("cast_info").unwrap().num_rows()
        );
        let mut db = db1;
        let mut view = GraphView::build(&mut db, m1).unwrap();
        view.build_index().unwrap();
    }

    #[test]
    fn special_keywords_present() {
        let (db, _) = generate_imdb(&ImdbParams { sf: 0.1, seed: 9 });
        let kw = db.table("keyword").unwrap();
        let mut found = false;
        for r in 0..kw.num_rows() as u32 {
            if kw.value(r, 1) == Value::str("character-name-in-title") {
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn country_codes_are_skewed_to_us() {
        let (db, _) = generate_imdb(&ImdbParams { sf: 0.5, seed: 9 });
        let cn = db.table("company_name").unwrap();
        let us = (0..cn.num_rows() as u32)
            .filter(|&r| cn.value(r, 2) == Value::str("[us]"))
            .count();
        assert!(
            us * 3 > cn.num_rows(),
            "us studios dominate: {us}/{}",
            cn.num_rows()
        );
    }

    #[test]
    fn cast_sizes_heavy_tailed() {
        let (db, _) = generate_imdb(&ImdbParams { sf: 0.5, seed: 9 });
        let ci = db.table("cast_info").unwrap();
        let n_name = db.table("name").unwrap().num_rows();
        let mut deg = vec![0usize; n_name];
        for r in 0..ci.num_rows() as u32 {
            deg[ci.value(r, 1).as_int().unwrap() as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let avg = ci.num_rows() as f64 / n_name as f64;
        assert!(max as f64 > 5.0 * avg);
    }
}
