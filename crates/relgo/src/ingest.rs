//! Ingest batches: the write path of the snapshot-versioned session.
//!
//! [`Session::begin_ingest`] opens an [`IngestBatch`] — a single-writer
//! handle accumulating row inserts and primary-key deletes in a
//! [`relgo_delta::DeltaSet`], invisible to every reader. [`IngestBatch::commit`]
//! then:
//!
//! 1. merges the delta into fresh immutable tables
//!    ([`relgo_delta::DeltaSet::apply`]; unchanged tables share their
//!    `Arc`s),
//! 2. incrementally refreshes the graph view and GRainDB-style index
//!    (untouched edge labels share the previous epoch's memory),
//! 3. refreshes statistics: below the
//!    [`crate::SessionOptions::stats_staleness`] fraction the GLogue keeps
//!    every cached pattern count whose labels the delta did not touch
//!    ([`relgo_glogue::GLogue::refreshed`]); past it, a full pattern-count
//!    rebuild runs — both exact,
//! 4. publishes the next epoch with one pointer swap and bumps the plan
//!    cache's statistics version, so cached plans and pinned prepared
//!    statements transparently re-optimize against the new data.
//!
//! In-flight queries (and [`crate::Snapshot`]s) keep reading the old epoch;
//! a failed commit publishes nothing and discards the batch.

use crate::session::{Session, SessionState};
use parking_lot::MutexGuard;
use relgo_common::{RelGoError, Result, Value};
use relgo_delta::DeltaSet;
use relgo_glogue::GLogue;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a commit refreshed the GLogue statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsRefresh {
    /// Delta-aware refresh: cached pattern counts for untouched labels were
    /// carried into the new epoch.
    Incremental {
        /// Cached counts carried over.
        retained: usize,
        /// Cached counts evicted (their labels were touched).
        evicted: usize,
    },
    /// The changed-row fraction exceeded the staleness threshold: full
    /// pattern-count rebuild (empty cache, lazily recounted).
    Full,
}

/// What one committed ingest batch did.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The epoch the commit published.
    pub epoch: u64,
    /// Rows inserted across all tables.
    pub inserted: usize,
    /// Rows deleted across all tables.
    pub deleted: usize,
    /// Fraction of the base database's rows the batch changed.
    pub changed_fraction: f64,
    /// Names of the tables the batch touched (sorted).
    pub tables: Vec<String>,
    /// How statistics were refreshed.
    pub stats: StatsRefresh,
    /// Wall time of the statistics refresh alone.
    pub stats_time: Duration,
    /// Wall time of the whole commit (merge + view/index + statistics +
    /// publish).
    pub commit_time: Duration,
}

/// A single-writer ingest batch against one [`Session`]. Holding the batch
/// holds the session's writer lock: concurrent `begin_ingest` (or
/// statistics rebuild) blocks until this batch commits or is dropped.
/// Readers are never blocked.
pub struct IngestBatch<'s> {
    session: &'s Session,
    _writer: MutexGuard<'s, ()>,
    delta: DeltaSet,
}

impl<'s> IngestBatch<'s> {
    pub(crate) fn begin(session: &'s Session) -> IngestBatch<'s> {
        IngestBatch {
            _writer: session.write_lock.lock(),
            session,
            delta: DeltaSet::new(),
        }
    }

    /// Queue one row for appending to `table`. The table must exist; full
    /// schema/key validation happens at commit.
    pub fn insert_row(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        let state = self.session.state();
        state.db.table(table)?;
        self.delta.insert(table, row);
        Ok(())
    }

    /// Queue one row for appending to the edge table `table` — like
    /// [`IngestBatch::insert_row`], but additionally checks the table backs
    /// an edge label of the session's RGMapping, so a typo cannot silently
    /// ingest graph data into a non-graph relation.
    pub fn insert_edge(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        let state = self.session.state();
        if !state
            .view
            .mapping()
            .edges()
            .iter()
            .any(|e| e.table == table)
        {
            return Err(RelGoError::schema(format!(
                "{table} does not back an edge label of the RGMapping"
            )));
        }
        self.insert_row(table, row)
    }

    /// Queue the deletion of the base row of `table` whose primary key
    /// equals `key`. Resolution (and the λ-totality check that no surviving
    /// edge still references a deleted vertex) happens at commit.
    pub fn delete_row(&mut self, table: &str, key: i64) -> Result<()> {
        let state = self.session.state();
        state.db.table(table)?;
        if state.db.primary_key(table).is_none() {
            return Err(RelGoError::schema(format!(
                "cannot delete from {table}: no primary key declared"
            )));
        }
        self.delta.delete(table, key);
        Ok(())
    }

    /// Rows queued for insertion.
    pub fn pending_inserts(&self) -> usize {
        self.delta.inserted_rows()
    }

    /// Rows queued for deletion.
    pub fn pending_deletes(&self) -> usize {
        self.delta.deleted_rows()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// Validate, merge and publish the batch as the next epoch (see the
    /// module docs for the pipeline). On error nothing is published and the
    /// batch is discarded. An empty batch is a no-op that publishes
    /// nothing.
    pub fn commit(self) -> Result<IngestReport> {
        let start = Instant::now();
        let state = self.session.state();
        if self.delta.is_empty() {
            return Ok(IngestReport {
                epoch: state.epoch,
                inserted: 0,
                deleted: 0,
                changed_fraction: 0.0,
                tables: Vec::new(),
                stats: StatsRefresh::Incremental {
                    retained: state.glogue.cached_patterns(),
                    evicted: 0,
                },
                stats_time: Duration::ZERO,
                commit_time: start.elapsed(),
            });
        }
        let (mut db, summary) = self.delta.apply(&state.db)?;
        let view = Arc::new(relgo_delta::refresh_view(&state.view, &mut db, &summary)?);
        let changed_fraction = summary.changed_fraction(&state.db);
        let (changed_v, changed_e) = view.changed_label_flags(summary.map());

        let stats_start = Instant::now();
        let (glogue, stats) = if changed_fraction <= self.session.options().stats_staleness {
            let before = state.glogue.cached_patterns();
            let refreshed =
                GLogue::refreshed(&state.glogue, Arc::clone(&view), &changed_v, &changed_e)?;
            let retained = refreshed.cached_patterns();
            (
                Arc::new(refreshed),
                StatsRefresh::Incremental {
                    retained,
                    evicted: before - retained,
                },
            )
        } else {
            let (k, stride) = self.session.statistics_tuning();
            (
                Arc::new(GLogue::with_threads(
                    Arc::clone(&view),
                    k,
                    stride,
                    self.session.options().threads,
                )?),
                StatsRefresh::Full,
            )
        };
        let stats_time = stats_start.elapsed();

        let epoch = state.epoch + 1;
        self.session.publish(SessionState {
            epoch,
            db: Arc::new(db),
            view,
            glogue,
        });
        // Every cached plan and pinned prepared statement was costed
        // against the previous epoch's statistics: stale from now on.
        self.session.plan_cache().invalidate_all();
        Ok(IngestReport {
            epoch,
            inserted: summary.inserted_rows(),
            deleted: summary.deleted_rows(),
            changed_fraction,
            tables: summary.tables().iter().map(|s| s.to_string()).collect(),
            stats,
            stats_time,
            commit_time: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionOptions;
    use relgo_core::OptimizerMode;
    use relgo_workloads::snb_queries;

    #[test]
    fn commit_publishes_next_epoch_and_invalidates() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let person = session.db().table("Person").unwrap().num_rows();
        let q = snb_queries::ic1(&schema, 1, 0).unwrap();
        let before_rows = session.run(&q, OptimizerMode::RelGo).unwrap().table;
        session.run_cached(&q, OptimizerMode::RelGo).unwrap();

        let mut batch = session.begin_ingest();
        let next_id = person as i64 * 10; // ids are 0..n, so this is fresh
        batch
            .insert_row(
                "Person",
                vec![next_id.into(), "Zed".into(), Value::Date(17_000)],
            )
            .unwrap();
        batch
            .insert_edge(
                "Knows",
                vec![
                    900_000.into(),
                    0.into(),
                    next_id.into(),
                    Value::Date(17_001),
                ],
            )
            .unwrap();
        assert_eq!(batch.pending_inserts(), 2);
        let report = batch.commit().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(session.epoch(), 1);
        assert_eq!(report.inserted, 2);
        assert_eq!(report.tables, vec!["Knows", "Person"]);
        assert!(matches!(report.stats, StatsRefresh::Incremental { .. }));

        // Data is visible, cached plans were invalidated (miss → reopt).
        assert_eq!(session.db().table("Person").unwrap().num_rows(), person + 1);
        let out = session.run_cached(&q, OptimizerMode::RelGo).unwrap();
        assert!(!out.cached, "commit staled the cached plan");
        // IC1 person 0, 1 hop: the new friend shows up.
        assert_eq!(
            out.table.num_rows(),
            before_rows.num_rows() + 1,
            "ingested knows edge is served"
        );
    }

    #[test]
    fn snapshot_pins_the_old_epoch() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        let snap = session.snapshot();
        let person = snap.db().table("Person").unwrap().num_rows();

        let mut batch = session.begin_ingest();
        batch
            .insert_row(
                "Person",
                vec![777_000.into(), "Ghost".into(), Value::Date(17_000)],
            )
            .unwrap();
        // Uncommitted rows are invisible to everyone.
        assert_eq!(session.db().table("Person").unwrap().num_rows(), person);
        batch.commit().unwrap();

        // Committed rows are invisible to the pinned snapshot…
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.db().table("Person").unwrap().num_rows(), person);
        // …and visible to the live session.
        assert_eq!(session.epoch(), 1);
        assert_eq!(session.db().table("Person").unwrap().num_rows(), person + 1);
    }

    #[test]
    fn staleness_threshold_forces_full_rebuild() {
        let options = SessionOptions {
            stats_staleness: 0.0,
            ..SessionOptions::default()
        };
        let (session, schema) = Session::snb_with(0.03, 42, options).unwrap();
        // Warm a count, then commit with staleness 0: everything rebuilt.
        session
            .run(
                &snb_queries::ic1(&schema, 1, 0).unwrap(),
                OptimizerMode::RelGo,
            )
            .unwrap();
        let mut batch = session.begin_ingest();
        batch
            .insert_row(
                "Person",
                vec![777_000.into(), "Zed".into(), Value::Date(17_000)],
            )
            .unwrap();
        let report = batch.commit().unwrap();
        assert_eq!(report.stats, StatsRefresh::Full);
        assert_eq!(session.glogue().cached_patterns(), 0);
    }

    #[test]
    fn commit_validation_failures_publish_nothing() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        // Duplicate primary key.
        let mut batch = session.begin_ingest();
        batch
            .insert_row("Person", vec![0.into(), "Dup".into(), Value::Date(17_000)])
            .unwrap();
        assert!(batch.commit().is_err());
        assert_eq!(session.epoch(), 0);
        // Dangling edge insert.
        let mut batch = session.begin_ingest();
        batch
            .insert_edge(
                "Knows",
                vec![
                    900_000.into(),
                    0.into(),
                    999_999.into(),
                    Value::Date(17_001),
                ],
            )
            .unwrap();
        assert!(batch.commit().is_err());
        assert_eq!(session.epoch(), 0);
        // Deleting a vertex still referenced by edges.
        let mut batch = session.begin_ingest();
        batch.delete_row("Person", 0).unwrap();
        assert!(batch.commit().is_err());
        assert_eq!(session.epoch(), 0);
        // insert_edge polices the mapping.
        let mut batch = session.begin_ingest();
        assert!(batch.insert_edge("Person", vec![1.into()]).is_err());
        // An empty batch is a no-op.
        let report = batch.commit().unwrap();
        assert_eq!(report.epoch, 0);
        assert_eq!(session.epoch(), 0);
    }

    #[test]
    fn deleting_an_unreferenced_edge_row_works() {
        use relgo_core::SpjmBuilder;
        use relgo_pattern::PatternBuilder;
        use relgo_storage::ScalarExpr;

        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let likes = session.db().table("Likes").unwrap().num_rows();
        // One row per like of person 0: p -[Likes]-> m, p_id = 0.
        let q = {
            let mut pb = PatternBuilder::new();
            let p = pb.vertex("p", schema.person);
            let m = pb.vertex("m", schema.message);
            pb.edge(p, m, schema.likes).unwrap();
            let mut b = SpjmBuilder::new(pb.build().unwrap());
            let p_id = b.vertex_column(p, 0, "p_id");
            let m_id = b.vertex_column(m, 0, "m_id");
            b.select(ScalarExpr::col_eq(p_id, 0i64));
            b.project(&[m_id]);
            b.build()
        };
        let before = session.run(&q, OptimizerMode::RelGo).unwrap().table;
        assert!(before.num_rows() > 0, "person 0 likes something");
        // Delete one of person 0's likes (edge rows are freely deletable).
        let key = {
            let db = session.db();
            let t = db.table("Likes").unwrap();
            (0..t.num_rows() as u32)
                .find(|&r| t.value(r, 1) == Value::Int(0))
                .map(|r| t.value(r, 0).as_int().unwrap())
                .expect("person 0 likes something")
        };
        let mut batch = session.begin_ingest();
        batch.delete_row("Likes", key).unwrap();
        let report = batch.commit().unwrap();
        assert_eq!(report.deleted, 1);
        assert_eq!(session.db().table("Likes").unwrap().num_rows(), likes - 1);
        let after = session.run(&q, OptimizerMode::RelGo).unwrap().table;
        assert_eq!(after.num_rows(), before.num_rows() - 1);
    }
}
