//! Ingest batches: the MVCC write path of the snapshot-versioned session.
//!
//! [`Session::begin_ingest`] opens an [`IngestBatch`] — a writer handle
//! accumulating row inserts and primary-key deletes in a
//! [`relgo_delta::DeltaSet`], invisible to every reader. Batches are
//! *optimistic*: any number may be open concurrently, each remembering the
//! epoch it started from (its **base epoch**). [`IngestBatch::commit`] then:
//!
//! 1. **validates** first-committer-wins: the batch's primary-key write-set
//!    ([`relgo_delta::DeltaSet::write_set`]) is intersected against every
//!    commit that published after the base epoch — an overlap aborts with
//!    the retryable [`CommitError::Conflict`] and publishes nothing,
//! 2. merges the delta into fresh immutable tables
//!    ([`relgo_delta::DeltaSet::apply`]; unchanged tables share their
//!    `Arc`s),
//! 3. incrementally refreshes the graph view and GRainDB-style index
//!    (untouched edge labels share the previous epoch's memory),
//! 4. refreshes statistics: below the
//!    [`crate::SessionOptions::stats_staleness`] fraction the GLogue keeps
//!    every cached pattern count whose labels the delta did not touch
//!    ([`relgo_glogue::GLogue::refreshed`]); past it, a full pattern-count
//!    rebuild runs — both exact,
//! 5. on a durable session, stages the delta as a write-ahead-log record
//!    ([`relgo_delta::wal::Wal::append`]),
//! 6. publishes the next epoch with one pointer swap and bumps the plan
//!    cache's statistics version, so cached plans and pinned prepared
//!    statements transparently re-optimize against the new data,
//! 7. on a durable session, waits for the WAL group commit
//!    ([`relgo_delta::wal::Wal::sync_through`]) — concurrent committers'
//!    records are fsynced together, amortizing the sync.
//!
//! Only steps 1–6 hold the session's writer lock (the short
//! validate-and-publish critical section); the fsync in step 7 happens
//! outside it so the next committer can validate meanwhile. Visibility
//! therefore precedes durability within one group-commit window: a crash in
//! that window loses a *suffix* of just-published commits, never a prefix —
//! exactly the contract [`Session::recover`] restores.
//!
//! In-flight queries (and [`crate::Snapshot`]s) keep reading the old epoch;
//! a failed commit publishes nothing and discards the batch.

use crate::session::{Session, SessionState};
use rand::{Rng, SeedableRng};
use relgo_common::{RelGoError, Result, Value};
use relgo_delta::DeltaSet;
use relgo_glogue::GLogue;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an [`IngestBatch::commit`] did not publish.
///
/// The conflict variants are *retryable*: nothing was published, and
/// re-staging the same logical change against the current epoch (a fresh
/// [`Session::begin_ingest`]) may succeed. [`CommitError::Failed`] wraps a
/// non-conflict validation or execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum CommitError {
    /// First-committer-wins validation failed: a commit that published
    /// after this batch's base epoch wrote an overlapping primary key.
    Conflict {
        /// Table of the first overlapping key (sorted table order).
        table: String,
        /// The smallest overlapping primary-key value in that table.
        key: i64,
        /// The epoch of the already-published conflicting commit.
        committed_epoch: u64,
    },
    /// The batch's base epoch predates the session's retained commit log,
    /// so disjointness cannot be proven; the batch is conservatively
    /// rejected. Retry against the current epoch.
    StaleBase {
        /// The batch's base epoch.
        base_epoch: u64,
        /// The oldest base epoch the commit log can still validate against.
        retained_from: u64,
    },
    /// A non-conflict failure (schema validation, λ-totality, WAL I/O…).
    Failed(RelGoError),
}

impl CommitError {
    /// Whether the commit lost a race (retryable) rather than being invalid.
    pub fn is_conflict(&self) -> bool {
        !matches!(self, CommitError::Failed(_))
    }
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Conflict {
                table,
                key,
                committed_epoch,
            } => write!(
                f,
                "write conflict: {table} key {key} was also written by the \
                 commit that published epoch {committed_epoch}"
            ),
            CommitError::StaleBase {
                base_epoch,
                retained_from,
            } => write!(
                f,
                "write conflict: base epoch {base_epoch} predates the \
                 retained commit log (validatable from epoch {retained_from})"
            ),
            CommitError::Failed(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CommitError {}

impl From<RelGoError> for CommitError {
    fn from(e: RelGoError) -> CommitError {
        CommitError::Failed(e)
    }
}

impl From<CommitError> for RelGoError {
    fn from(e: CommitError) -> RelGoError {
        match e {
            CommitError::Conflict {
                table,
                key,
                committed_epoch,
            } => RelGoError::conflict(format!(
                "{table} key {key} was also written by the commit that \
                 published epoch {committed_epoch}"
            )),
            CommitError::StaleBase {
                base_epoch,
                retained_from,
            } => RelGoError::conflict(format!(
                "base epoch {base_epoch} predates the retained commit log \
                 (validatable from epoch {retained_from})"
            )),
            CommitError::Failed(e) => e,
        }
    }
}

/// Backoff schedule for [`IngestBatch::commit_with_retry`].
///
/// Retryable losses ([`CommitError::Conflict`], [`CommitError::StaleBase`])
/// are re-staged against the then-current epoch after an exponentially
/// growing, fully jittered sleep: attempt *n* sleeps a uniform-random
/// duration in `[0, min(base_delay · 2ⁿ⁻¹, max_delay)]`. Full jitter
/// de-synchronizes writers that lost the same race, so the retry storm does
/// not re-collide in lockstep. [`CommitError::Failed`] is never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = plain [`IngestBatch::commit`]).
    pub max_retries: u32,
    /// Backoff cap for attempt 1; doubles per subsequent attempt.
    pub base_delay: Duration,
    /// Ceiling on the backoff cap, whatever the attempt number.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter stream (vary per writer).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(20),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// How a commit refreshed the GLogue statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsRefresh {
    /// Delta-aware refresh: cached pattern counts for untouched labels were
    /// carried into the new epoch.
    Incremental {
        /// Cached counts carried over.
        retained: usize,
        /// Cached counts evicted (their labels were touched).
        evicted: usize,
    },
    /// The changed-row fraction exceeded the staleness threshold: full
    /// pattern-count rebuild (empty cache, lazily recounted).
    Full,
}

/// What one committed ingest batch did.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The epoch the commit published.
    pub epoch: u64,
    /// Rows inserted across all tables.
    pub inserted: usize,
    /// Rows deleted across all tables.
    pub deleted: usize,
    /// Fraction of the base database's rows the batch changed.
    pub changed_fraction: f64,
    /// Names of the tables the batch touched (sorted).
    pub tables: Vec<String>,
    /// How statistics were refreshed.
    pub stats: StatsRefresh,
    /// Wall time of the statistics refresh alone.
    pub stats_time: Duration,
    /// Wall time spent making the commit durable: WAL record staging plus
    /// the group-commit sync (zero on a non-durable session).
    pub wal_time: Duration,
    /// Wall time of the whole commit (merge + view/index + statistics +
    /// publish + WAL durability).
    pub commit_time: Duration,
}

/// An optimistic ingest batch against one [`Session`]. Any number of
/// batches may be open concurrently — each validates at commit against
/// everything that published after its base epoch (first committer wins).
/// Readers are never blocked.
pub struct IngestBatch<'s> {
    session: &'s Session,
    base_epoch: u64,
    delta: DeltaSet,
}

impl<'s> IngestBatch<'s> {
    pub(crate) fn begin(session: &'s Session) -> IngestBatch<'s> {
        IngestBatch {
            base_epoch: session.epoch(),
            session,
            delta: DeltaSet::new(),
        }
    }

    /// The epoch this batch reads from and validates against at commit.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Queue one row for appending to `table`. The table must exist; full
    /// schema/key validation happens at commit.
    pub fn insert_row(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        let state = self.session.state();
        state.db.table(table)?;
        self.delta.insert(table, row);
        Ok(())
    }

    /// Queue one row for appending to the edge table `table` — like
    /// [`IngestBatch::insert_row`], but additionally checks the table backs
    /// an edge label of the session's RGMapping, so a typo cannot silently
    /// ingest graph data into a non-graph relation.
    pub fn insert_edge(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        let state = self.session.state();
        if !state
            .view
            .mapping()
            .edges()
            .iter()
            .any(|e| e.table == table)
        {
            return Err(RelGoError::schema(format!(
                "{table} does not back an edge label of the RGMapping"
            )));
        }
        self.insert_row(table, row)
    }

    /// Queue the deletion of the base row of `table` whose primary key
    /// equals `key`. Resolution (and the λ-totality check that no surviving
    /// edge still references a deleted vertex) happens at commit.
    pub fn delete_row(&mut self, table: &str, key: i64) -> Result<()> {
        let state = self.session.state();
        state.db.table(table)?;
        if state.db.primary_key(table).is_none() {
            return Err(RelGoError::schema(format!(
                "cannot delete from {table}: no primary key declared"
            )));
        }
        self.delta.delete(table, key);
        Ok(())
    }

    /// Rows queued for insertion.
    pub fn pending_inserts(&self) -> usize {
        self.delta.inserted_rows()
    }

    /// Rows queued for deletion.
    pub fn pending_deletes(&self) -> usize {
        self.delta.deleted_rows()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// Validate, merge and publish the batch as the next epoch (see the
    /// module docs for the pipeline). A lost first-committer-wins race
    /// returns the retryable [`CommitError::Conflict`]; on any error nothing
    /// is published and the batch is discarded. An empty batch is a no-op
    /// that publishes nothing.
    pub fn commit(self) -> std::result::Result<IngestReport, CommitError> {
        self.session.commit_delta(self.delta, Some(self.base_epoch))
    }

    /// [`IngestBatch::commit`], re-staged automatically on retryable losses.
    ///
    /// A lost first-committer-wins race ([`CommitError::Conflict`]) or an
    /// evicted validation window ([`CommitError::StaleBase`]) sleeps per the
    /// [`RetryPolicy`]'s jittered exponential backoff, rebases the same
    /// delta onto the then-current epoch and commits again, up to
    /// `policy.max_retries` times. The rebased delta revalidates in full, so
    /// a retry that *still* overlaps a newer commit loses again rather than
    /// clobbering it. Non-retryable errors and exhausted budgets return the
    /// last error unchanged.
    pub fn commit_with_retry(
        self,
        policy: RetryPolicy,
    ) -> std::result::Result<IngestReport, CommitError> {
        let IngestBatch {
            session,
            mut base_epoch,
            delta,
        } = self;
        let mut rng = rand::rngs::StdRng::seed_from_u64(policy.seed);
        let mut attempt = 0u32;
        loop {
            match session.commit_delta(delta.clone(), Some(base_epoch)) {
                Err(e) if e.is_conflict() && attempt < policy.max_retries => {
                    attempt += 1;
                    // Full jitter: uniform in [0, min(base·2ⁿ⁻¹, max)].
                    let cap = policy
                        .base_delay
                        .saturating_mul(1u32 << (attempt - 1).min(20))
                        .min(policy.max_delay);
                    let nanos = u64::try_from(cap.as_nanos()).unwrap_or(u64::MAX);
                    if nanos > 0 {
                        std::thread::sleep(Duration::from_nanos(rng.gen_range(0..nanos + 1)));
                    }
                    // Rebase: everything the winners published is now part
                    // of the base this delta validates (and applies) against.
                    base_epoch = session.epoch();
                }
                done => return done,
            }
        }
    }
}

impl Session {
    /// The commit pipeline shared by live batches and WAL recovery replay.
    ///
    /// `base_epoch: Some(e)` is a live commit: first-committer-wins
    /// validation against everything published after `e`, and (on a durable
    /// session) a WAL record. `None` is recovery replay: the record is
    /// already in the log and, by construction, conflict-free in log order.
    pub(crate) fn commit_delta(
        &self,
        delta: DeltaSet,
        base_epoch: Option<u64>,
    ) -> std::result::Result<IngestReport, CommitError> {
        let start = Instant::now();
        if delta.is_empty() {
            let state = self.state();
            return Ok(IngestReport {
                epoch: state.epoch,
                inserted: 0,
                deleted: 0,
                changed_fraction: 0.0,
                tables: Vec::new(),
                stats: StatsRefresh::Incremental {
                    retained: state.glogue.cached_patterns(),
                    evicted: 0,
                },
                stats_time: Duration::ZERO,
                wal_time: Duration::ZERO,
                commit_time: start.elapsed(),
            });
        }

        // ---- validate-and-publish critical section -----------------------
        let writer = self.write_lock.lock();
        let state = self.state();

        // First committer wins: abort before doing any merge work if a
        // commit since our base epoch touched an overlapping primary key.
        let write_set = match base_epoch {
            Some(base) => {
                let ws = delta.write_set(&state.db)?;
                if let Err(e) = self.validate_write_set(base, &ws, state.epoch) {
                    self.metrics().record_ingest_conflict();
                    return Err(e);
                }
                Some(ws)
            }
            None => None,
        };

        let (mut db, summary) = delta.apply(&state.db)?;
        let view = Arc::new(relgo_delta::refresh_view(&state.view, &mut db, &summary)?);
        let changed_fraction = summary.changed_fraction(&state.db);
        let (changed_v, changed_e) = view.changed_label_flags(summary.map());

        let stats_start = Instant::now();
        let (glogue, stats) = if changed_fraction <= self.options().stats_staleness {
            let before = state.glogue.cached_patterns();
            let refreshed =
                GLogue::refreshed(&state.glogue, Arc::clone(&view), &changed_v, &changed_e)?;
            let retained = refreshed.cached_patterns();
            (
                Arc::new(refreshed),
                StatsRefresh::Incremental {
                    retained,
                    evicted: before - retained,
                },
            )
        } else {
            let (k, stride) = self.statistics_tuning();
            (
                Arc::new(GLogue::with_threads(
                    Arc::clone(&view),
                    k,
                    stride,
                    self.options().threads,
                )?),
                StatsRefresh::Full,
            )
        };
        let stats_time = stats_start.elapsed();

        let epoch = state.epoch + 1;
        // Stage the WAL record last among the fallible steps and just
        // before publish: staging is pure memory (it cannot fail), so a
        // failed commit never leaves a phantom record, and a staged record
        // is always followed by its publish. Recovery replay (`None`)
        // must not re-append what it is replaying — and on a freshly
        // recovered session the log is installed only after replay anyway.
        let wal_start = Instant::now();
        let wal_seq = match base_epoch {
            Some(_) => self.wal().map(|w| w.append(epoch, &delta)),
            None => None,
        };
        let mut wal_time = match wal_seq {
            Some(_) => wal_start.elapsed(),
            None => Duration::ZERO,
        };
        self.publish(SessionState {
            epoch,
            db: Arc::new(db),
            view,
            glogue,
        });
        if let Some(ws) = write_set {
            self.record_commit(epoch, ws);
        }
        drop(writer);
        // ---- end critical section ----------------------------------------

        // Every cached plan and pinned prepared statement was costed
        // against the previous epoch's statistics: stale from now on.
        self.plan_cache().invalidate_all();
        // Group commit: concurrent committers that staged records while we
        // held the writer lock ride along on one fsync (or we ride theirs).
        if let Some(seq) = wal_seq {
            // The epoch is already visible; a durability failure here means
            // the log may lack a suffix of published commits (the same
            // window a crash exposes), so surface it loudly.
            let sync_start = Instant::now();
            self.wal()
                .expect("wal_seq implies a wal")
                .sync_through(seq)?;
            wal_time += sync_start.elapsed();
            self.metrics()
                .record_stage(relgo_metrics::trace::Stage::WalAppend, wal_time);
        }
        let commit_time = start.elapsed();
        let rows = summary.inserted_rows() + summary.deleted_rows();
        // Recovery replay (no base epoch) re-runs the commit pipeline but is
        // not a live commit: count the rows and latency, not the commit.
        match base_epoch {
            Some(_) => self.metrics().record_ingest_commit(rows, commit_time),
            None => self.metrics().record_recovery_replay(rows, commit_time),
        }
        // The commit is durable (or the session is in-memory): a live commit
        // may now trigger the auto-checkpoint policy. Replay never does —
        // recovery checkpoints once at the end if at all, not per record.
        if base_epoch.is_some() {
            self.maybe_auto_checkpoint(epoch);
        }
        Ok(IngestReport {
            epoch,
            inserted: summary.inserted_rows(),
            deleted: summary.deleted_rows(),
            changed_fraction,
            tables: summary.tables().iter().map(|s| s.to_string()).collect(),
            stats,
            stats_time,
            wal_time,
            commit_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionOptions;
    use relgo_core::OptimizerMode;
    use relgo_workloads::snb_queries;

    #[test]
    fn commit_publishes_next_epoch_and_invalidates() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let person = session.db().table("Person").unwrap().num_rows();
        let q = snb_queries::ic1(&schema, 1, 0).unwrap();
        let before_rows = session.run(&q, OptimizerMode::RelGo).unwrap().table;
        session.run_cached(&q, OptimizerMode::RelGo).unwrap();

        let mut batch = session.begin_ingest();
        assert_eq!(batch.base_epoch(), 0);
        let next_id = person as i64 * 10; // ids are 0..n, so this is fresh
        batch
            .insert_row(
                "Person",
                vec![next_id.into(), "Zed".into(), Value::Date(17_000)],
            )
            .unwrap();
        batch
            .insert_edge(
                "Knows",
                vec![
                    900_000.into(),
                    0.into(),
                    next_id.into(),
                    Value::Date(17_001),
                ],
            )
            .unwrap();
        assert_eq!(batch.pending_inserts(), 2);
        let report = batch.commit().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(session.epoch(), 1);
        assert_eq!(report.inserted, 2);
        assert_eq!(report.tables, vec!["Knows", "Person"]);
        assert!(matches!(report.stats, StatsRefresh::Incremental { .. }));

        // Data is visible, cached plans were invalidated (miss → reopt).
        assert_eq!(session.db().table("Person").unwrap().num_rows(), person + 1);
        let out = session.run_cached(&q, OptimizerMode::RelGo).unwrap();
        assert!(!out.cached, "commit staled the cached plan");
        // IC1 person 0, 1 hop: the new friend shows up.
        assert_eq!(
            out.table.num_rows(),
            before_rows.num_rows() + 1,
            "ingested knows edge is served"
        );
    }

    #[test]
    fn snapshot_pins_the_old_epoch() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        let snap = session.snapshot();
        let person = snap.db().table("Person").unwrap().num_rows();

        let mut batch = session.begin_ingest();
        batch
            .insert_row(
                "Person",
                vec![777_000.into(), "Ghost".into(), Value::Date(17_000)],
            )
            .unwrap();
        // Uncommitted rows are invisible to everyone.
        assert_eq!(session.db().table("Person").unwrap().num_rows(), person);
        batch.commit().unwrap();

        // Committed rows are invisible to the pinned snapshot…
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.db().table("Person").unwrap().num_rows(), person);
        // …and visible to the live session.
        assert_eq!(session.epoch(), 1);
        assert_eq!(session.db().table("Person").unwrap().num_rows(), person + 1);
    }

    #[test]
    fn staleness_threshold_forces_full_rebuild() {
        let options = SessionOptions {
            stats_staleness: 0.0,
            ..SessionOptions::default()
        };
        let (session, schema) = Session::snb_with(0.03, 42, options).unwrap();
        // Warm a count, then commit with staleness 0: everything rebuilt.
        session
            .run(
                &snb_queries::ic1(&schema, 1, 0).unwrap(),
                OptimizerMode::RelGo,
            )
            .unwrap();
        let mut batch = session.begin_ingest();
        batch
            .insert_row(
                "Person",
                vec![777_000.into(), "Zed".into(), Value::Date(17_000)],
            )
            .unwrap();
        let report = batch.commit().unwrap();
        assert_eq!(report.stats, StatsRefresh::Full);
        assert_eq!(session.glogue().cached_patterns(), 0);
    }

    #[test]
    fn commit_validation_failures_publish_nothing() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        // Duplicate primary key.
        let mut batch = session.begin_ingest();
        batch
            .insert_row("Person", vec![0.into(), "Dup".into(), Value::Date(17_000)])
            .unwrap();
        let err = batch.commit().unwrap_err();
        assert!(matches!(err, CommitError::Failed(_)), "{err}");
        assert!(!err.is_conflict());
        assert_eq!(session.epoch(), 0);
        // Dangling edge insert.
        let mut batch = session.begin_ingest();
        batch
            .insert_edge(
                "Knows",
                vec![
                    900_000.into(),
                    0.into(),
                    999_999.into(),
                    Value::Date(17_001),
                ],
            )
            .unwrap();
        assert!(batch.commit().is_err());
        assert_eq!(session.epoch(), 0);
        // Deleting a vertex still referenced by edges.
        let mut batch = session.begin_ingest();
        batch.delete_row("Person", 0).unwrap();
        assert!(batch.commit().is_err());
        assert_eq!(session.epoch(), 0);
        // insert_edge polices the mapping.
        let mut batch = session.begin_ingest();
        assert!(batch.insert_edge("Person", vec![1.into()]).is_err());
        // An empty batch is a no-op.
        let report = batch.commit().unwrap();
        assert_eq!(report.epoch, 0);
        assert_eq!(session.epoch(), 0);
    }

    #[test]
    fn concurrent_disjoint_batches_both_commit() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        // Two batches open concurrently against epoch 0.
        let mut a = session.begin_ingest();
        let mut b = session.begin_ingest();
        a.insert_row(
            "Person",
            vec![800_000.into(), "A".into(), Value::Date(17_000)],
        )
        .unwrap();
        b.insert_row(
            "Person",
            vec![800_001.into(), "B".into(), Value::Date(17_000)],
        )
        .unwrap();
        let ra = a.commit().unwrap();
        assert_eq!(ra.epoch, 1);
        // b's base epoch (0) is behind, but its write-set is disjoint from
        // a's: first-committer-wins validation passes.
        let rb = b.commit().unwrap();
        assert_eq!(rb.epoch, 2);
        assert_eq!(session.epoch(), 2);
    }

    #[test]
    fn overlapping_batch_loses_with_typed_conflict_and_retry_succeeds() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        let key = 800_000i64;
        let mut winner = session.begin_ingest();
        let mut loser = session.begin_ingest();
        winner
            .insert_row(
                "Person",
                vec![key.into(), "Winner".into(), Value::Date(17_000)],
            )
            .unwrap();
        // The loser deletes the same key it cannot yet see — without MVCC
        // validation this would silently erase the winner's row.
        loser.delete_row("Person", key).unwrap();
        winner.commit().unwrap();
        let err = loser.commit().unwrap_err();
        assert!(err.is_conflict());
        assert_eq!(
            err,
            CommitError::Conflict {
                table: "Person".to_string(),
                key,
                committed_epoch: 1,
            }
        );
        assert!(err.to_string().contains("Person key 800000"));
        assert_eq!(session.epoch(), 1, "losing batch published nothing");

        // Retrying against the current epoch sees the winner's row and
        // commits cleanly.
        let mut retry = session.begin_ingest();
        assert_eq!(retry.base_epoch(), 1);
        retry.delete_row("Person", key).unwrap();
        let report = retry.commit().unwrap();
        assert_eq!((report.epoch, report.deleted), (2, 1));
    }

    #[test]
    fn commit_with_retry_rebases_past_a_conflict() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        let key = 800_000i64;
        let mut winner = session.begin_ingest();
        let mut loser = session.begin_ingest();
        winner
            .insert_row(
                "Person",
                vec![key.into(), "Winner".into(), Value::Date(17_000)],
            )
            .unwrap();
        loser.delete_row("Person", key).unwrap();
        winner.commit().unwrap();
        // The plain commit would lose first-committer-wins; the retry
        // rebases onto epoch 1 where the winner's row exists and deletes it.
        let report = loser
            .commit_with_retry(RetryPolicy {
                base_delay: Duration::ZERO,
                ..RetryPolicy::default()
            })
            .unwrap();
        assert_eq!((report.epoch, report.deleted), (2, 1));
        assert_eq!(session.epoch(), 2);
        // Both the loss and the eventual success were counted.
        let snap = session.metrics().registry().snapshot();
        assert_eq!(snap.counter_sum("relgo_ingest_conflicts_total"), 1);
        assert_eq!(snap.counter_sum("relgo_ingest_commits_total"), 2);
    }

    #[test]
    fn commit_with_retry_rebases_past_a_stale_base() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        let mut old = session.begin_ingest();
        old.insert_row(
            "Person",
            vec![800_000.into(), "Old".into(), Value::Date(17_000)],
        )
        .unwrap();
        for (i, name) in [(1i64, "X"), (2, "Y")] {
            let mut b = session.begin_ingest();
            b.insert_row(
                "Person",
                vec![(900_000 + i).into(), name.into(), Value::Date(17_000)],
            )
            .unwrap();
            b.commit().unwrap();
        }
        session.forget_oldest_commits(2);
        // First attempt hits StaleBase; the rebase lands at epoch 2, inside
        // the retained window, and the disjoint delta commits.
        let report = old
            .commit_with_retry(RetryPolicy {
                base_delay: Duration::ZERO,
                ..RetryPolicy::default()
            })
            .unwrap();
        assert_eq!((report.epoch, report.inserted), (3, 1));
    }

    #[test]
    fn commit_with_retry_exhausted_budget_returns_the_conflict() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        let key = 800_000i64;
        let mut winner = session.begin_ingest();
        let mut loser = session.begin_ingest();
        winner
            .insert_row(
                "Person",
                vec![key.into(), "Winner".into(), Value::Date(17_000)],
            )
            .unwrap();
        loser.delete_row("Person", key).unwrap();
        winner.commit().unwrap();
        // Zero retries: behaves exactly like the plain commit.
        let err = loser
            .commit_with_retry(RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            })
            .unwrap_err();
        assert!(err.is_conflict());
        assert_eq!(session.epoch(), 1);
    }

    #[test]
    fn commit_with_retry_does_not_retry_validation_failures() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        let mut batch = session.begin_ingest();
        batch
            .insert_row("Person", vec![0.into(), "Dup".into(), Value::Date(17_000)])
            .unwrap();
        let err = batch.commit_with_retry(RetryPolicy::default()).unwrap_err();
        assert!(matches!(err, CommitError::Failed(_)), "{err}");
        assert_eq!(session.epoch(), 0);
    }

    #[test]
    fn stale_base_is_conservatively_rejected() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        // Open a batch at epoch 0, then let two disjoint commits land.
        let mut old = session.begin_ingest();
        old.insert_row(
            "Person",
            vec![800_000.into(), "Old".into(), Value::Date(17_000)],
        )
        .unwrap();
        for (i, name) in [(1i64, "X"), (2, "Y")] {
            let mut b = session.begin_ingest();
            b.insert_row(
                "Person",
                vec![(900_000 + i).into(), name.into(), Value::Date(17_000)],
            )
            .unwrap();
            b.commit().unwrap();
        }
        // Simulate commit-log eviction past the old batch's base epoch.
        session.forget_oldest_commits(2);
        let err = old.commit().unwrap_err();
        assert!(err.is_conflict(), "stale base must be retryable: {err}");
        assert_eq!(
            err,
            CommitError::StaleBase {
                base_epoch: 0,
                retained_from: 2,
            }
        );
        assert_eq!(session.epoch(), 2);
    }

    #[test]
    fn deleting_an_unreferenced_edge_row_works() {
        use relgo_core::SpjmBuilder;
        use relgo_pattern::PatternBuilder;
        use relgo_storage::ScalarExpr;

        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let likes = session.db().table("Likes").unwrap().num_rows();
        // One row per like of person 0: p -[Likes]-> m, p_id = 0.
        let q = {
            let mut pb = PatternBuilder::new();
            let p = pb.vertex("p", schema.person);
            let m = pb.vertex("m", schema.message);
            pb.edge(p, m, schema.likes).unwrap();
            let mut b = SpjmBuilder::new(pb.build().unwrap());
            let p_id = b.vertex_column(p, 0, "p_id");
            let m_id = b.vertex_column(m, 0, "m_id");
            b.select(ScalarExpr::col_eq(p_id, 0i64));
            b.project(&[m_id]);
            b.build()
        };
        let before = session.run(&q, OptimizerMode::RelGo).unwrap().table;
        assert!(before.num_rows() > 0, "person 0 likes something");
        // Delete one of person 0's likes (edge rows are freely deletable).
        let key = {
            let db = session.db();
            let t = db.table("Likes").unwrap();
            (0..t.num_rows() as u32)
                .find(|&r| t.value(r, 1) == Value::Int(0))
                .map(|r| t.value(r, 0).as_int().unwrap())
                .expect("person 0 likes something")
        };
        let mut batch = session.begin_ingest();
        batch.delete_row("Likes", key).unwrap();
        let report = batch.commit().unwrap();
        assert_eq!(report.deleted, 1);
        assert_eq!(session.db().table("Likes").unwrap().num_rows(), likes - 1);
        let after = session.run(&q, OptimizerMode::RelGo).unwrap();
        assert_eq!(after.table.num_rows(), before.num_rows() - 1);
    }
}
