//! Prepared-statement handles: the serving fast path above the plan cache.
//!
//! [`Session::run_cached`] still pays per query for parameterization (the
//! template descriptor is a rendered string) and a cache probe before it
//! can rebind. [`Session::prepare`] hoists all of that to preparation time:
//! the handle captures the parameterized template, its [`PlanKey`], and a
//! **pinned** cache entry ([`relgo_cache::PinnedPlan`]), so
//! [`PreparedStatement::execute`] only validates the binding vector against
//! the slot signature and substitutes literals into the pinned skeleton —
//! no parse, no `parameterize`, no cache probe.
//!
//! The pin owns its skeleton: LRU eviction of the underlying cache entry
//! never breaks a handle. Statistics-version invalidation still applies —
//! every execute checks the pin against the cache's version and, when
//! stale, transparently re-optimizes (with the fresh bindings, via
//! [`relgo_core::bind_query`]), re-inserts, and re-pins. The
//! `prepared_hits` / `prepared_invalidations` cache metrics count the two
//! outcomes.
//!
//! [`PreparedStatement::execute_batch`] rebinds N binding vectors against
//! the one skeleton and drives them through
//! [`relgo_exec::execute_plan_batch`]: the instances share one
//! `BatchState`, amortizing literal-independent per-query setup
//! (hash-fallback adjacency multimaps, structural predicate masks) across
//! the batch. Batch results are bit-identical to per-query
//! [`PreparedStatement::execute`] calls.

use crate::observe::QueryPath;
use crate::session::{QueryOutcome, Session};
use parking_lot::Mutex;
use relgo_cache::PinnedPlan;
use relgo_common::morsel::TimeBudget;
use relgo_common::{Result, Value};
use relgo_core::{
    bind_query, parameterize, rebind_plan, validate_bindings, OptStats, OptimizerMode,
    PhysicalPlan, PlanKey, SpjmQuery,
};
use relgo_exec::{PlanReport, ProfileMode};
use relgo_metrics::trace::{QueryTrace, Stage, StageTimings};
use relgo_storage::Table;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A prepared query handle bound to a [`Session`]. Cheap to share across
/// serving threads (`&PreparedStatement` is `Send + Sync`); all interior
/// state is the pinned skeleton behind a mutex.
pub struct PreparedStatement<'a> {
    session: &'a Session,
    mode: OptimizerMode,
    /// The instance `prepare` captured (stale re-optimization rebinding
    /// source).
    query: SpjmQuery,
    /// The instance's own literals, in slot order.
    params: Vec<Value>,
    key: PlanKey,
    slot_sig: String,
    pinned: Mutex<PinnedPlan>,
}

/// The result of one [`PreparedStatement::execute_batch`] call.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One result table per binding vector, in input order — bit-identical
    /// to executing each binding through [`PreparedStatement::execute`].
    pub tables: Vec<Table>,
    /// Summed validate + rebind (or re-optimize) statistics for the batch.
    pub opt: OptStats,
    /// Wall time of the shared batched execution.
    pub exec_time: Duration,
    /// How many of the batch's plans came straight from the pinned
    /// skeleton (the rest re-optimized: stale pin or ambiguous rebind).
    pub pinned_queries: usize,
    /// Merged per-stage lifecycle timings of the whole batch (also recorded
    /// into the session's metrics registry, per-query-share).
    pub trace: StageTimings,
}

impl Session {
    /// Prepare a query template for repeated execution: parameterize once,
    /// resolve the plan through the cache (probing it — a miss optimizes
    /// and inserts like [`Session::run_cached`]), and pin the skeleton.
    /// Subsequent [`PreparedStatement::execute`] calls only rebind.
    pub fn prepare(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<PreparedStatement<'_>> {
        let pq = parameterize(query);
        let key = pq.key(mode);
        let cache = self.plan_cache();
        let pinned = if let Some((plan, cached_params)) = cache.lookup(&key) {
            cache.pin(plan, cached_params)
        } else {
            // Version snapshot taken before optimizing: a racing
            // `rebuild_statistics` leaves the entry and pin born stale
            // (next execute re-optimizes) rather than falsely current.
            let version = cache.stats_version();
            let (plan, opt) = self.optimize(query, mode)?;
            let plan = Arc::new(plan);
            // Like `run_cached`: a timed-out fallback plan is not worth
            // pinning for every future instance — but the handle still
            // uses it until the next statistics bump.
            if !opt.timed_out {
                cache.insert_at(key.clone(), Arc::clone(&plan), pq.params.clone(), version);
            }
            cache.pin_at(plan, pq.params.clone(), version)
        };
        Ok(PreparedStatement {
            session: self,
            mode,
            query: query.clone(),
            params: pq.params,
            key,
            slot_sig: pq.slot_sig,
            pinned: Mutex::new(pinned),
        })
    }
}

impl PreparedStatement<'_> {
    /// The optimizer mode the statement was prepared under.
    pub fn mode(&self) -> OptimizerMode {
        self.mode
    }

    /// The plan-cache key of the captured template.
    pub fn key(&self) -> &PlanKey {
        &self.key
    }

    /// The template's parameter-slot signature (one type tag per slot).
    pub fn slot_sig(&self) -> &str {
        &self.slot_sig
    }

    /// The literals the statement was prepared with, in slot order.
    pub fn params(&self) -> &[Value] {
        &self.params
    }

    /// Whether the pinned skeleton is still planned under the session's
    /// current statistics version (`false` means the next execute will
    /// transparently re-optimize).
    pub fn is_current(&self) -> bool {
        self.session
            .plan_cache()
            .pin_is_current(&self.pinned.lock())
    }

    /// Resolve one binding vector to an executable plan: the pinned
    /// skeleton rebound (the hot path), or a transparent re-optimize when
    /// the pin is stale / the rebind is ambiguous. Returns the plan, the
    /// optimizer's visited count (0 on the pinned path), and whether the
    /// pinned path served it.
    ///
    /// The pin mutex is held only to snapshot (or replace) the pin — the
    /// rebind and any re-optimization run outside it, so concurrent
    /// executes on one shared handle do not serialize on the hot path.
    fn rebound_plan(
        &self,
        bindings: &[Value],
        trace: &mut QueryTrace,
    ) -> Result<(Arc<PhysicalPlan>, u64, bool)> {
        let cache = self.session.plan_cache();
        let snapshot = {
            let pinned = self.pinned.lock();
            cache.pin_is_current(&pinned).then(|| pinned.clone())
        };
        if let Some(pin) = snapshot {
            match trace.time(Stage::Rebind, || {
                rebind_plan(&pin.plan, &pin.params, bindings)
            }) {
                Ok(plan) => {
                    cache.note_prepared_hit();
                    return Ok((Arc::new(plan), 0, true));
                }
                // Ambiguous rebind (slots that shared a value in the pin
                // diverged): fall through to a fresh optimization, like
                // `run_cached` does.
                Err(_) => cache.note_rebind_failure(),
            }
        } else {
            cache.note_prepared_invalidation();
        }
        // Version snapshot before optimizing (see `Session::run_cached`):
        // a racing rebuild leaves the new entry and pin born stale.
        let version = cache.stats_version();
        let query = trace.time(Stage::Parameterize, || bind_query(&self.query, bindings))?;
        let (plan, opt) =
            trace.time(Stage::Optimize, || self.session.optimize(&query, self.mode))?;
        let plan = Arc::new(plan);
        if !opt.timed_out {
            cache.insert_at(
                self.key.clone(),
                Arc::clone(&plan),
                bindings.to_vec(),
                version,
            );
        }
        *self.pinned.lock() = cache.pin_at(Arc::clone(&plan), bindings.to_vec(), version);
        Ok((plan, opt.plans_visited, false))
    }

    /// Execute the statement with fresh literal bindings (slot order, as
    /// produced by `parameterize` — workload templates expose matching
    /// generators via `QueryTemplate::bindings`). The hot path is binding
    /// validation + literal rebinding only; `outcome.cached` reports
    /// whether the pinned skeleton served it.
    pub fn execute(&self, bindings: &[Value]) -> Result<QueryOutcome> {
        self.execute_with_deadline(bindings, None)
    }

    /// [`PreparedStatement::execute`] under an optional wall-clock budget:
    /// execution checks the deadline at every morsel boundary and aborts
    /// with `DeadlineExceeded` on expiry.
    pub fn execute_with_deadline(
        &self,
        bindings: &[Value],
        deadline: Option<TimeBudget>,
    ) -> Result<QueryOutcome> {
        Ok(self.execute_traced(bindings, deadline, ProfileMode::Off)?.0)
    }

    /// [`PreparedStatement::execute_with_deadline`] with operator-level
    /// profiling: result rows are bit-identical to the unprofiled path, and
    /// the returned [`PlanReport`] joins the (possibly re-optimized) plan's
    /// estimates with what execution measured.
    pub fn execute_profiled(
        &self,
        bindings: &[Value],
        deadline: Option<TimeBudget>,
    ) -> Result<(QueryOutcome, PlanReport)> {
        let (outcome, report) = self.execute_traced(bindings, deadline, ProfileMode::On)?;
        Ok((outcome, report.expect("profiling was on")))
    }

    fn execute_traced(
        &self,
        bindings: &[Value],
        deadline: Option<TimeBudget>,
        profile: ProfileMode,
    ) -> Result<(QueryOutcome, Option<PlanReport>)> {
        let mut trace = QueryTrace::start();
        let opt_start = Instant::now();
        trace.time(Stage::Parse, || validate_bindings(&self.slot_sig, bindings))?;
        let (plan, plans_visited, from_pin) = self.rebound_plan(bindings, &mut trace)?;
        let opt = OptStats {
            elapsed: opt_start.elapsed(),
            plans_visited,
            timed_out: false,
        };
        let start = Instant::now();
        let (table, report) = trace.time(Stage::Execute, || {
            self.session
                .execute_traced_with_deadline(&plan, self.mode, deadline, profile)
        })?;
        let exec_time = start.elapsed();
        let trace = trace.finish();
        self.session
            .metrics()
            .record_query(QueryPath::Prepared, &trace);
        Ok((
            QueryOutcome {
                table,
                opt,
                exec_time,
                cached: from_pin,
                trace,
            },
            report,
        ))
    }

    /// Execute N binding vectors as one batch: every vector is validated
    /// and rebound against the same skeleton, then all instances run
    /// through a shared [`relgo_exec::BatchState`] so per-query setup is
    /// amortized. `tables[i]` is bit-identical to
    /// `self.execute(&batch[i])?.table`.
    pub fn execute_batch(&self, batch: &[Vec<Value>]) -> Result<BatchOutcome> {
        let mut trace = QueryTrace::start();
        let opt_start = Instant::now();
        // Validate every vector before rebinding any: a malformed binding
        // rejects the whole batch without touching the prepared metrics.
        trace.time(Stage::Parse, || {
            batch
                .iter()
                .try_for_each(|bindings| validate_bindings(&self.slot_sig, bindings))
        })?;
        let mut plans = Vec::with_capacity(batch.len());
        let mut plans_visited = 0u64;
        let mut pinned_queries = 0usize;
        for bindings in batch {
            let (plan, visited, from_pin) = self.rebound_plan(bindings, &mut trace)?;
            plans_visited += visited;
            pinned_queries += usize::from(from_pin);
            plans.push(plan);
        }
        let opt = OptStats {
            elapsed: opt_start.elapsed(),
            plans_visited,
            timed_out: false,
        };
        let start = Instant::now();
        // Pin one epoch for the whole batch: a racing ingest commit must
        // not split the batch across two data versions.
        let state = self.session.state();
        let tables = trace.time(Stage::Execute, || {
            relgo_exec::execute_plan_batch(
                &plans,
                &state.view,
                &state.db,
                &self.session.exec_config(self.mode),
            )
        })?;
        let exec_time = start.elapsed();
        let trace = trace.finish();
        self.session
            .metrics()
            .record_queries(QueryPath::Batched, tables.len(), &trace);
        Ok(BatchOutcome {
            tables,
            opt,
            exec_time,
            pinned_queries,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionOptions;
    use relgo_workloads::templates::snb_templates;

    #[test]
    fn prepared_execute_matches_run_cached_and_skips_parameterize() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let templates = snb_templates(&schema);
        for t in &templates {
            let stmt = session
                .prepare(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
                .unwrap();
            for draw in [1u64, 9] {
                let bindings = t.bindings(draw).unwrap();
                let out = stmt.execute(&bindings).unwrap();
                assert!(out.cached, "{} draw {draw} served from the pin", t.name());
                assert_eq!(out.opt.plans_visited, 0);
                let reference = session
                    .run_cached(&t.instantiate(draw).unwrap(), OptimizerMode::RelGo)
                    .unwrap();
                assert_eq!(
                    out.table.sorted_rows(),
                    reference.table.sorted_rows(),
                    "{} draw {draw}",
                    t.name()
                );
            }
        }
        let m = session.cache_metrics();
        assert_eq!(m.prepared_hits, 2 * templates.len() as u64, "{m:?}");
        assert_eq!(m.prepared_invalidations, 0, "{m:?}");
    }

    #[test]
    fn execute_rejects_malformed_bindings() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let t = &snb_templates(&schema)[1]; // IC2: slots (Int, Date)
        let stmt = session
            .prepare(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
            .unwrap();
        assert_eq!(stmt.slot_sig(), "id");
        assert!(stmt.execute(&[Value::Int(1)]).is_err(), "arity");
        assert!(
            stmt.execute(&[Value::Date(1), Value::Int(2)]).is_err(),
            "types"
        );
        let before = session.cache_metrics();
        assert!(
            stmt.execute(&[Value::Int(1), Value::Date(16_000)])
                .unwrap()
                .cached
        );
        assert_eq!(session.cache_metrics().since(&before).prepared_hits, 1);
    }

    #[test]
    fn batch_is_bit_identical_to_per_query_execute() {
        let options = SessionOptions {
            threads: 2,
            ..SessionOptions::default()
        };
        let (session, schema) = Session::snb_with(0.03, 42, options).unwrap();
        for t in &snb_templates(&schema) {
            let stmt = session
                .prepare(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
                .unwrap();
            let batch: Vec<Vec<Value>> = (1..=6).map(|d| t.bindings(d).unwrap()).collect();
            let out = stmt.execute_batch(&batch).unwrap();
            assert_eq!(out.tables.len(), batch.len());
            assert_eq!(out.pinned_queries, batch.len());
            for (bindings, table) in batch.iter().zip(&out.tables) {
                let single = stmt.execute(bindings).unwrap().table;
                assert_eq!(single.num_rows(), table.num_rows(), "{}", t.name());
                for r in 0..single.num_rows() as u32 {
                    assert_eq!(single.row(r), table.row(r), "{} row {r}", t.name());
                }
            }
        }
    }
}
