//! # RelGo-RS
//!
//! A converged relational–graph optimization framework for SQL/PGQ-style
//! SPJM queries — a from-scratch Rust reproduction of *"Towards a Converged
//! Relational-Graph Optimization Framework"* (Lou et al., SIGMOD 2024).
//!
//! ## Quickstart
//!
//! ```
//! use relgo::prelude::*;
//!
//! // 1. Relational tables + RGMapping → a session with graph index and
//! //    GLogue statistics.
//! let (session, schema) = Session::snb(0.05, 42).unwrap();
//!
//! // 2. An SPJM query (the paper's Fig. 1 example).
//! let query = relgo::workloads::snb_queries::fig1_example(&schema, "Tom").unwrap();
//!
//! // 3. Optimize + execute under any of the compared systems.
//! let outcome = session.run(&query, OptimizerMode::RelGo).unwrap();
//! let baseline = session.run(&query, OptimizerMode::DuckDbLike).unwrap();
//! assert_eq!(outcome.table.sorted_rows(), baseline.table.sorted_rows());
//! ```
//!
//! The crate re-exports the full stack: storage substrate, RGMapping and
//! graph indexes, pattern machinery, GLogue statistics, the converged
//! optimizer, the execution engine, dataset generators and the benchmark
//! workloads.

pub mod ingest;
pub mod observe;
pub mod prepared;
pub mod serve;
pub mod session;

pub use relgo_cache as cache;
pub use relgo_common as common;
pub use relgo_core as core;
pub use relgo_datagen as datagen;
pub use relgo_delta as delta;
pub use relgo_exec as exec;
pub use relgo_glogue as glogue;
pub use relgo_graph as graph;
pub use relgo_metrics as metrics;
pub use relgo_pattern as pattern;
pub use relgo_storage as storage;
pub use relgo_workloads as workloads;

pub use ingest::{CommitError, IngestBatch, IngestReport, RetryPolicy, StatsRefresh};
pub use observe::{ObservabilitySnapshot, QueryPath, SessionMetrics};
pub use prepared::{BatchOutcome, PreparedStatement};
pub use relgo_delta::checkpoint::{CheckpointCrash, CheckpointStore};
pub use relgo_delta::wal::{Wal, WalOptions, WalStats};
pub use serve::{replay_concurrent, replay_concurrent_with, ReplayReport, ServeMode};
pub use session::{
    CheckpointPolicy, CheckpointReport, CheckpointRequest, ExplainAnalyze, QueryOutcome,
    RecoveryReport, Session, SessionOptions, Snapshot,
};

/// The convenient all-in-one import.
pub mod prelude {
    pub use crate::ingest::{CommitError, IngestBatch, IngestReport, RetryPolicy, StatsRefresh};
    pub use crate::observe::{ObservabilitySnapshot, QueryPath, SessionMetrics};
    pub use crate::prepared::{BatchOutcome, PreparedStatement};
    pub use crate::serve::{replay_concurrent, replay_concurrent_with, ReplayReport, ServeMode};
    pub use crate::session::{
        CheckpointPolicy, CheckpointReport, CheckpointRequest, ExplainAnalyze, QueryOutcome,
        RecoveryReport, Session, SessionOptions, Snapshot,
    };
    pub use relgo_cache::{CacheConfig, MetricsSnapshot, PinnedPlan, PlanCache};
    pub use relgo_common::morsel::TimeBudget;
    pub use relgo_common::{DataType, RelGoError, Result, Value};
    pub use relgo_core::{OptStats, OptimizerMode, PhysicalPlan, SpjmBuilder, SpjmQuery};
    pub use relgo_delta::wal::{WalOptions, WalStats};
    pub use relgo_exec::{PlanReport, ProfileMode};
    pub use relgo_graph::{GraphView, RGMapping};
    pub use relgo_pattern::{MatchSemantics, Pattern, PatternBuilder};
    pub use relgo_storage::table::table_of;
    pub use relgo_storage::{BinaryOp, Database, ScalarExpr, Table};
    pub use relgo_workloads::job_queries::ImdbSchema;
    pub use relgo_workloads::snb_queries::SnbSchema;
    pub use relgo_workloads::templates::QueryTemplate;
}
