//! The session's observability layer: one [`SessionMetrics`] registry that
//! every serving path records into, and [`ObservabilitySnapshot`] — the
//! unified point-in-time view merging the registry with the subsystem
//! counters that predate it (plan-cache metrics, WAL stats, the
//! morsel-scheduler globals) plus the current epoch.
//!
//! Recording is hot-path cheap (relaxed atomics via `relgo-metrics`
//! handles); all folding and string rendering happens at snapshot/scrape
//! time. [`ObservabilitySnapshot::render_prometheus`] is what the
//! `relgo-server` `/metrics` endpoint returns.

use relgo_cache::MetricsSnapshot;
use relgo_common::morsel::MorselCounters;
use relgo_delta::wal::WalStats;
use relgo_exec::PlanReport;
use relgo_metrics::trace::{Stage, StageTimings};
use relgo_metrics::{Counter, Histogram, Registry, Snapshot};
use std::sync::Arc;
use std::time::Duration;

/// Which serving path answered a query — the `path` label of the
/// `relgo_queries_total` / `relgo_query_seconds` series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPath {
    /// [`crate::Session::run`]: full optimize + execute.
    Run,
    /// [`crate::Session::run_cached`]: parameterize + cache probe + rebind.
    Cached,
    /// [`crate::PreparedStatement::execute`]: pinned-skeleton rebind.
    Prepared,
    /// [`crate::PreparedStatement::execute_batch`]: shared batch state.
    Batched,
}

impl QueryPath {
    /// Every path, in declaration order.
    pub const ALL: [QueryPath; 4] = [
        QueryPath::Run,
        QueryPath::Cached,
        QueryPath::Prepared,
        QueryPath::Batched,
    ];

    /// The `path` label value.
    pub fn name(self) -> &'static str {
        match self {
            QueryPath::Run => "run",
            QueryPath::Cached => "cached",
            QueryPath::Prepared => "prepared",
            QueryPath::Batched => "batched",
        }
    }

    fn idx(self) -> usize {
        match self {
            QueryPath::Run => 0,
            QueryPath::Cached => 1,
            QueryPath::Prepared => 2,
            QueryPath::Batched => 3,
        }
    }
}

/// The per-session metrics registry with pre-registered typed handles for
/// every hot path. One instance lives in each [`crate::Session`]; the
/// server shares the same registry for its HTTP-edge series so one scrape
/// covers the whole process.
#[derive(Debug)]
pub struct SessionMetrics {
    registry: Arc<Registry>,
    queries: [Arc<Counter>; 4],
    query_seconds: [Arc<Histogram>; 4],
    stage_seconds: [Arc<Histogram>; 9],
    ingest_commits: Arc<Counter>,
    ingest_conflicts: Arc<Counter>,
    ingest_rows: Arc<Counter>,
    ingest_commit_seconds: Arc<Histogram>,
    recovery_replayed: Arc<Counter>,
    recoveries: Arc<Counter>,
    recovery_checkpoint_loads: Arc<Counter>,
    recovery_checkpoint_fallbacks: Arc<Counter>,
    checkpoints: Arc<Counter>,
    checkpoint_failures: Arc<Counter>,
    checkpoint_seconds: Arc<Histogram>,
}

impl Default for SessionMetrics {
    fn default() -> Self {
        SessionMetrics::new()
    }
}

impl SessionMetrics {
    /// A fresh registry with every session-level series registered.
    pub fn new() -> SessionMetrics {
        let registry = Arc::new(Registry::new());
        let queries = QueryPath::ALL.map(|p| {
            registry.counter_with(
                "relgo_queries_total",
                "Queries completed, by serving path",
                &[("path", p.name())],
            )
        });
        let query_seconds = QueryPath::ALL.map(|p| {
            registry.histogram_with(
                "relgo_query_seconds",
                "End-to-end query latency, by serving path",
                &[("path", p.name())],
            )
        });
        let stage_seconds = Stage::ALL.map(|s| {
            registry.histogram_with(
                "relgo_query_stage_seconds",
                "Per-stage query-lifecycle latency",
                &[("stage", s.name())],
            )
        });
        let ingest_commits = registry.counter(
            "relgo_ingest_commits_total",
            "Ingest batches committed (epoch publishes)",
        );
        let ingest_conflicts = registry.counter(
            "relgo_ingest_conflicts_total",
            "Commits rejected by first-committer-wins validation (retryable)",
        );
        let ingest_rows = registry.counter(
            "relgo_ingest_rows_total",
            "Rows committed by ingest batches (inserts + deletes)",
        );
        let ingest_commit_seconds = registry.histogram(
            "relgo_ingest_commit_seconds",
            "Ingest commit latency (validate + merge + stats + publish + WAL)",
        );
        let recovery_replayed = registry.counter(
            "relgo_recovery_replayed_total",
            "WAL records replayed during crash recovery",
        );
        let recoveries = registry.counter(
            "relgo_recoveries_total",
            "Durable session opens that ran crash recovery",
        );
        let recovery_checkpoint_loads = registry.counter(
            "relgo_recovery_checkpoint_loads_total",
            "Recoveries that started from an on-disk checkpoint",
        );
        let recovery_checkpoint_fallbacks = registry.counter(
            "relgo_recovery_checkpoint_fallbacks_total",
            "Corrupt checkpoint files skipped during recovery (torn-newest fallback)",
        );
        let checkpoints = registry.counter(
            "relgo_checkpoints_total",
            "Checkpoints written (snapshot + WAL compaction + retention)",
        );
        let checkpoint_failures = registry.counter(
            "relgo_checkpoint_failures_total",
            "Checkpoint attempts that failed (the WAL still covers the data)",
        );
        let checkpoint_seconds = registry.histogram(
            "relgo_checkpoint_seconds",
            "Checkpoint latency (snapshot encode + fsync + rename + compaction)",
        );
        SessionMetrics {
            registry,
            queries,
            query_seconds,
            stage_seconds,
            ingest_commits,
            ingest_conflicts,
            ingest_rows,
            ingest_commit_seconds,
            recovery_replayed,
            recoveries,
            recovery_checkpoint_loads,
            recovery_checkpoint_fallbacks,
            checkpoints,
            checkpoint_failures,
            checkpoint_seconds,
        }
    }

    /// The underlying registry (the server registers its HTTP-edge series
    /// here so one scrape covers session + edge).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Record one completed query: bumps the path counter, records the
    /// end-to-end latency, and charges every traced stage to its histogram.
    pub fn record_query(&self, path: QueryPath, timings: &StageTimings) {
        self.record_queries(path, 1, timings);
    }

    /// [`SessionMetrics::record_query`] for a batch that completed `n`
    /// queries under one merged trace: the counter advances by `n`, while
    /// the latency histogram receives the batch's per-query share so its
    /// count stays per-query comparable across paths.
    pub fn record_queries(&self, path: QueryPath, n: usize, timings: &StageTimings) {
        if n == 0 {
            return;
        }
        self.queries[path.idx()].add(n as u64);
        let share = Duration::from_nanos(
            (timings.total.as_nanos() / n as u128).min(u64::MAX as u128) as u64,
        );
        for _ in 0..n {
            self.query_seconds[path.idx()].record(share);
        }
        for (stage, d) in timings.nonzero() {
            let i = Stage::ALL
                .iter()
                .position(|s| *s == stage)
                .expect("known stage");
            self.stage_seconds[i].record(d);
        }
    }

    /// Charge one externally measured duration to a stage histogram — the
    /// hook for stages that happen outside a query trace (the serving
    /// edge's response serialization, the ingest pipeline's WAL append).
    pub fn record_stage(&self, stage: Stage, d: Duration) {
        if d.is_zero() {
            return;
        }
        let i = Stage::ALL
            .iter()
            .position(|s| *s == stage)
            .expect("known stage");
        self.stage_seconds[i].record(d);
    }

    /// Record one profiled plan execution: per-operator-kind wall time and
    /// row histograms, plus the per-operator Q-error distribution.
    ///
    /// `relgo_operator_rows` and `relgo_qerror` reuse the registry's
    /// histogram type with non-latency units: row counts record the raw row
    /// number, and Q-error records fixed-point `q × 1000` (so `q = 1.0` —
    /// a perfect estimate — lands as 1000). Series are registered lazily on
    /// first profiled query, keyed by operator kind.
    pub fn record_profile(&self, report: &PlanReport) {
        for op in &report.ops {
            self.registry
                .histogram_with(
                    "relgo_operator_seconds",
                    "Per-operator execution wall time, by operator kind",
                    &[("op", op.meta.kind)],
                )
                .record(op.prof.elapsed);
            self.registry
                .histogram_with(
                    "relgo_operator_rows",
                    "Per-operator row counts, by operator kind and direction",
                    &[("op", op.meta.kind), ("dir", "in")],
                )
                .record_us(op.prof.rows_in);
            self.registry
                .histogram_with(
                    "relgo_operator_rows",
                    "Per-operator row counts, by operator kind and direction",
                    &[("op", op.meta.kind), ("dir", "out")],
                )
                .record_us(op.prof.rows_out);
            if let Some(q) = op.qerror() {
                self.registry
                    .histogram_with(
                        "relgo_qerror",
                        "Per-operator Q-error (max(est/act, act/est)), fixed-point x1000",
                        &[],
                    )
                    .record_us((q * 1000.0).round() as u64);
            }
        }
    }

    /// Record one committed ingest batch.
    pub(crate) fn record_ingest_commit(&self, rows: usize, commit_time: Duration) {
        self.ingest_commits.inc();
        self.ingest_rows.add(rows as u64);
        self.ingest_commit_seconds.record(commit_time);
    }

    /// Record a first-committer-wins loss (retryable conflict).
    pub(crate) fn record_ingest_conflict(&self) {
        self.ingest_conflicts.inc();
    }

    /// Record one WAL record replayed by crash recovery.
    pub(crate) fn record_recovery_replay(&self, rows: usize, commit_time: Duration) {
        self.recovery_replayed.inc();
        // Replayed rows count as ingested rows (they re-run the commit
        // pipeline), but not as live commits.
        self.ingest_rows.add(rows as u64);
        self.ingest_commit_seconds.record(commit_time);
    }

    /// Record one crash recovery (durable open): whether it started from a
    /// checkpoint, and how many corrupt checkpoint files it skipped.
    pub(crate) fn record_recovery(&self, checkpoint_loaded: bool, fallbacks: usize) {
        self.recoveries.inc();
        if checkpoint_loaded {
            self.recovery_checkpoint_loads.inc();
        }
        self.recovery_checkpoint_fallbacks.add(fallbacks as u64);
    }

    /// Record one completed checkpoint.
    pub(crate) fn record_checkpoint(&self, elapsed: Duration) {
        self.checkpoints.inc();
        self.checkpoint_seconds.record(elapsed);
    }

    /// Record a failed checkpoint attempt (the WAL keeps covering the
    /// data; only recovery time suffers until a checkpoint succeeds).
    pub(crate) fn record_checkpoint_failure(&self) {
        self.checkpoint_failures.inc();
    }

    /// Total ingest conflicts recorded so far.
    pub fn ingest_conflicts(&self) -> u64 {
        self.ingest_conflicts.get()
    }

    /// Total ingest commits recorded so far.
    pub fn ingest_commits(&self) -> u64 {
        self.ingest_commits.get()
    }

    /// Total checkpoints recorded so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.get()
    }
}

/// The unified observability view of one [`crate::Session`]: the metrics
/// registry plus every pre-registry subsystem counter, merged at snapshot
/// time.
#[derive(Debug, Clone)]
pub struct ObservabilitySnapshot {
    /// The session's current data epoch.
    pub epoch: u64,
    /// Plan-cache counters ([`crate::Session::cache_metrics`]).
    pub cache: MetricsSnapshot,
    /// WAL counters on a durable session (`None` otherwise).
    pub wal: Option<WalStats>,
    /// Epoch of the newest durable checkpoint (0 when none exists).
    pub checkpoint_epoch: u64,
    /// WAL bytes accumulated since the last checkpoint (`None` when the
    /// session is not durable).
    pub wal_bytes_since_checkpoint: Option<u64>,
    /// Process-global morsel-scheduler counters.
    pub morsels: MorselCounters,
    /// The registry snapshot with the above folded in as additional series.
    pub registry: Snapshot,
}

impl ObservabilitySnapshot {
    /// Build the merged snapshot (called by
    /// [`crate::Session::observability_snapshot`]).
    pub(crate) fn collect(
        metrics: &SessionMetrics,
        epoch: u64,
        cache: MetricsSnapshot,
        wal: Option<WalStats>,
        checkpoint_epoch: u64,
        wal_bytes_since_checkpoint: Option<u64>,
    ) -> ObservabilitySnapshot {
        let morsels = relgo_common::morsel::morsel_counters();
        let mut registry = metrics.registry.snapshot();
        registry.push_gauge(
            "relgo_epoch",
            "Current data epoch (0 at open, +1 per committed ingest batch)",
            &[],
            epoch as i64,
        );
        registry.push_gauge(
            "relgo_checkpoint_epoch",
            "Epoch of the newest durable checkpoint (0 when none exists)",
            &[],
            checkpoint_epoch as i64,
        );
        registry.push_gauge(
            "relgo_checkpoint_age_epochs",
            "Commits published since the last checkpoint (recovery replay bound)",
            &[],
            epoch.saturating_sub(checkpoint_epoch) as i64,
        );
        if let Some(bytes) = wal_bytes_since_checkpoint {
            registry.push_gauge(
                "relgo_wal_bytes_since_checkpoint",
                "Live WAL bytes on disk (the log is truncated at each checkpoint)",
                &[],
                bytes.min(i64::MAX as u64) as i64,
            );
        }
        for (name, value) in cache.counters() {
            registry.push_counter(
                &format!("relgo_plan_cache_{name}_total"),
                "Plan-cache counter (see relgo-cache MetricsSnapshot)",
                &[],
                value,
            );
        }
        if let Some(wal) = &wal {
            for (name, value) in wal.counters() {
                registry.push_counter(
                    &format!("relgo_wal_{name}_total"),
                    "Write-ahead-log counter (see relgo-delta WalStats)",
                    &[],
                    value,
                );
            }
        }
        registry.push_counter(
            "relgo_morsel_runs_total",
            "Morsel-scheduler invocations, by dispatch path",
            &[("path", "serial")],
            morsels.serial_runs,
        );
        registry.push_counter(
            "relgo_morsel_runs_total",
            "Morsel-scheduler invocations, by dispatch path",
            &[("path", "parallel")],
            morsels.parallel_runs,
        );
        registry.push_counter(
            "relgo_morsels_dispatched_total",
            "Morsels dispatched across all scheduler invocations",
            &[],
            morsels.morsels,
        );
        ObservabilitySnapshot {
            epoch,
            cache,
            wal,
            checkpoint_epoch,
            wal_bytes_since_checkpoint,
            morsels,
            registry,
        }
    }

    /// The full Prometheus text-format exposition (what `GET /metrics`
    /// serves).
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Distinct series names in the exposition (acceptance floor: ≥ 12).
    pub fn series_names(&self) -> Vec<&str> {
        self.registry.names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_metrics::trace::QueryTrace;

    #[test]
    fn record_query_touches_path_and_stage_series() {
        let m = SessionMetrics::new();
        let mut t = QueryTrace::start();
        t.add(Stage::Optimize, Duration::from_micros(300));
        t.add(Stage::Execute, Duration::from_micros(700));
        m.record_query(QueryPath::Cached, &t.finish());
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter_sum("relgo_queries_total"), 1);
        match snap.get("relgo_query_seconds", &[("path", "cached")]) {
            Some(relgo_metrics::SampleValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("missing histogram: {other:?}"),
        }
        match snap.get("relgo_query_stage_seconds", &[("stage", "execute")]) {
            Some(relgo_metrics::SampleValue::Histogram(h)) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum_us, 700);
            }
            other => panic!("missing stage histogram: {other:?}"),
        }
    }

    #[test]
    fn batch_recording_keeps_counts_per_query() {
        let m = SessionMetrics::new();
        let mut t = QueryTrace::start();
        t.add(Stage::Execute, Duration::from_micros(900));
        m.record_queries(QueryPath::Batched, 3, &t.finish());
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter_sum("relgo_queries_total"), 3);
        match snap.get("relgo_query_seconds", &[("path", "batched")]) {
            Some(relgo_metrics::SampleValue::Histogram(h)) => assert_eq!(h.count, 3),
            other => panic!("missing histogram: {other:?}"),
        }
    }

    #[test]
    fn snapshot_folds_subsystem_counters_and_renders() {
        let m = SessionMetrics::new();
        m.record_ingest_commit(5, Duration::from_micros(100));
        m.record_ingest_conflict();
        let cache = MetricsSnapshot {
            hits: 3,
            ..MetricsSnapshot::default()
        };
        let wal = Some(WalStats {
            records: 2,
            flushes: 1,
            syncs: 1,
            bytes: 64,
        });
        let snap = ObservabilitySnapshot::collect(&m, 7, cache, wal, 5, Some(64));
        let names = snap.series_names();
        assert!(names.len() >= 12, "{} series: {names:?}", names.len());
        for required in [
            "relgo_queries_total",
            "relgo_query_seconds",
            "relgo_query_stage_seconds",
            "relgo_ingest_commits_total",
            "relgo_ingest_conflicts_total",
            "relgo_ingest_rows_total",
            "relgo_ingest_commit_seconds",
            "relgo_epoch",
            "relgo_checkpoint_epoch",
            "relgo_checkpoint_age_epochs",
            "relgo_wal_bytes_since_checkpoint",
            "relgo_plan_cache_hits_total",
            "relgo_wal_records_total",
            "relgo_morsel_runs_total",
            "relgo_morsels_dispatched_total",
        ] {
            assert!(names.contains(&required), "missing {required}: {names:?}");
        }
        let text = snap.render_prometheus();
        relgo_metrics::text::validate(&text).expect("valid exposition format");
        let scrape = relgo_metrics::text::parse(&text).unwrap();
        assert_eq!(scrape.value("relgo_epoch", &[]), Some(7.0));
        assert_eq!(scrape.value("relgo_checkpoint_epoch", &[]), Some(5.0));
        assert_eq!(scrape.value("relgo_checkpoint_age_epochs", &[]), Some(2.0));
        assert_eq!(
            scrape.value("relgo_wal_bytes_since_checkpoint", &[]),
            Some(64.0)
        );
        assert_eq!(scrape.value("relgo_plan_cache_hits_total", &[]), Some(3.0));
        assert_eq!(scrape.value("relgo_wal_records_total", &[]), Some(2.0));
        assert_eq!(scrape.value("relgo_ingest_rows_total", &[]), Some(5.0));
    }
}
