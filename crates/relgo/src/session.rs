//! The end-to-end session API: data + mapping → optimized, executed SPJM
//! queries under any of the paper's compared systems.

use parking_lot::RwLock;
use relgo_cache::{CacheConfig, MetricsSnapshot, PlanCache};
use relgo_common::{RelGoError, Result};
use relgo_core::{
    optimize, parameterize, rebind_plan, OptStats, OptimizerMode, PhysicalPlan, PlannerContext,
    SpjmQuery,
};
use relgo_datagen::{generate_imdb, generate_snb, ImdbParams, SnbParams};
use relgo_exec::{execute_plan, ExecConfig};
use relgo_glogue::GLogue;
use relgo_graph::{GraphView, RGMapping};
use relgo_storage::{Database, Table};
use relgo_workloads::job_queries::ImdbSchema;
use relgo_workloads::snb_queries::SnbSchema;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Session construction options.
#[derive(Debug, Clone, Copy)]
pub struct SessionOptions {
    /// GLogue exact-counting threshold `k` (paper default: 3).
    pub glogue_k: usize,
    /// GLogue sparsification stride (1 = exact counting).
    pub glogue_stride: usize,
    /// Optimizer time budget (the paper's 10-minute cap, scaled down).
    pub opt_timeout: Duration,
    /// Intermediate-result row budget (models OOM).
    pub row_limit: usize,
    /// Plan-cache shard count (`run_cached`).
    pub plan_cache_shards: usize,
    /// Plan-cache total entry capacity across shards (`run_cached`).
    pub plan_cache_capacity: usize,
    /// Intra-query worker threads: morsel-parallel graph operators and
    /// seed-partitioned GLogue counting (1 = serial; parallel results are
    /// bit-identical to serial). Defaults to `RELGO_THREADS` when set.
    pub threads: usize,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            glogue_k: 3,
            glogue_stride: 1,
            opt_timeout: Duration::from_secs(10),
            row_limit: 50_000_000,
            plan_cache_shards: 8,
            plan_cache_capacity: 1024,
            threads: relgo_common::morsel::threads_from_env().unwrap_or(1),
        }
    }
}

/// The result of one end-to-end query run.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query result.
    pub table: Table,
    /// Optimizer statistics (wall time, plans visited, timeout flag). On a
    /// plan-cache hit this is the parameterize+rebind time.
    pub opt: OptStats,
    /// Execution wall time.
    pub exec_time: Duration,
    /// Whether the plan came from the plan cache (`run_cached` hit).
    pub cached: bool,
}

impl QueryOutcome {
    /// End-to-end time: optimization + execution (the paper's reporting
    /// unit from §5.2 onward).
    pub fn e2e(&self) -> Duration {
        self.opt.elapsed + self.exec_time
    }
}

/// An open database + property-graph session.
///
/// The GLogue statistics live behind a lock so
/// [`Session::rebuild_statistics`] works through `&self`: a serving setup
/// can rebuild statistics while plan-cache traffic and prepared-statement
/// handles stay live (the handles notice the version bump on their next
/// execute and transparently re-optimize).
pub struct Session {
    db: Arc<Database>,
    view: Arc<GraphView>,
    glogue: RwLock<Arc<GLogue>>,
    options: SessionOptions,
    cache: Arc<PlanCache>,
}

impl Session {
    /// Open a session over `db` with the given RGMapping: builds the graph
    /// view, the GRainDB-style graph index, and the GLogue statistics.
    pub fn open(db: Database, mapping: RGMapping) -> Result<Session> {
        Session::open_with(db, mapping, SessionOptions::default())
    }

    /// Open with explicit options.
    pub fn open_with(
        mut db: Database,
        mapping: RGMapping,
        options: SessionOptions,
    ) -> Result<Session> {
        let mut view = GraphView::build(&mut db, mapping)?;
        view.build_index()?;
        let view = Arc::new(view);
        let glogue = Arc::new(GLogue::with_threads(
            Arc::clone(&view),
            options.glogue_k,
            options.glogue_stride,
            options.threads,
        )?);
        let cache = Arc::new(PlanCache::new(CacheConfig {
            shards: options.plan_cache_shards,
            capacity: options.plan_cache_capacity,
        }));
        Ok(Session {
            db: Arc::new(db),
            view,
            glogue: RwLock::new(glogue),
            options,
            cache,
        })
    }

    /// Generate and open the LDBC-SNB-like dataset at scale factor `sf`.
    pub fn snb(sf: f64, seed: u64) -> Result<(Session, SnbSchema)> {
        Session::snb_with(sf, seed, SessionOptions::default())
    }

    /// Generate and open the LDBC-SNB-like dataset with explicit options
    /// (benches tune `glogue_k`, timeouts and cache sizing this way).
    pub fn snb_with(sf: f64, seed: u64, options: SessionOptions) -> Result<(Session, SnbSchema)> {
        let (db, mapping) = generate_snb(&SnbParams { sf, seed });
        let session = Session::open_with(db, mapping, options)?;
        let schema = SnbSchema::resolve(session.view.schema())?;
        Ok((session, schema))
    }

    /// Generate and open the IMDB-like dataset at scale factor `sf`.
    pub fn imdb(sf: f64, seed: u64) -> Result<(Session, ImdbSchema)> {
        Session::imdb_with(sf, seed, SessionOptions::default())
    }

    /// Generate and open the IMDB-like dataset with explicit options.
    pub fn imdb_with(sf: f64, seed: u64, options: SessionOptions) -> Result<(Session, ImdbSchema)> {
        let (db, mapping) = generate_imdb(&ImdbParams { sf, seed });
        let session = Session::open_with(db, mapping, options)?;
        let schema = ImdbSchema::resolve(session.view.schema())?;
        Ok((session, schema))
    }

    /// The catalog.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The graph view.
    pub fn view(&self) -> &Arc<GraphView> {
        &self.view
    }

    /// The current GLogue statistics (a snapshot: `rebuild_statistics`
    /// swaps in a fresh instance).
    pub fn glogue(&self) -> Arc<GLogue> {
        Arc::clone(&self.glogue.read())
    }

    /// The session options.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// The plan cache backing [`Session::run_cached`].
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Snapshot the plan-cache metrics.
    pub fn cache_metrics(&self) -> MetricsSnapshot {
        self.cache.metrics()
    }

    /// Rebuild the GLogue statistics with new parameters. Every cached
    /// plan was costed against the old statistics, so the plan cache's
    /// statistics version is bumped: existing entries die on next lookup,
    /// and pinned prepared-statement handles re-optimize on next execute.
    /// Works through `&self` — serving traffic may continue concurrently.
    /// (`options()` keeps reporting the construction-time `glogue_k` /
    /// `glogue_stride`; the live values are the ones passed here.)
    pub fn rebuild_statistics(&self, glogue_k: usize, glogue_stride: usize) -> Result<()> {
        let glogue = Arc::new(GLogue::with_threads(
            Arc::clone(&self.view),
            glogue_k,
            glogue_stride,
            self.options.threads,
        )?);
        *self.glogue.write() = glogue;
        self.cache.invalidate_all();
        Ok(())
    }

    /// Retune the intra-query thread count without invalidating anything:
    /// parallel execution and counting are bit-identical to serial, so
    /// cached plans and GLogue cardinalities remain valid.
    pub fn set_threads(&mut self, threads: usize) {
        self.options.threads = threads.max(1);
        self.glogue.read().set_threads(self.options.threads);
    }

    fn planner_context(&self) -> PlannerContext {
        PlannerContext {
            view: Arc::clone(&self.view),
            db: Arc::clone(&self.db),
            glogue: Some(self.glogue()),
            timeout: self.options.opt_timeout,
        }
    }

    /// Optimize a query under `mode`.
    pub fn optimize(
        &self,
        query: &SpjmQuery,
        mode: OptimizerMode,
    ) -> Result<(PhysicalPlan, OptStats)> {
        optimize(query, mode, &self.planner_context())
    }

    /// The execution configuration `mode` runs under (shared by the
    /// per-query and batched execution paths).
    pub(crate) fn exec_config(&self, mode: OptimizerMode) -> ExecConfig {
        ExecConfig {
            use_index: mode.uses_graph_index(),
            row_limit: self.options.row_limit,
            threads: self.options.threads,
        }
    }

    /// Execute a previously optimized plan under `mode`'s execution regime.
    pub fn execute(&self, plan: &PhysicalPlan, mode: OptimizerMode) -> Result<Table> {
        execute_plan(plan, &self.view, &self.db, &self.exec_config(mode))
    }

    /// Optimize + execute, reporting timings.
    pub fn run(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<QueryOutcome> {
        let (plan, opt) = self.optimize(query, mode)?;
        let start = Instant::now();
        let table = self.execute(&plan, mode)?;
        Ok(QueryOutcome {
            table,
            opt,
            exec_time: start.elapsed(),
            cached: false,
        })
    }

    /// The concurrent serving path: like [`Session::run`], but plans are
    /// reused through the plan cache.
    ///
    /// The query is parameterized (comparison literals lifted into slots,
    /// the rest fingerprinted isomorphism-invariantly); on a hit the cached
    /// skeleton is rebound with this instance's literals and executed
    /// without touching the optimizer. On a miss — or if rebinding is
    /// ambiguous, which is counted as a *rebind failure* — the query is
    /// optimized normally and the skeleton inserted for the next instance.
    pub fn run_cached(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<QueryOutcome> {
        let opt_start = Instant::now();
        let pq = parameterize(query);
        let key = pq.key(mode);
        if let Some((skeleton, cached_params)) = self.cache.lookup(&key) {
            match rebind_plan(&skeleton, &cached_params, &pq.params) {
                Ok(plan) => {
                    let opt = OptStats {
                        elapsed: opt_start.elapsed(),
                        plans_visited: 0,
                        timed_out: false,
                    };
                    let start = Instant::now();
                    let table = self.execute(&plan, mode)?;
                    return Ok(QueryOutcome {
                        table,
                        opt,
                        exec_time: start.elapsed(),
                        cached: true,
                    });
                }
                Err(_) => self.cache.note_rebind_failure(),
            }
        }
        // Snapshot the statistics version *before* optimizing: if a
        // `rebuild_statistics` races past while the optimizer runs, the
        // entry is inserted stamped with the superseded version and dies on
        // its next lookup instead of being served as current.
        let version = self.cache.stats_version();
        let (plan, mut opt) = self.optimize(query, mode)?;
        let plan = Arc::new(plan);
        // A timed-out search produced a fallback plan; don't pin it for
        // every future instance of the template.
        if !opt.timed_out {
            self.cache
                .insert_at(key, Arc::clone(&plan), pq.params, version);
        }
        // Charge the full miss path (parameterize + lookup + optimize).
        opt.elapsed = opt_start.elapsed();
        let start = Instant::now();
        let table = self.execute(&plan, mode)?;
        Ok(QueryOutcome {
            table,
            opt,
            exec_time: start.elapsed(),
            cached: false,
        })
    }

    /// Execute the query through the naive oracle (no optimizer at all).
    pub fn oracle(&self, query: &SpjmQuery) -> Result<Table> {
        relgo_exec::oracle::execute_query(query, &self.view, &self.db)
    }

    /// EXPLAIN: the optimized plan as text.
    pub fn explain(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<String> {
        let (plan, _) = self.optimize(query, mode)?;
        Ok(plan.explain())
    }

    /// Check that every optimizer mode agrees with the oracle on `query`;
    /// returns the per-mode outcomes (testing and demo helper).
    pub fn verify_all_modes(
        &self,
        query: &SpjmQuery,
    ) -> Result<Vec<(OptimizerMode, QueryOutcome)>> {
        let expected = self.oracle(query)?.sorted_rows();
        let mut outcomes = Vec::new();
        for mode in OptimizerMode::ALL {
            let outcome = self.run(query, mode)?;
            if outcome.table.sorted_rows() != expected {
                return Err(RelGoError::execution(format!(
                    "{} disagrees with the oracle ({} vs {} rows)",
                    mode.name(),
                    outcome.table.num_rows(),
                    expected.len()
                )));
            }
            outcomes.push((mode, outcome));
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_workloads::snb_queries;

    #[test]
    fn snb_session_runs_fig1_in_all_modes() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let query = snb_queries::fig1_example(&schema, "Tom").unwrap();
        let outcomes = session.verify_all_modes(&query).unwrap();
        assert_eq!(outcomes.len(), OptimizerMode::ALL.len());
    }

    #[test]
    fn explain_mentions_graph_table() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let query = snb_queries::ic1(&schema, 1, 5).unwrap();
        let s = session.explain(&query, OptimizerMode::RelGo).unwrap();
        assert!(s.contains("SCAN_GRAPH_TABLE"), "{s}");
    }

    #[test]
    fn imdb_session_opens() {
        let (session, schema) = Session::imdb(0.05, 7).unwrap();
        let q = relgo_workloads::job_queries::build_job(
            &schema,
            &relgo_workloads::job_queries::job_specs()[0],
        )
        .unwrap();
        let out = session.run(&q, OptimizerMode::RelGo).unwrap();
        assert_eq!(out.table.num_rows(), 1, "MIN aggregate returns one row");
    }
}
