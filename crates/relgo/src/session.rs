//! The end-to-end session API: data + mapping → optimized, executed SPJM
//! queries under any of the paper's compared systems.
//!
//! ## Epoch-stamped snapshots
//!
//! All data-dependent state — catalog, graph view (with its index), and
//! GLogue statistics — lives in one immutable `SessionState` behind an
//! epoch counter. Queries pin the current state once and run entirely
//! against it, so a concurrent ingest commit ([`Session::begin_ingest`])
//! never tears a query: writers build the *next* state aside and publish it
//! with a single pointer swap. [`Session::snapshot`] exposes the same
//! mechanism to callers that want repeatable reads across several queries.

use crate::ingest::{CommitError, IngestBatch};
use crate::observe::{ObservabilitySnapshot, QueryPath, SessionMetrics};
use parking_lot::{Mutex, RwLock};
use relgo_cache::{CacheConfig, MetricsSnapshot, PlanCache};
use relgo_common::morsel::TimeBudget;
use relgo_common::{RelGoError, Result};
use relgo_core::{
    optimize, parameterize, rebind_plan, OptStats, OptimizerMode, PhysicalPlan, PlannerContext,
    SpjmQuery,
};
use relgo_datagen::{generate_imdb, generate_snb, ImdbParams, SnbParams};
use relgo_delta::checkpoint::{CheckpointCrash, CheckpointStore, RetentionReport};
use relgo_delta::wal::{Wal, WalCompaction, WalOptions, WalStats};
use relgo_exec::{execute_plan_with, ExecConfig, PlanReport, ProfileMode};
use relgo_glogue::GLogue;
use relgo_graph::{GraphView, RGMapping};
use relgo_metrics::trace::{QueryTrace, Stage, StageTimings};
use relgo_storage::{Database, Table, WriteSet};
use relgo_workloads::job_queries::ImdbSchema;
use relgo_workloads::snb_queries::SnbSchema;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How many committed write-sets the session retains for first-committer-
/// wins validation. A batch whose base epoch predates the retained window
/// is conservatively rejected ([`CommitError::StaleBase`]).
const COMMIT_LOG_CAP: usize = 1024;

/// Session construction options.
#[derive(Debug, Clone, Copy)]
pub struct SessionOptions {
    /// GLogue exact-counting threshold `k` (paper default: 3).
    pub glogue_k: usize,
    /// GLogue sparsification stride (1 = exact counting).
    pub glogue_stride: usize,
    /// Optimizer time budget (the paper's 10-minute cap, scaled down).
    pub opt_timeout: Duration,
    /// Intermediate-result row budget (models OOM).
    pub row_limit: usize,
    /// Plan-cache shard count (`run_cached`).
    pub plan_cache_shards: usize,
    /// Plan-cache total entry capacity across shards (`run_cached`).
    pub plan_cache_capacity: usize,
    /// Intra-query worker threads: morsel-parallel graph operators and
    /// seed-partitioned GLogue counting (1 = serial; parallel results are
    /// bit-identical to serial). Defaults to `RELGO_THREADS` when set.
    pub threads: usize,
    /// Ingest-commit staleness threshold: when a committed delta changes at
    /// most this fraction of the database's rows, statistics are refreshed
    /// incrementally (GLogue keeps cached counts for untouched labels);
    /// past it, the commit performs a full pattern-count rebuild. Both
    /// paths are exact — the knob trades commit latency against retained
    /// optimizer warmth.
    pub stats_staleness: f64,
    /// Auto-checkpoint policy for durable sessions: when set, a commit
    /// whose WAL growth crosses either threshold triggers a checkpoint +
    /// log compaction inline (one at a time; concurrent committers skip).
    /// `None` (the default) means checkpoints happen only via
    /// [`Session::checkpoint`].
    pub checkpoint: Option<CheckpointPolicy>,
}

/// When a durable session checkpoints automatically. Either threshold
/// triggers; recovery replay is thereby bounded to at most `max_records`
/// WAL records (the `figckpt` figure proves this stays flat while
/// checkpoint-less replay grows with commit history).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once the WAL holds this many on-disk bytes.
    pub max_wal_bytes: u64,
    /// Checkpoint once this many commits accumulate since the last
    /// checkpoint.
    pub max_records: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            max_wal_bytes: 16 << 20,
            max_records: 512,
        }
    }
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            glogue_k: 3,
            glogue_stride: 1,
            opt_timeout: Duration::from_secs(10),
            row_limit: 50_000_000,
            plan_cache_shards: 8,
            plan_cache_capacity: 1024,
            threads: relgo_common::morsel::threads_from_env().unwrap_or(1),
            stats_staleness: 0.2,
            checkpoint: None,
        }
    }
}

/// The result of one end-to-end query run.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query result.
    pub table: Table,
    /// Optimizer statistics (wall time, plans visited, timeout flag). On a
    /// plan-cache hit this is the parameterize+rebind time.
    pub opt: OptStats,
    /// Execution wall time.
    pub exec_time: Duration,
    /// Whether the plan came from the plan cache (`run_cached` hit).
    pub cached: bool,
    /// Per-stage lifecycle timings of this query (also recorded into the
    /// session's metrics registry).
    pub trace: StageTimings,
}

impl QueryOutcome {
    /// End-to-end time: optimization + execution (the paper's reporting
    /// unit from §5.2 onward).
    pub fn e2e(&self) -> Duration {
        self.opt.elapsed + self.exec_time
    }
}

/// The result of [`Session::explain_analyze`]: the executed plan rendered
/// with estimated vs actual rows and per-operator Q-error, plus the raw
/// per-operator report and the ordinary query outcome. The result table is
/// bit-identical to an unprofiled [`Session::run`] of the same query.
#[derive(Debug, Clone)]
pub struct ExplainAnalyze {
    /// The plan tree, one line per operator, each suffixed with
    /// `[op=N est=E act=A q=Q]`.
    pub rendered: String,
    /// Plan-time estimates joined with run-time measurements, by pre-order
    /// operator id.
    pub report: PlanReport,
    /// The ordinary outcome (result table, optimizer stats, timings).
    pub outcome: QueryOutcome,
}

/// One immutable epoch of session state: everything a query needs, pinned
/// together so readers see a consistent version while writers publish the
/// next one.
pub(crate) struct SessionState {
    pub(crate) epoch: u64,
    pub(crate) db: Arc<Database>,
    pub(crate) view: Arc<GraphView>,
    pub(crate) glogue: Arc<GLogue>,
}

/// An open database + property-graph session.
///
/// All data-dependent state sits in an epoch-stamped `SessionState`
/// behind a lock, so [`Session::rebuild_statistics`] and ingest commits
/// work through `&self`: a serving setup keeps plan-cache traffic and
/// prepared-statement handles live across both (the handles notice the
/// statistics-version bump on their next execute and transparently
/// re-optimize).
pub struct Session {
    state: RwLock<Arc<SessionState>>,
    options: SessionOptions,
    cache: Arc<PlanCache>,
    /// Last statistics tuning pair, reused by
    /// [`Session::refresh_statistics`] and full ingest-commit rebuilds.
    tuning: Mutex<(usize, usize)>,
    /// Serializes the validate-and-publish critical section of commits (and
    /// statistics rebuilds). [`IngestBatch`]es stage *outside* this lock —
    /// only their commit takes it.
    pub(crate) write_lock: Mutex<()>,
    /// The write-sets of recent commits, newest at the back, for
    /// first-committer-wins validation (bounded by [`COMMIT_LOG_CAP`]).
    committed: Mutex<VecDeque<(u64, WriteSet)>>,
    /// The write-ahead log of a durable session ([`Session::open_durable`]).
    /// Installed *after* recovery replay so replay does not re-append the
    /// records it is replaying.
    wal: OnceLock<Wal>,
    /// Serializes checkpoints against each other. Commits proceed
    /// concurrently — a checkpoint snapshots an immutable pinned state and
    /// never takes `write_lock`.
    ckpt_lock: Mutex<()>,
    /// Epoch of the newest durable checkpoint (0 = none). Drives the
    /// auto-checkpoint record threshold and the checkpoint-age gauge.
    last_checkpoint_epoch: AtomicU64,
    /// The session's metrics registry: every serving path records into it,
    /// and [`Session::observability_snapshot`] folds the subsystem counters
    /// around it.
    metrics: Arc<SessionMetrics>,
}

/// What [`Session::open_durable`] replayed from the write-ahead log.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Intact WAL records replayed (one per recovered epoch).
    pub records: usize,
    /// The session's epoch after replay (= `records` on a fresh base).
    pub epoch: u64,
    /// Bytes of valid log retained.
    pub bytes: u64,
    /// Bytes of torn tail truncated away (0 for a clean shutdown).
    pub truncated_bytes: u64,
    /// Rows (inserts + deletes) re-applied during replay.
    pub rows_replayed: usize,
    /// Wall time of the replay (merge + view/index + statistics per epoch).
    pub replay_time: Duration,
    /// Whether recovery started from an on-disk checkpoint instead of the
    /// caller's base database.
    pub checkpoint_loaded: bool,
    /// Epoch of the checkpoint recovery started from (0 when none).
    pub checkpoint_epoch: u64,
    /// Corrupt newer checkpoint files skipped before a valid one loaded —
    /// the torn-newest fallback path (0 on the happy path).
    pub checkpoint_fallbacks: usize,
    /// WAL records skipped because the checkpoint already captured them (a
    /// crash between checkpoint rename and WAL truncation leaves these).
    pub skipped_records: usize,
}

/// What one [`Session::checkpoint`] call did.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// The epoch the snapshot captured.
    pub epoch: u64,
    /// Checkpoint file size in bytes.
    pub bytes: u64,
    /// Final path of the checkpoint file.
    pub path: PathBuf,
    /// What log compaction dropped and kept behind the checkpoint.
    pub wal: WalCompaction,
    /// What retention did with superseded checkpoint files.
    pub retention: RetentionReport,
    /// Wall time of the whole checkpoint (snapshot encode + write + fsync +
    /// rename + compaction + retention).
    pub elapsed: Duration,
}

/// Knobs for one explicit [`Session::checkpoint_with`] call.
#[derive(Debug, Clone, Default)]
pub struct CheckpointRequest {
    /// Archive instead of delete: superseded checkpoint files move into
    /// this directory, and the WAL records compaction drops are appended to
    /// `<dir>/<wal-name>.archive` (itself a replayable log) before the live
    /// log is truncated.
    pub archive_dir: Option<PathBuf>,
    /// Crash-fault injection for the recovery harness: abort the process
    /// inside the chosen checkpoint phase.
    pub crash: Option<CheckpointCrash>,
}

impl Session {
    /// Open a session over `db` with the given RGMapping: builds the graph
    /// view, the GRainDB-style graph index, and the GLogue statistics.
    pub fn open(db: Database, mapping: RGMapping) -> Result<Session> {
        Session::open_with(db, mapping, SessionOptions::default())
    }

    /// Open with explicit options.
    pub fn open_with(
        mut db: Database,
        mapping: RGMapping,
        options: SessionOptions,
    ) -> Result<Session> {
        let mut view = GraphView::build(&mut db, mapping)?;
        view.build_index()?;
        let view = Arc::new(view);
        let glogue = Arc::new(GLogue::with_threads(
            Arc::clone(&view),
            options.glogue_k,
            options.glogue_stride,
            options.threads,
        )?);
        let cache = Arc::new(PlanCache::new(CacheConfig {
            shards: options.plan_cache_shards,
            capacity: options.plan_cache_capacity,
        }));
        Ok(Session {
            state: RwLock::new(Arc::new(SessionState {
                epoch: 0,
                db: Arc::new(db),
                view,
                glogue,
            })),
            options,
            cache,
            tuning: Mutex::new((options.glogue_k, options.glogue_stride)),
            write_lock: Mutex::new(()),
            committed: Mutex::new(VecDeque::new()),
            wal: OnceLock::new(),
            ckpt_lock: Mutex::new(()),
            last_checkpoint_epoch: AtomicU64::new(0),
            metrics: Arc::new(SessionMetrics::new()),
        })
    }

    /// Open a *durable* session: like [`Session::open_with`], but every
    /// ingest commit is additionally appended to the write-ahead log at
    /// `wal_path` (group-committed and fsynced per `wal_options`) before
    /// [`IngestBatch::commit`] returns.
    ///
    /// If the log already holds records — the session crashed or exited
    /// after commits — they are replayed first, epoch by epoch, through the
    /// same merge/view/statistics pipeline a live commit runs, and the
    /// returned [`RecoveryReport`] says what was restored. A torn tail from
    /// a crash mid-flush is truncated away: recovery restores the longest
    /// durable prefix of the commit history, never a partial commit.
    ///
    /// `db`/`mapping` must be the same base the log was written against
    /// (the log stores deltas, not the base); a WAL whose first record does
    /// not continue the base's epoch is rejected.
    ///
    /// When checkpoints exist next to the log ([`Session::checkpoint`]
    /// writes them as `<wal>.ckpt.<epoch>` siblings), recovery loads the
    /// newest valid one instead of starting from `db` and replays only the
    /// WAL tail behind it — bounded restart. A corrupt newest checkpoint
    /// (torn by bit rot after its atomic rename) falls back to the previous
    /// checkpoint and a correspondingly longer replay; records the loaded
    /// checkpoint already covers are skipped, so a crash between a
    /// checkpoint's rename and its WAL truncation recovers identically.
    pub fn open_durable(
        db: Database,
        mapping: RGMapping,
        options: SessionOptions,
        wal_path: impl AsRef<Path>,
        wal_options: WalOptions,
    ) -> Result<(Session, RecoveryReport)> {
        let wal_path = wal_path.as_ref();
        let store = CheckpointStore::for_wal(wal_path);
        let loaded = store.load_newest()?;
        let (base_db, checkpoint_loaded, checkpoint_epoch, checkpoint_fallbacks) = match loaded {
            Some(l) => (l.db, true, l.epoch, l.rejected),
            None => (db, false, 0, 0),
        };
        let session = Session::open_with(base_db, mapping, options)?;
        if checkpoint_epoch > 0 {
            // Stamp the snapshot's epoch before replay: the WAL tail
            // continues from the checkpoint, not from 0.
            let st = session.state();
            session.publish(SessionState {
                epoch: checkpoint_epoch,
                db: Arc::clone(&st.db),
                view: Arc::clone(&st.view),
                glogue: Arc::clone(&st.glogue),
            });
        }
        session
            .last_checkpoint_epoch
            .store(checkpoint_epoch, Ordering::Release);
        let (wal, recovered) = Wal::open(wal_path, wal_options)?;
        let replay_start = Instant::now();
        let mut records = 0usize;
        let mut skipped_records = 0usize;
        let mut rows_replayed = 0;
        for record in recovered.records {
            if record.epoch <= checkpoint_epoch {
                // The checkpoint already captures this commit; it survived
                // on disk because the crash hit between the checkpoint
                // rename and the log truncation.
                skipped_records += 1;
                continue;
            }
            if record.epoch != session.epoch() + 1 {
                return Err(RelGoError::execution(format!(
                    "wal replay discontinuity: record for epoch {} cannot \
                     follow epoch {} (wrong base database?)",
                    record.epoch,
                    session.epoch()
                )));
            }
            records += 1;
            rows_replayed += record.delta.inserted_rows() + record.delta.deleted_rows();
            session
                .commit_delta(record.delta, None)
                .map_err(RelGoError::from)?;
        }
        let report = RecoveryReport {
            records,
            epoch: session.epoch(),
            bytes: recovered.bytes,
            truncated_bytes: recovered.truncated_bytes,
            rows_replayed,
            replay_time: replay_start.elapsed(),
            checkpoint_loaded,
            checkpoint_epoch,
            checkpoint_fallbacks,
            skipped_records,
        };
        session
            .metrics
            .record_recovery(checkpoint_loaded, checkpoint_fallbacks);
        // Install the log only now: replay above must not re-append the
        // records it replays, while commits from here on append normally.
        let _ = session.wal.set(wal);
        Ok((session, report))
    }

    /// [`Session::open_durable`] with default options: the one-call crash
    /// recovery path. Replays the log at `wal_path` over the base
    /// `db`/`mapping` and resumes durable serving.
    pub fn recover(
        db: Database,
        mapping: RGMapping,
        wal_path: impl AsRef<Path>,
    ) -> Result<(Session, RecoveryReport)> {
        Session::open_durable(
            db,
            mapping,
            SessionOptions::default(),
            wal_path,
            WalOptions::default(),
        )
    }

    /// Whether commits are written ahead to a log.
    pub fn is_durable(&self) -> bool {
        self.wal.get().is_some()
    }

    /// WAL counters of a durable session (`None` otherwise). `syncs <
    /// records` under concurrent writers is group commit working.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.get().map(Wal::stats)
    }

    /// The write-ahead log, when durable.
    pub(crate) fn wal(&self) -> Option<&Wal> {
        self.wal.get()
    }

    /// Epoch of the newest durable checkpoint (0 when none exists).
    pub fn last_checkpoint_epoch(&self) -> u64 {
        self.last_checkpoint_epoch.load(Ordering::Acquire)
    }

    /// WAL bytes accumulated since the last checkpoint (`None` when the
    /// session is not durable). Compaction truncates the log behind each
    /// checkpoint, so the live log size *is* the bytes-since measure.
    pub fn wal_bytes_since_checkpoint(&self) -> Option<u64> {
        self.wal().map(Wal::disk_len)
    }

    /// Checkpoint the current epoch: snapshot every table + key metadata to
    /// a CRC-checked sibling file of the WAL (write-to-temp + fsync +
    /// atomic rename — a crash mid-checkpoint leaves the old checkpoint
    /// set intact), then compact the log behind it and retire superseded
    /// checkpoints, keeping the newest two (the older one is the fallback
    /// if the newest rots on disk).
    ///
    /// Commits proceed concurrently — the snapshot pins one immutable
    /// published state and never blocks writers. Requires a durable
    /// session.
    pub fn checkpoint(&self) -> Result<CheckpointReport> {
        self.checkpoint_with(CheckpointRequest::default())
    }

    /// [`Session::checkpoint`] with explicit knobs (archival, crash-fault
    /// injection for the recovery harness).
    pub fn checkpoint_with(&self, request: CheckpointRequest) -> Result<CheckpointReport> {
        let _ckpt = self.ckpt_lock.lock();
        let result = self.checkpoint_locked(&request);
        match &result {
            Ok(report) => self.metrics.record_checkpoint(report.elapsed),
            Err(_) => self.metrics.record_checkpoint_failure(),
        }
        result
    }

    /// The checkpoint body; runs with `ckpt_lock` held.
    fn checkpoint_locked(&self, request: &CheckpointRequest) -> Result<CheckpointReport> {
        let Some(wal) = self.wal() else {
            return Err(RelGoError::execution(
                "checkpoint requires a durable session (open the session \
                 with open_durable/recover)",
            ));
        };
        let start = Instant::now();
        let state = self.state();
        let store = CheckpointStore::for_wal(wal.path());
        let wal_archive = match &request.archive_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| {
                    RelGoError::execution(format!("checkpoint archive mkdir failed: {e}"))
                })?;
                let name = wal
                    .path()
                    .file_name()
                    .map(|f| f.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "wal".to_string());
                Some(dir.join(format!("{name}.archive")))
            }
            None => None,
        };
        let written = store.write(state.epoch, &state.db, request.crash)?;
        // The snapshot is durable; everything at or below its epoch is now
        // redundant in the log. A crash before (or during) this truncation
        // is fine — recovery skips records the checkpoint covers.
        let compaction = wal.compact_through(state.epoch, wal_archive.as_deref())?;
        let retention = store.retain(2, request.archive_dir.as_deref())?;
        self.last_checkpoint_epoch
            .fetch_max(state.epoch, Ordering::AcqRel);
        Ok(CheckpointReport {
            epoch: written.epoch,
            bytes: written.bytes,
            path: written.path,
            wal: compaction,
            retention,
            elapsed: start.elapsed(),
        })
    }

    /// Auto-checkpoint hook: called by the commit pipeline after a live
    /// commit is durable. Checkpoints inline when the session's
    /// [`CheckpointPolicy`] thresholds are crossed; concurrent committers
    /// skip while one checkpoint runs. Failures are counted in metrics but
    /// do not fail the (already durable) commit.
    pub(crate) fn maybe_auto_checkpoint(&self, epoch: u64) {
        let Some(policy) = self.options.checkpoint else {
            return;
        };
        let Some(wal) = self.wal() else { return };
        let due = |last: u64| {
            epoch.saturating_sub(last) >= policy.max_records
                || wal.disk_len() >= policy.max_wal_bytes
        };
        if !due(self.last_checkpoint_epoch()) {
            return;
        }
        let Some(_ckpt) = self.ckpt_lock.try_lock() else {
            return; // a checkpoint is already running; its epoch covers us
        };
        // Re-check under the lock: the previous holder may have
        // checkpointed past this commit already.
        if !due(self.last_checkpoint_epoch()) {
            return;
        }
        match self.checkpoint_locked(&CheckpointRequest::default()) {
            Ok(report) => self.metrics.record_checkpoint(report.elapsed),
            Err(_) => self.metrics.record_checkpoint_failure(),
        }
    }

    /// First-committer-wins validation: reject iff some commit that
    /// published after `base` wrote a primary key in `ws`. Called with the
    /// write lock held (`current` is the locked-in current epoch).
    pub(crate) fn validate_write_set(
        &self,
        base: u64,
        ws: &WriteSet,
        current: u64,
    ) -> std::result::Result<(), CommitError> {
        if base >= current {
            return Ok(()); // nothing published since the batch began
        }
        let log = self.committed.lock();
        // The log covers bases from (front.epoch - 1) up: a batch based
        // before that window may conflict with an evicted write-set, so it
        // is conservatively rejected rather than silently admitted.
        let retained_from = log.front().map_or(current, |(e, _)| e - 1);
        if base < retained_from {
            return Err(CommitError::StaleBase {
                base_epoch: base,
                retained_from,
            });
        }
        for (epoch, committed) in log.iter().filter(|(e, _)| *e > base) {
            if let Some((table, key)) = ws.overlap(committed) {
                return Err(CommitError::Conflict {
                    table,
                    key,
                    committed_epoch: *epoch,
                });
            }
        }
        Ok(())
    }

    /// Record a published commit's write-set for future validation (called
    /// with the write lock held, so epochs arrive in order).
    pub(crate) fn record_commit(&self, epoch: u64, ws: WriteSet) {
        let mut log = self.committed.lock();
        log.push_back((epoch, ws));
        while log.len() > COMMIT_LOG_CAP {
            log.pop_front();
        }
    }

    /// Test hook: evict the `n` oldest retained write-sets, simulating
    /// commit-log turnover without issuing [`COMMIT_LOG_CAP`] commits.
    #[cfg(test)]
    pub(crate) fn forget_oldest_commits(&self, n: usize) {
        let mut log = self.committed.lock();
        for _ in 0..n {
            log.pop_front();
        }
    }

    /// Generate and open the LDBC-SNB-like dataset at scale factor `sf`.
    pub fn snb(sf: f64, seed: u64) -> Result<(Session, SnbSchema)> {
        Session::snb_with(sf, seed, SessionOptions::default())
    }

    /// Generate and open the LDBC-SNB-like dataset with explicit options
    /// (benches tune `glogue_k`, timeouts and cache sizing this way).
    pub fn snb_with(sf: f64, seed: u64, options: SessionOptions) -> Result<(Session, SnbSchema)> {
        let (db, mapping) = generate_snb(&SnbParams { sf, seed });
        let session = Session::open_with(db, mapping, options)?;
        let schema = SnbSchema::resolve(session.state().view.schema())?;
        Ok((session, schema))
    }

    /// Generate and open the IMDB-like dataset at scale factor `sf`.
    pub fn imdb(sf: f64, seed: u64) -> Result<(Session, ImdbSchema)> {
        Session::imdb_with(sf, seed, SessionOptions::default())
    }

    /// Generate and open the IMDB-like dataset with explicit options.
    pub fn imdb_with(sf: f64, seed: u64, options: SessionOptions) -> Result<(Session, ImdbSchema)> {
        let (db, mapping) = generate_imdb(&ImdbParams { sf, seed });
        let session = Session::open_with(db, mapping, options)?;
        let schema = ImdbSchema::resolve(session.state().view.schema())?;
        Ok((session, schema))
    }

    /// Pin the current epoch's state.
    pub(crate) fn state(&self) -> Arc<SessionState> {
        Arc::clone(&self.state.read())
    }

    /// Publish a new state (writer paths only; callers hold `write_lock`).
    pub(crate) fn publish(&self, state: SessionState) {
        *self.state.write() = Arc::new(state);
    }

    /// The current data epoch: 0 at open, +1 per committed ingest batch.
    pub fn epoch(&self) -> u64 {
        self.state().epoch
    }

    /// Pin the current epoch for repeatable reads: every query run through
    /// the returned [`Snapshot`] sees this exact data version, regardless
    /// of ingest commits that land in the meantime.
    pub fn snapshot(&self) -> Snapshot<'_> {
        Snapshot {
            session: self,
            state: self.state(),
        }
    }

    /// The catalog (of the current epoch).
    pub fn db(&self) -> Arc<Database> {
        Arc::clone(&self.state().db)
    }

    /// The graph view (of the current epoch).
    pub fn view(&self) -> Arc<GraphView> {
        Arc::clone(&self.state().view)
    }

    /// The current GLogue statistics (a snapshot: `rebuild_statistics` and
    /// ingest commits swap in fresh instances).
    pub fn glogue(&self) -> Arc<GLogue> {
        Arc::clone(&self.state().glogue)
    }

    /// The session options.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// The plan cache backing [`Session::run_cached`].
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Snapshot the plan-cache metrics.
    pub fn cache_metrics(&self) -> MetricsSnapshot {
        self.cache.metrics()
    }

    /// The session's metrics registry: every serving path (run, cached,
    /// prepared, batched) and the ingest pipeline record into it. The
    /// server registers its HTTP-edge series on the same registry so one
    /// scrape covers the whole process.
    pub fn metrics(&self) -> &Arc<SessionMetrics> {
        &self.metrics
    }

    /// The unified observability view: the metrics registry merged with the
    /// plan-cache counters, WAL stats (when durable), the morsel-scheduler
    /// globals and the current epoch — one struct instead of four ad-hoc
    /// accessors, and the source of the Prometheus `/metrics` exposition.
    pub fn observability_snapshot(&self) -> ObservabilitySnapshot {
        ObservabilitySnapshot::collect(
            &self.metrics,
            self.epoch(),
            self.cache_metrics(),
            self.wal_stats(),
            self.last_checkpoint_epoch(),
            self.wal_bytes_since_checkpoint(),
        )
    }

    /// Open an optimistic ingest batch: queue inserts and deletes, then
    /// [`IngestBatch::commit`] to validate first-committer-wins, merge,
    /// refresh statistics and publish the next epoch. Any number of batches
    /// may be open concurrently — a batch whose primary-key write-set
    /// overlaps a commit published after its base epoch loses with the
    /// retryable [`CommitError::Conflict`]. Readers are never blocked.
    pub fn begin_ingest(&self) -> IngestBatch<'_> {
        IngestBatch::begin(self)
    }

    /// Rebuild the GLogue statistics with new parameters. Every cached
    /// plan was costed against the old statistics, so the plan cache's
    /// statistics version is bumped: existing entries die on next lookup,
    /// and pinned prepared-statement handles re-optimize on next execute.
    /// Works through `&self` — serving traffic may continue concurrently.
    /// (`options()` keeps reporting the construction-time `glogue_k` /
    /// `glogue_stride`; the live values are the ones passed here, and
    /// [`Session::refresh_statistics`] reuses them.)
    pub fn rebuild_statistics(&self, glogue_k: usize, glogue_stride: usize) -> Result<()> {
        let _writer = self.write_lock.lock();
        let state = self.state();
        let glogue = Arc::new(GLogue::with_threads(
            Arc::clone(&state.view),
            glogue_k,
            glogue_stride,
            self.options.threads,
        )?);
        *self.tuning.lock() = (glogue_k, glogue_stride);
        self.publish(SessionState {
            epoch: state.epoch,
            db: Arc::clone(&state.db),
            view: Arc::clone(&state.view),
            glogue,
        });
        self.cache.invalidate_all();
        Ok(())
    }

    /// [`Session::rebuild_statistics`] with the last-used tuning pair —
    /// callers that just want fresh statistics no longer re-pass
    /// `(glogue_k, glogue_stride)` they did not choose.
    pub fn refresh_statistics(&self) -> Result<()> {
        let (k, stride) = *self.tuning.lock();
        self.rebuild_statistics(k, stride)
    }

    /// The last statistics tuning pair (construction options, or the last
    /// [`Session::rebuild_statistics`] arguments).
    pub fn statistics_tuning(&self) -> (usize, usize) {
        *self.tuning.lock()
    }

    /// Retune the intra-query thread count without invalidating anything:
    /// parallel execution and counting are bit-identical to serial, so
    /// cached plans and GLogue cardinalities remain valid.
    pub fn set_threads(&mut self, threads: usize) {
        self.options.threads = threads.max(1);
        self.state().glogue.set_threads(self.options.threads);
    }

    fn planner_context(&self, state: &SessionState) -> PlannerContext {
        PlannerContext {
            view: Arc::clone(&state.view),
            db: Arc::clone(&state.db),
            glogue: Some(Arc::clone(&state.glogue)),
            timeout: self.options.opt_timeout,
        }
    }

    pub(crate) fn optimize_at(
        &self,
        state: &SessionState,
        query: &SpjmQuery,
        mode: OptimizerMode,
    ) -> Result<(PhysicalPlan, OptStats)> {
        optimize(query, mode, &self.planner_context(state))
    }

    /// Optimize a query under `mode`.
    pub fn optimize(
        &self,
        query: &SpjmQuery,
        mode: OptimizerMode,
    ) -> Result<(PhysicalPlan, OptStats)> {
        self.optimize_at(&self.state(), query, mode)
    }

    /// The execution configuration `mode` runs under (shared by the
    /// per-query and batched execution paths).
    pub(crate) fn exec_config(&self, mode: OptimizerMode) -> ExecConfig {
        self.exec_config_with(mode, None)
    }

    /// [`Session::exec_config`] with a per-query wall-clock budget:
    /// execution checks it at morsel boundaries and aborts with
    /// `DeadlineExceeded` on expiry.
    pub(crate) fn exec_config_with(
        &self,
        mode: OptimizerMode,
        deadline: Option<TimeBudget>,
    ) -> ExecConfig {
        ExecConfig {
            use_index: mode.uses_graph_index(),
            row_limit: self.options.row_limit,
            threads: self.options.threads,
            deadline,
        }
    }

    pub(crate) fn execute_at(
        &self,
        state: &SessionState,
        plan: &PhysicalPlan,
        mode: OptimizerMode,
        deadline: Option<TimeBudget>,
    ) -> Result<Table> {
        Ok(self
            .execute_traced_at(state, plan, mode, deadline, ProfileMode::Off)?
            .0)
    }

    /// Execute with optional operator-level profiling. When profiling is on,
    /// plan-time metas (operator ids, estimates) are joined with the
    /// run-time profiles into a [`PlanReport`] and recorded into the
    /// session's operator/Q-error metric series. The result table is
    /// bit-identical either way.
    pub(crate) fn execute_traced_at(
        &self,
        state: &SessionState,
        plan: &PhysicalPlan,
        mode: OptimizerMode,
        deadline: Option<TimeBudget>,
        profile: ProfileMode,
    ) -> Result<(Table, Option<PlanReport>)> {
        let (table, prof) = execute_plan_with(
            plan,
            &state.view,
            &state.db,
            &self.exec_config_with(mode, deadline),
            profile,
        )?;
        let report = match prof {
            Some(p) => {
                let report = PlanReport::join(plan.operator_metas(&state.db), p)?;
                self.metrics.record_profile(&report);
                Some(report)
            }
            None => None,
        };
        Ok((table, report))
    }

    /// Execute a previously optimized plan under `mode`'s execution regime.
    pub fn execute(&self, plan: &PhysicalPlan, mode: OptimizerMode) -> Result<Table> {
        self.execute_at(&self.state(), plan, mode, None)
    }

    /// [`Session::execute`] under an optional wall-clock budget.
    pub fn execute_with_deadline(
        &self,
        plan: &PhysicalPlan,
        mode: OptimizerMode,
        deadline: Option<TimeBudget>,
    ) -> Result<Table> {
        self.execute_at(&self.state(), plan, mode, deadline)
    }

    /// [`Session::execute_with_deadline`] with optional operator profiling
    /// (the prepared-statement profiled path).
    pub(crate) fn execute_traced_with_deadline(
        &self,
        plan: &PhysicalPlan,
        mode: OptimizerMode,
        deadline: Option<TimeBudget>,
        profile: ProfileMode,
    ) -> Result<(Table, Option<PlanReport>)> {
        self.execute_traced_at(&self.state(), plan, mode, deadline, profile)
    }

    fn run_at(
        &self,
        state: &SessionState,
        query: &SpjmQuery,
        mode: OptimizerMode,
        profile: ProfileMode,
    ) -> Result<(QueryOutcome, Option<PlanReport>)> {
        let mut trace = QueryTrace::start();
        let (plan, opt) = trace.time(Stage::Optimize, || self.optimize_at(state, query, mode))?;
        let start = Instant::now();
        let (table, report) = trace.time(Stage::Execute, || {
            self.execute_traced_at(state, &plan, mode, None, profile)
        })?;
        let exec_time = start.elapsed();
        let trace = trace.finish();
        self.metrics.record_query(QueryPath::Run, &trace);
        Ok((
            QueryOutcome {
                table,
                opt,
                exec_time,
                cached: false,
                trace,
            },
            report,
        ))
    }

    /// Optimize + execute, reporting timings. The whole query runs against
    /// one pinned epoch.
    pub fn run(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<QueryOutcome> {
        Ok(self.run_at(&self.state(), query, mode, ProfileMode::Off)?.0)
    }

    /// [`Session::run`] with operator-level profiling: the same execution
    /// (bit-identical result rows), plus the per-operator estimate-vs-actual
    /// report, recorded into the operator/Q-error metric series.
    pub fn run_profiled(
        &self,
        query: &SpjmQuery,
        mode: OptimizerMode,
    ) -> Result<(QueryOutcome, PlanReport)> {
        let (outcome, report) = self.run_at(&self.state(), query, mode, ProfileMode::On)?;
        Ok((outcome, report.expect("profiling was on")))
    }

    fn run_cached_at(
        &self,
        state: &SessionState,
        query: &SpjmQuery,
        mode: OptimizerMode,
    ) -> Result<QueryOutcome> {
        Ok(self
            .run_cached_at_with(state, query, mode, None, ProfileMode::Off)?
            .0)
    }

    fn run_cached_at_with(
        &self,
        state: &SessionState,
        query: &SpjmQuery,
        mode: OptimizerMode,
        deadline: Option<TimeBudget>,
        profile: ProfileMode,
    ) -> Result<(QueryOutcome, Option<PlanReport>)> {
        let mut trace = QueryTrace::start();
        let opt_start = Instant::now();
        let pq = trace.time(Stage::Parameterize, || parameterize(query));
        let key = pq.key(mode);
        if let Some((skeleton, cached_params)) =
            trace.time(Stage::CacheProbe, || self.cache.lookup(&key))
        {
            match trace.time(Stage::Rebind, || {
                rebind_plan(&skeleton, &cached_params, &pq.params)
            }) {
                Ok(plan) => {
                    let opt = OptStats {
                        elapsed: opt_start.elapsed(),
                        plans_visited: 0,
                        timed_out: false,
                    };
                    let start = Instant::now();
                    let (table, report) = trace.time(Stage::Execute, || {
                        self.execute_traced_at(state, &plan, mode, deadline, profile)
                    })?;
                    let exec_time = start.elapsed();
                    let trace = trace.finish();
                    self.metrics.record_query(QueryPath::Cached, &trace);
                    return Ok((
                        QueryOutcome {
                            table,
                            opt,
                            exec_time,
                            cached: true,
                            trace,
                        },
                        report,
                    ));
                }
                Err(_) => self.cache.note_rebind_failure(),
            }
        }
        // Snapshot the statistics version *before* optimizing: if a
        // `rebuild_statistics` or ingest commit races past while the
        // optimizer runs, the entry is inserted stamped with the superseded
        // version and dies on its next lookup instead of being served as
        // current.
        let version = self.cache.stats_version();
        let (plan, mut opt) =
            trace.time(Stage::Optimize, || self.optimize_at(state, query, mode))?;
        let plan = Arc::new(plan);
        // A timed-out search produced a fallback plan; don't pin it for
        // every future instance of the template.
        if !opt.timed_out {
            self.cache
                .insert_at(key, Arc::clone(&plan), pq.params, version);
        }
        // Charge the full miss path (parameterize + lookup + optimize).
        opt.elapsed = opt_start.elapsed();
        let start = Instant::now();
        let (table, report) = trace.time(Stage::Execute, || {
            self.execute_traced_at(state, &plan, mode, deadline, profile)
        })?;
        let exec_time = start.elapsed();
        let trace = trace.finish();
        self.metrics.record_query(QueryPath::Cached, &trace);
        Ok((
            QueryOutcome {
                table,
                opt,
                exec_time,
                cached: false,
                trace,
            },
            report,
        ))
    }

    /// The concurrent serving path: like [`Session::run`], but plans are
    /// reused through the plan cache.
    ///
    /// The query is parameterized (comparison literals lifted into slots,
    /// the rest fingerprinted isomorphism-invariantly); on a hit the cached
    /// skeleton is rebound with this instance's literals and executed
    /// without touching the optimizer. On a miss — or if rebinding is
    /// ambiguous, which is counted as a *rebind failure* — the query is
    /// optimized normally and the skeleton inserted for the next instance.
    pub fn run_cached(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<QueryOutcome> {
        self.run_cached_at(&self.state(), query, mode)
    }

    /// [`Session::run_cached`] under an optional wall-clock budget:
    /// execution checks the deadline at every morsel boundary and aborts
    /// with `DeadlineExceeded` on expiry (the serving edge maps that to
    /// `503` + `Retry-After`). Construct the [`TimeBudget`] where the
    /// request enters the system so queueing and planning count against it.
    pub fn run_cached_with_deadline(
        &self,
        query: &SpjmQuery,
        mode: OptimizerMode,
        deadline: Option<TimeBudget>,
    ) -> Result<QueryOutcome> {
        Ok(self
            .run_cached_at_with(&self.state(), query, mode, deadline, ProfileMode::Off)?
            .0)
    }

    /// [`Session::run_cached_with_deadline`] with operator-level profiling:
    /// the serving path the server's `profile=1` requests take. Result rows
    /// are bit-identical to the unprofiled path.
    pub fn run_cached_profiled(
        &self,
        query: &SpjmQuery,
        mode: OptimizerMode,
        deadline: Option<TimeBudget>,
    ) -> Result<(QueryOutcome, PlanReport)> {
        let (outcome, report) =
            self.run_cached_at_with(&self.state(), query, mode, deadline, ProfileMode::On)?;
        Ok((outcome, report.expect("profiling was on")))
    }

    fn oracle_at(&self, state: &SessionState, query: &SpjmQuery) -> Result<Table> {
        relgo_exec::oracle::execute_query(query, &state.view, &state.db)
    }

    /// Execute the query through the naive oracle (no optimizer at all).
    pub fn oracle(&self, query: &SpjmQuery) -> Result<Table> {
        self.oracle_at(&self.state(), query)
    }

    /// EXPLAIN: the optimized plan as text, each operator line suffixed
    /// with its pre-order operator id and the optimizer's estimated rows —
    /// the plan-time half of [`Session::explain_analyze`].
    pub fn explain(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<String> {
        let state = self.state();
        let (plan, _) = self.optimize_at(&state, query, mode)?;
        let metas = plan.operator_metas(&state.db);
        Ok(plan.explain_annotated(|id| {
            metas
                .get(id)
                .map(|m| format!("  [op={} est={:.0}]", m.op_id, m.est_rows))
                .unwrap_or_default()
        }))
    }

    /// EXPLAIN ANALYZE: optimize, execute with operator-level profiling,
    /// and render the plan tree annotated with estimated vs actual rows and
    /// per-operator Q-error (`max(est/act, act/est)`). The result table is
    /// bit-identical to an unprofiled [`Session::run`].
    pub fn explain_analyze(
        &self,
        query: &SpjmQuery,
        mode: OptimizerMode,
    ) -> Result<ExplainAnalyze> {
        let state = self.state();
        let mut trace = QueryTrace::start();
        let (plan, opt) = trace.time(Stage::Optimize, || self.optimize_at(&state, query, mode))?;
        let start = Instant::now();
        let (table, report) = trace.time(Stage::Execute, || {
            self.execute_traced_at(&state, &plan, mode, None, ProfileMode::On)
        })?;
        let exec_time = start.elapsed();
        let trace = trace.finish();
        self.metrics.record_query(QueryPath::Run, &trace);
        let report = report.expect("profiling was on");
        let rendered = plan.explain_annotated(|id| report.annotation(id));
        Ok(ExplainAnalyze {
            rendered,
            report,
            outcome: QueryOutcome {
                table,
                opt,
                exec_time,
                cached: false,
                trace,
            },
        })
    }

    /// Check that every optimizer mode agrees with the oracle on `query`;
    /// returns the per-mode outcomes (testing and demo helper). Runs
    /// entirely against one pinned epoch.
    pub fn verify_all_modes(
        &self,
        query: &SpjmQuery,
    ) -> Result<Vec<(OptimizerMode, QueryOutcome)>> {
        let state = self.state();
        let expected = self.oracle_at(&state, query)?.sorted_rows();
        let mut outcomes = Vec::new();
        for mode in OptimizerMode::ALL {
            let (outcome, _) = self.run_at(&state, query, mode, ProfileMode::Off)?;
            if outcome.table.sorted_rows() != expected {
                return Err(RelGoError::execution(format!(
                    "{} disagrees with the oracle ({} vs {} rows)",
                    mode.name(),
                    outcome.table.num_rows(),
                    expected.len()
                )));
            }
            outcomes.push((mode, outcome));
        }
        Ok(outcomes)
    }
}

/// A pinned data epoch of a [`Session`]: queries run through a snapshot see
/// the same data version no matter how many ingest batches commit after it
/// was taken — uncommitted (and later-committed) rows are invisible.
/// Cached-plan probes still share the session's plan cache; a plan rebound
/// from it executes against this snapshot's data.
pub struct Snapshot<'s> {
    session: &'s Session,
    state: Arc<SessionState>,
}

impl Snapshot<'_> {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.state.epoch
    }

    /// The pinned catalog.
    pub fn db(&self) -> &Arc<Database> {
        &self.state.db
    }

    /// The pinned graph view.
    pub fn view(&self) -> &Arc<GraphView> {
        &self.state.view
    }

    /// Optimize + execute against the pinned epoch.
    pub fn run(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<QueryOutcome> {
        Ok(self
            .session
            .run_at(&self.state, query, mode, ProfileMode::Off)?
            .0)
    }

    /// [`Session::run_cached`] against the pinned epoch (shares the
    /// session's plan cache).
    pub fn run_cached(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<QueryOutcome> {
        self.session.run_cached_at(&self.state, query, mode)
    }

    /// The oracle against the pinned epoch.
    pub fn oracle(&self, query: &SpjmQuery) -> Result<Table> {
        self.session.oracle_at(&self.state, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::Value;
    use relgo_workloads::snb_queries;

    #[test]
    fn snb_session_runs_fig1_in_all_modes() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let query = snb_queries::fig1_example(&schema, "Tom").unwrap();
        let outcomes = session.verify_all_modes(&query).unwrap();
        assert_eq!(outcomes.len(), OptimizerMode::ALL.len());
    }

    #[test]
    fn explain_mentions_graph_table() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let query = snb_queries::ic1(&schema, 1, 5).unwrap();
        let s = session.explain(&query, OptimizerMode::RelGo).unwrap();
        assert!(s.contains("SCAN_GRAPH_TABLE"), "{s}");
        // Every line carries its pre-order op id and estimate.
        for (i, line) in s.lines().enumerate() {
            assert!(line.contains(&format!("[op={i} est=")), "line {i}: {line}");
        }
    }

    #[test]
    fn explain_analyze_reconciles_and_matches_unprofiled_run() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        for mode in [OptimizerMode::RelGo, OptimizerMode::DuckDbLike] {
            let query = snb_queries::ic1(&schema, 1, 5).unwrap();
            let ea = session.explain_analyze(&query, mode).unwrap();
            let plain = session.run(&query, mode).unwrap();
            // Profiling never changes the result (bit-identical rows).
            assert_eq!(ea.outcome.table.num_rows(), plain.table.num_rows());
            for r in 0..plain.table.num_rows() as u32 {
                assert_eq!(ea.outcome.table.row(r), plain.table.row(r));
            }
            // One profiled operator per rendered line, actual rows
            // reconciling through the tree down to the final cardinality.
            assert_eq!(ea.rendered.lines().count(), ea.report.ops.len());
            ea.report.reconcile().unwrap();
            let root = ea.report.root().unwrap();
            assert_eq!(root.prof.rows_out, ea.outcome.table.num_rows() as u64);
            assert!(ea.rendered.contains("act="), "{}", ea.rendered);
        }
        // Profiled runs feed the operator metric series.
        let snap = session.observability_snapshot();
        let names = snap.series_names();
        assert!(names.contains(&"relgo_operator_seconds"), "{names:?}");
        assert!(names.contains(&"relgo_operator_rows"), "{names:?}");
    }

    #[test]
    fn profiled_paths_agree_across_run_cached_and_prepared() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let query = snb_queries::ic1(&schema, 1, 5).unwrap();
        let (run_out, run_rep) = session.run_profiled(&query, OptimizerMode::RelGo).unwrap();
        run_rep.reconcile().unwrap();
        let (cached_out, cached_rep) = session
            .run_cached_profiled(&query, OptimizerMode::RelGo, None)
            .unwrap();
        cached_rep.reconcile().unwrap();
        assert_eq!(run_out.table.sorted_rows(), cached_out.table.sorted_rows());
        assert_eq!(
            run_rep.root().unwrap().prof.rows_out,
            cached_rep.root().unwrap().prof.rows_out
        );
    }

    #[test]
    fn imdb_session_opens() {
        let (session, schema) = Session::imdb(0.05, 7).unwrap();
        let q = relgo_workloads::job_queries::build_job(
            &schema,
            &relgo_workloads::job_queries::job_specs()[0],
        )
        .unwrap();
        let out = session.run(&q, OptimizerMode::RelGo).unwrap();
        assert_eq!(out.table.num_rows(), 1, "MIN aggregate returns one row");
    }

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("relgo_session_{tag}_{}.wal", std::process::id()));
        std::fs::remove_file(&path).ok();
        path
    }

    fn cleanup_wal(path: &Path) {
        std::fs::remove_file(path).ok();
        let store = CheckpointStore::for_wal(path);
        for (_, p) in store.list().unwrap_or_default() {
            std::fs::remove_file(p).ok();
        }
    }

    fn commit_person(session: &Session, key: i64) {
        let mut batch = session.begin_ingest();
        batch
            .insert_row(
                "Person",
                vec![key.into(), format!("P{key}").into(), Value::Date(17_000)],
            )
            .unwrap();
        batch.commit().unwrap();
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_bounds_recovery_replay() {
        use relgo_datagen::{generate_snb, SnbParams};
        let path = temp_wal("ckpt");
        let params = SnbParams { sf: 0.03, seed: 42 };
        let (db, mapping) = generate_snb(&params);
        let (session, _) = Session::open_durable(
            db,
            mapping,
            SessionOptions::default(),
            &path,
            WalOptions::default(),
        )
        .unwrap();
        for i in 0..6 {
            commit_person(&session, 800_000 + i);
        }
        let before = session.wal_bytes_since_checkpoint().unwrap();
        assert!(before > 0);

        let report = session.checkpoint().unwrap();
        assert_eq!(report.epoch, 6);
        assert_eq!(report.wal.records_dropped, 6);
        assert_eq!(session.last_checkpoint_epoch(), 6);
        assert_eq!(session.wal_bytes_since_checkpoint(), Some(0));
        assert_eq!(session.metrics().checkpoints(), 1);
        let snap = session.observability_snapshot();
        assert_eq!(snap.checkpoint_epoch, 6);
        assert_eq!(snap.wal_bytes_since_checkpoint, Some(0));

        // Two commits land after the checkpoint: the WAL holds only them.
        commit_person(&session, 800_100);
        commit_person(&session, 800_101);

        let (db, mapping) = generate_snb(&params);
        let (back, rec) = Session::recover(db, mapping, &path).unwrap();
        assert!(rec.checkpoint_loaded);
        assert_eq!(rec.checkpoint_epoch, 6);
        assert_eq!(rec.checkpoint_fallbacks, 0);
        assert_eq!(rec.records, 2, "replay is bounded to the WAL tail");
        assert_eq!(back.epoch(), session.epoch());
        assert_eq!(back.last_checkpoint_epoch(), 6);
        for name in ["Person", "Knows", "Likes"] {
            assert_eq!(
                session.db().table(name).unwrap().sorted_rows(),
                back.db().table(name).unwrap().sorted_rows(),
                "{name} survives checkpointed recovery bit-identically"
            );
        }
        // The recovered session keeps serving durably past the checkpoint.
        commit_person(&back, 800_200);
        assert_eq!(back.epoch(), 9);
        cleanup_wal(&path);
    }

    #[test]
    fn auto_checkpoint_policy_fires_on_record_threshold() {
        use relgo_datagen::{generate_snb, SnbParams};
        let path = temp_wal("autockpt");
        let (db, mapping) = generate_snb(&SnbParams { sf: 0.03, seed: 42 });
        let options = SessionOptions {
            checkpoint: Some(CheckpointPolicy {
                max_records: 3,
                max_wal_bytes: u64::MAX,
            }),
            ..SessionOptions::default()
        };
        let (session, _) =
            Session::open_durable(db, mapping, options, &path, WalOptions::default()).unwrap();
        commit_person(&session, 800_000);
        commit_person(&session, 800_001);
        assert_eq!(session.last_checkpoint_epoch(), 0, "below threshold");
        commit_person(&session, 800_002);
        assert_eq!(session.last_checkpoint_epoch(), 3, "third commit triggers");
        assert_eq!(session.metrics().checkpoints(), 1);
        commit_person(&session, 800_003);
        assert_eq!(session.last_checkpoint_epoch(), 3, "counter restarted");
        for i in 4..6 {
            commit_person(&session, 800_000 + i);
        }
        assert_eq!(session.last_checkpoint_epoch(), 6);
        assert_eq!(session.metrics().checkpoints(), 2);
        cleanup_wal(&path);
    }

    #[test]
    fn checkpoint_requires_a_durable_session() {
        let (session, _) = Session::snb(0.03, 42).unwrap();
        let err = session.checkpoint().unwrap_err();
        assert!(err.to_string().contains("durable"), "{err}");
    }

    #[test]
    fn refresh_statistics_reuses_last_tuning() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        assert_eq!(session.statistics_tuning(), (3, 1));
        session.rebuild_statistics(2, 2).unwrap();
        assert_eq!(session.statistics_tuning(), (2, 2));
        let invalidations_before = session.cache_metrics().invalidations;
        session.refresh_statistics().unwrap();
        assert_eq!(session.statistics_tuning(), (2, 2));
        assert_eq!(
            session.cache_metrics().invalidations,
            invalidations_before + 1
        );
        let gl = session.glogue();
        assert_eq!((gl.k(), gl.stride()), (2, 2));
        // Queries still answer correctly under the retuned statistics.
        let q = snb_queries::ic1(&schema, 1, 5).unwrap();
        session.run(&q, OptimizerMode::RelGo).unwrap();
    }
}
