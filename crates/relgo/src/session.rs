//! The end-to-end session API: data + mapping → optimized, executed SPJM
//! queries under any of the paper's compared systems.

use relgo_common::{RelGoError, Result};
use relgo_core::{optimize, OptStats, OptimizerMode, PhysicalPlan, PlannerContext, SpjmQuery};
use relgo_datagen::{generate_imdb, generate_snb, ImdbParams, SnbParams};
use relgo_exec::{execute_plan, ExecConfig};
use relgo_glogue::GLogue;
use relgo_graph::{GraphView, RGMapping};
use relgo_storage::{Database, Table};
use relgo_workloads::job_queries::ImdbSchema;
use relgo_workloads::snb_queries::SnbSchema;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Session construction options.
#[derive(Debug, Clone, Copy)]
pub struct SessionOptions {
    /// GLogue exact-counting threshold `k` (paper default: 3).
    pub glogue_k: usize,
    /// GLogue sparsification stride (1 = exact counting).
    pub glogue_stride: usize,
    /// Optimizer time budget (the paper's 10-minute cap, scaled down).
    pub opt_timeout: Duration,
    /// Intermediate-result row budget (models OOM).
    pub row_limit: usize,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            glogue_k: 3,
            glogue_stride: 1,
            opt_timeout: Duration::from_secs(10),
            row_limit: 50_000_000,
        }
    }
}

/// The result of one end-to-end query run.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The query result.
    pub table: Table,
    /// Optimizer statistics (wall time, plans visited, timeout flag).
    pub opt: OptStats,
    /// Execution wall time.
    pub exec_time: Duration,
}

impl QueryOutcome {
    /// End-to-end time: optimization + execution (the paper's reporting
    /// unit from §5.2 onward).
    pub fn e2e(&self) -> Duration {
        self.opt.elapsed + self.exec_time
    }
}

/// An open database + property-graph session.
pub struct Session {
    db: Arc<Database>,
    view: Arc<GraphView>,
    glogue: Arc<GLogue>,
    options: SessionOptions,
}

impl Session {
    /// Open a session over `db` with the given RGMapping: builds the graph
    /// view, the GRainDB-style graph index, and the GLogue statistics.
    pub fn open(db: Database, mapping: RGMapping) -> Result<Session> {
        Session::open_with(db, mapping, SessionOptions::default())
    }

    /// Open with explicit options.
    pub fn open_with(
        mut db: Database,
        mapping: RGMapping,
        options: SessionOptions,
    ) -> Result<Session> {
        let mut view = GraphView::build(&mut db, mapping)?;
        view.build_index()?;
        let view = Arc::new(view);
        let glogue = Arc::new(GLogue::new(
            Arc::clone(&view),
            options.glogue_k,
            options.glogue_stride,
        )?);
        Ok(Session {
            db: Arc::new(db),
            view,
            glogue,
            options,
        })
    }

    /// Generate and open the LDBC-SNB-like dataset at scale factor `sf`.
    pub fn snb(sf: f64, seed: u64) -> Result<(Session, SnbSchema)> {
        let (db, mapping) = generate_snb(&SnbParams { sf, seed });
        let session = Session::open(db, mapping)?;
        let schema = SnbSchema::resolve(session.view.schema())?;
        Ok((session, schema))
    }

    /// Generate and open the IMDB-like dataset at scale factor `sf`.
    pub fn imdb(sf: f64, seed: u64) -> Result<(Session, ImdbSchema)> {
        let (db, mapping) = generate_imdb(&ImdbParams { sf, seed });
        let session = Session::open(db, mapping)?;
        let schema = ImdbSchema::resolve(session.view.schema())?;
        Ok((session, schema))
    }

    /// The catalog.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The graph view.
    pub fn view(&self) -> &Arc<GraphView> {
        &self.view
    }

    /// The GLogue statistics.
    pub fn glogue(&self) -> &Arc<GLogue> {
        &self.glogue
    }

    /// The session options.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    fn planner_context(&self) -> PlannerContext {
        PlannerContext {
            view: Arc::clone(&self.view),
            db: Arc::clone(&self.db),
            glogue: Some(Arc::clone(&self.glogue)),
            timeout: self.options.opt_timeout,
        }
    }

    /// Optimize a query under `mode`.
    pub fn optimize(
        &self,
        query: &SpjmQuery,
        mode: OptimizerMode,
    ) -> Result<(PhysicalPlan, OptStats)> {
        optimize(query, mode, &self.planner_context())
    }

    /// Execute a previously optimized plan under `mode`'s execution regime.
    pub fn execute(&self, plan: &PhysicalPlan, mode: OptimizerMode) -> Result<Table> {
        let cfg = ExecConfig {
            use_index: mode.uses_graph_index(),
            row_limit: self.options.row_limit,
        };
        execute_plan(plan, &self.view, &self.db, &cfg)
    }

    /// Optimize + execute, reporting timings.
    pub fn run(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<QueryOutcome> {
        let (plan, opt) = self.optimize(query, mode)?;
        let start = Instant::now();
        let table = self.execute(&plan, mode)?;
        Ok(QueryOutcome {
            table,
            opt,
            exec_time: start.elapsed(),
        })
    }

    /// Execute the query through the naive oracle (no optimizer at all).
    pub fn oracle(&self, query: &SpjmQuery) -> Result<Table> {
        relgo_exec::oracle::execute_query(query, &self.view, &self.db)
    }

    /// EXPLAIN: the optimized plan as text.
    pub fn explain(&self, query: &SpjmQuery, mode: OptimizerMode) -> Result<String> {
        let (plan, _) = self.optimize(query, mode)?;
        Ok(plan.explain())
    }

    /// Check that every optimizer mode agrees with the oracle on `query`;
    /// returns the per-mode outcomes (testing and demo helper).
    pub fn verify_all_modes(
        &self,
        query: &SpjmQuery,
    ) -> Result<Vec<(OptimizerMode, QueryOutcome)>> {
        let expected = self.oracle(query)?.sorted_rows();
        let mut outcomes = Vec::new();
        for mode in OptimizerMode::ALL {
            let outcome = self.run(query, mode)?;
            if outcome.table.sorted_rows() != expected {
                return Err(RelGoError::execution(format!(
                    "{} disagrees with the oracle ({} vs {} rows)",
                    mode.name(),
                    outcome.table.num_rows(),
                    expected.len()
                )));
            }
            outcomes.push((mode, outcome));
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_workloads::snb_queries;

    #[test]
    fn snb_session_runs_fig1_in_all_modes() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let query = snb_queries::fig1_example(&schema, "Tom").unwrap();
        let outcomes = session.verify_all_modes(&query).unwrap();
        assert_eq!(outcomes.len(), OptimizerMode::ALL.len());
    }

    #[test]
    fn explain_mentions_graph_table() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let query = snb_queries::ic1(&schema, 1, 5).unwrap();
        let s = session.explain(&query, OptimizerMode::RelGo).unwrap();
        assert!(s.contains("SCAN_GRAPH_TABLE"), "{s}");
    }

    #[test]
    fn imdb_session_opens() {
        let (session, schema) = Session::imdb(0.05, 7).unwrap();
        let q = relgo_workloads::job_queries::build_job(
            &schema,
            &relgo_workloads::job_queries::job_specs()[0],
        )
        .unwrap();
        let out = session.run(&q, OptimizerMode::RelGo).unwrap();
        assert_eq!(out.table.num_rows(), 1, "MIN aggregate returns one row");
    }
}
