//! A small serving driver: replay a templated workload against one shared
//! [`Session`] from many threads, through the plan cache.
//!
//! This is the contention-safety proof for `relgo-cache`: every worker
//! calls [`Session::run_cached`] on its own template instances while
//! sharing the session (graph view, GLogue, plan cache) with all the
//! others. The report carries the cache-metric deltas so callers can
//! assert the expected hit/miss split.
//!
//! Inter- and intra-query parallelism compose: the `threads` argument here
//! is the number of concurrent *queries*, while
//! [`crate::SessionOptions::threads`] controls the morsel workers *inside*
//! each query's graph operators (and GLogue counting). A serving setup
//! typically uses many replay threads × few intra-query threads for
//! throughput, or the reverse for latency on heavy analytical queries.

use crate::session::Session;
use relgo_cache::MetricsSnapshot;
use relgo_common::{RelGoError, Result};
use relgo_core::OptimizerMode;
use relgo_workloads::templates::QueryTemplate;
use std::time::{Duration, Instant};

/// What one [`replay_concurrent`] run did.
#[derive(Debug, Clone, Copy)]
pub struct ReplayReport {
    /// Queries executed (threads × rounds × templates).
    pub queries: usize,
    /// Wall time of the whole replay.
    pub elapsed: Duration,
    /// Sum of per-query optimizer time (rebind time on hits).
    pub opt_time: Duration,
    /// Sum of per-query execution time.
    pub exec_time: Duration,
    /// Queries answered from the plan cache.
    pub cached_queries: usize,
    /// Plan-cache metric deltas over the replay.
    pub metrics: MetricsSnapshot,
}

impl ReplayReport {
    /// Queries per second of wall time.
    pub fn throughput(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Replay `rounds` rounds of every template from `threads` worker threads
/// against one shared session under `mode`.
///
/// Worker `w`'s draw for round `r` is `w * rounds + r`, so literals vary
/// across workers and rounds while template structure repeats — the plan
/// cache's intended traffic. Errors from any worker abort the replay.
pub fn replay_concurrent(
    session: &Session,
    templates: &[QueryTemplate],
    mode: OptimizerMode,
    threads: usize,
    rounds: usize,
) -> Result<ReplayReport> {
    let threads = threads.max(1);
    let rounds = rounds.max(1);
    let before = session.cache_metrics();
    let start = Instant::now();

    let worker = |w: usize| -> Result<(Duration, Duration, usize)> {
        let mut opt = Duration::ZERO;
        let mut exec = Duration::ZERO;
        let mut cached = 0usize;
        for r in 0..rounds {
            let draw = (w * rounds + r) as u64;
            for t in templates {
                let query = t.instantiate(draw)?;
                let out = session.run_cached(&query, mode)?;
                opt += out.opt.elapsed;
                exec += out.exec_time;
                cached += usize::from(out.cached);
            }
        }
        Ok((opt, exec, cached))
    };

    let results: Vec<Result<(Duration, Duration, usize)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(RelGoError::execution("replay worker panicked")))
            })
            .collect()
    });

    let mut opt_time = Duration::ZERO;
    let mut exec_time = Duration::ZERO;
    let mut cached_queries = 0usize;
    for r in results {
        let (o, e, c) = r?;
        opt_time += o;
        exec_time += e;
        cached_queries += c;
    }

    Ok(ReplayReport {
        queries: threads * rounds * templates.len(),
        elapsed: start.elapsed(),
        opt_time,
        exec_time,
        cached_queries,
        metrics: session.cache_metrics().since(&before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionOptions;
    use relgo_workloads::templates::snb_templates;

    #[test]
    fn replay_composes_with_intra_query_threads() {
        let opts = SessionOptions {
            threads: 2,
            ..SessionOptions::default()
        };
        let (session, schema) = Session::snb_with(0.03, 42, opts).unwrap();
        let templates = snb_templates(&schema);
        for t in &templates {
            session
                .run_cached(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
                .unwrap();
        }
        // 2 replay workers × 2 morsel workers inside each query.
        let report = replay_concurrent(&session, &templates, OptimizerMode::RelGo, 2, 2).unwrap();
        assert_eq!(report.queries, 2 * 2 * templates.len());
        assert_eq!(report.cached_queries, report.queries);
    }

    #[test]
    fn replay_is_contention_safe_and_mostly_cached() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let templates = snb_templates(&schema);
        // Prime single-threaded so the concurrent phase is deterministic.
        for t in &templates {
            session
                .run_cached(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
                .unwrap();
        }
        let report = replay_concurrent(&session, &templates, OptimizerMode::RelGo, 4, 3).unwrap();
        assert_eq!(report.queries, 4 * 3 * templates.len());
        assert_eq!(report.metrics.hits as usize, report.queries);
        assert_eq!(report.metrics.misses, 0);
        assert_eq!(report.cached_queries, report.queries);
        assert!(report.throughput() > 0.0);
    }
}
