//! A small serving driver: replay a templated workload against one shared
//! [`Session`] from many threads, through the plan cache or through
//! prepared-statement handles.
//!
//! This is the contention-safety proof for `relgo-cache` and
//! `relgo::prepared`: every worker serves its own template instances while
//! sharing the session (graph view, GLogue, plan cache, pinned handles)
//! with all the others. The report carries the cache-metric deltas so
//! callers can assert the expected hit/miss split.
//!
//! Three serving regimes ([`ServeMode`]):
//!
//! * [`ServeMode::Cached`] — every query goes through
//!   [`Session::run_cached`] (parameterize + cache probe + rebind);
//! * [`ServeMode::Prepared`] — each template is prepared **once** (shared
//!   by all workers); per draw only the binding vector is generated and
//!   [`PreparedStatement::execute`] rebinds the pinned skeleton;
//! * [`ServeMode::PreparedBatched`] — like `Prepared`, but each worker
//!   groups its draws into batches of `batch` bindings driven through
//!   [`PreparedStatement::execute_batch`]'s shared operator state.
//!
//! Inter- and intra-query parallelism compose: the `threads` argument here
//! is the number of concurrent *queries*, while
//! [`crate::SessionOptions::threads`] controls the morsel workers *inside*
//! each query's graph operators (and GLogue counting). A serving setup
//! typically uses many replay threads × few intra-query threads for
//! throughput, or the reverse for latency on heavy analytical queries.
//!
//! ## Worker errors
//!
//! The first error aborts the replay: an atomic abort flag stops the other
//! workers at their next query boundary, and the error is propagated in
//! worker order. Per-worker tallies only ever count *completed* queries,
//! so the session's cache-metric deltas stay consistent with the work that
//! actually ran — an aborted replay never reports planned-but-unexecuted
//! queries (and therefore never inflates a throughput computed from them).

use crate::prepared::PreparedStatement;
use crate::session::Session;
use relgo_cache::MetricsSnapshot;
use relgo_common::{RelGoError, Result};
use relgo_core::OptimizerMode;
use relgo_workloads::templates::QueryTemplate;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// How [`replay_concurrent_with`] drives each query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Per query: parameterize, probe the plan cache, rebind
    /// ([`Session::run_cached`]).
    Cached,
    /// Prepare each template once, then rebind-only executes per draw.
    Prepared,
    /// Prepared, with each worker's draws executed in batches of `batch`
    /// bindings through the shared batch operator state.
    PreparedBatched {
        /// Bindings per `execute_batch` call (≥ 1).
        batch: usize,
    },
}

impl ServeMode {
    /// Short display name (figure tables).
    pub fn name(&self) -> &'static str {
        match self {
            ServeMode::Cached => "cached",
            ServeMode::Prepared => "prepared",
            ServeMode::PreparedBatched { .. } => "prep-batch",
        }
    }
}

/// What one replay run did.
#[derive(Debug, Clone, Copy)]
pub struct ReplayReport {
    /// Queries that **completed** (threads × rounds × templates when no
    /// worker failed).
    pub queries: usize,
    /// Wall time of the whole replay.
    pub elapsed: Duration,
    /// Sum of per-query optimizer time (rebind time on hits).
    pub opt_time: Duration,
    /// Sum of per-query execution time.
    pub exec_time: Duration,
    /// Queries answered without the optimizer (plan-cache hit or pinned
    /// prepared skeleton).
    pub cached_queries: usize,
    /// Queries served through a prepared handle (0 in [`ServeMode::Cached`]).
    pub prepared_queries: usize,
    /// `execute_batch` calls (0 outside [`ServeMode::PreparedBatched`]).
    pub batches: usize,
    /// Plan-cache metric deltas over the replay.
    pub metrics: MetricsSnapshot,
}

impl ReplayReport {
    /// Completed queries per second of wall time.
    pub fn throughput(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Per-worker tally of completed work (queries that failed are *not*
/// counted — see the module docs on worker errors).
#[derive(Default)]
struct Tally {
    completed: usize,
    cached: usize,
    prepared: usize,
    batches: usize,
    opt: Duration,
    exec: Duration,
    error: Option<RelGoError>,
}

/// Replay `rounds` rounds of every template from `threads` worker threads
/// against one shared session under `mode`, through the plan cache
/// ([`ServeMode::Cached`]). See [`replay_concurrent_with`].
pub fn replay_concurrent(
    session: &Session,
    templates: &[QueryTemplate],
    mode: OptimizerMode,
    threads: usize,
    rounds: usize,
) -> Result<ReplayReport> {
    replay_concurrent_with(session, templates, mode, threads, rounds, ServeMode::Cached)
}

/// Replay `rounds` rounds of every template from `threads` worker threads
/// against one shared session under `mode`, serving through `serve`.
///
/// Worker `w`'s draw for round `r` is `w * rounds + r`, so literals vary
/// across workers and rounds while template structure repeats — the plan
/// cache's (and the prepared handles') intended traffic. The first worker
/// error aborts the replay.
pub fn replay_concurrent_with(
    session: &Session,
    templates: &[QueryTemplate],
    mode: OptimizerMode,
    threads: usize,
    rounds: usize,
    serve: ServeMode,
) -> Result<ReplayReport> {
    let threads = threads.max(1);
    let rounds = rounds.max(1);
    let before = session.cache_metrics();
    let start = Instant::now();

    // Prepared regimes: one shared handle per template, prepared from the
    // draw-0 instance before any worker starts (so workers never optimize).
    let statements: Vec<PreparedStatement<'_>> = match serve {
        ServeMode::Cached => Vec::new(),
        ServeMode::Prepared | ServeMode::PreparedBatched { .. } => templates
            .iter()
            .map(|t| session.prepare(&t.instantiate(0)?, mode))
            .collect::<Result<_>>()?,
    };

    let abort = AtomicBool::new(false);
    // One unit of serving work, however the mode shapes it (a query or a
    // whole batch). Shared so the abort/tally/error bookkeeping below
    // cannot diverge between the three regimes.
    struct Step {
        completed: usize,
        cached: usize,
        prepared: usize,
        batches: usize,
        opt: Duration,
        exec: Duration,
    }
    // Run one work unit and record it; returns whether the worker should
    // keep going. The abort check precedes the work, so every unit that
    // *ran* (and therefore touched session metrics) is always tallied.
    let step = |tally: &mut Tally, work: &mut dyn FnMut() -> Result<Step>| -> bool {
        if abort.load(Ordering::Acquire) {
            return false;
        }
        match work() {
            Ok(s) => {
                tally.completed += s.completed;
                tally.cached += s.cached;
                tally.prepared += s.prepared;
                tally.batches += s.batches;
                tally.opt += s.opt;
                tally.exec += s.exec;
                true
            }
            Err(e) => {
                abort.store(true, Ordering::Release);
                tally.error = Some(e);
                false
            }
        }
    };
    let worker = |w: usize| -> Tally {
        let mut tally = Tally::default();
        match serve {
            ServeMode::Cached => {
                'outer: for r in 0..rounds {
                    for t in templates {
                        let draw = (w * rounds + r) as u64;
                        let keep = step(&mut tally, &mut || {
                            let o = session.run_cached(&t.instantiate(draw)?, mode)?;
                            Ok(Step {
                                completed: 1,
                                cached: usize::from(o.cached),
                                prepared: 0,
                                batches: 0,
                                opt: o.opt.elapsed,
                                exec: o.exec_time,
                            })
                        });
                        if !keep {
                            break 'outer;
                        }
                    }
                }
            }
            ServeMode::Prepared => {
                'outer: for r in 0..rounds {
                    for (t, stmt) in templates.iter().zip(&statements) {
                        let draw = (w * rounds + r) as u64;
                        let keep = step(&mut tally, &mut || {
                            let o = stmt.execute(&t.bindings(draw)?)?;
                            Ok(Step {
                                completed: 1,
                                cached: usize::from(o.cached),
                                prepared: 1,
                                batches: 0,
                                opt: o.opt.elapsed,
                                exec: o.exec_time,
                            })
                        });
                        if !keep {
                            break 'outer;
                        }
                    }
                }
            }
            ServeMode::PreparedBatched { batch } => {
                let batch = batch.max(1);
                'outer: for (t, stmt) in templates.iter().zip(&statements) {
                    let draws: Vec<u64> = (0..rounds).map(|r| (w * rounds + r) as u64).collect();
                    for chunk in draws.chunks(batch) {
                        let keep = step(&mut tally, &mut || {
                            let bindings = chunk
                                .iter()
                                .map(|&d| t.bindings(d))
                                .collect::<Result<Vec<_>>>()?;
                            let o = stmt.execute_batch(&bindings)?;
                            Ok(Step {
                                completed: o.tables.len(),
                                cached: o.pinned_queries,
                                prepared: o.tables.len(),
                                batches: 1,
                                opt: o.opt.elapsed,
                                exec: o.exec_time,
                            })
                        });
                        if !keep {
                            break 'outer;
                        }
                    }
                }
            }
        }
        tally
    };

    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| Tally {
                    error: Some(RelGoError::execution("replay worker panicked")),
                    ..Tally::default()
                })
            })
            .collect()
    });

    let elapsed = start.elapsed();
    let mut report = ReplayReport {
        queries: 0,
        elapsed,
        opt_time: Duration::ZERO,
        exec_time: Duration::ZERO,
        cached_queries: 0,
        prepared_queries: 0,
        batches: 0,
        metrics: session.cache_metrics().since(&before),
    };
    let mut first_error = None;
    for tally in tallies {
        report.queries += tally.completed;
        report.cached_queries += tally.cached;
        report.prepared_queries += tally.prepared;
        report.batches += tally.batches;
        report.opt_time += tally.opt;
        report.exec_time += tally.exec;
        if first_error.is_none() {
            first_error = tally.error;
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionOptions;
    use relgo_workloads::snb_queries;
    use relgo_workloads::templates::snb_templates;

    #[test]
    fn replay_composes_with_intra_query_threads() {
        let opts = SessionOptions {
            threads: 2,
            ..SessionOptions::default()
        };
        let (session, schema) = Session::snb_with(0.03, 42, opts).unwrap();
        let templates = snb_templates(&schema);
        for t in &templates {
            session
                .run_cached(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
                .unwrap();
        }
        // 2 replay workers × 2 morsel workers inside each query.
        let report = replay_concurrent(&session, &templates, OptimizerMode::RelGo, 2, 2).unwrap();
        assert_eq!(report.queries, 2 * 2 * templates.len());
        assert_eq!(report.cached_queries, report.queries);
        assert_eq!(report.prepared_queries, 0);
        assert_eq!(report.batches, 0);
    }

    #[test]
    fn replay_is_contention_safe_and_mostly_cached() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let templates = snb_templates(&schema);
        // Prime single-threaded so the concurrent phase is deterministic.
        for t in &templates {
            session
                .run_cached(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
                .unwrap();
        }
        let report = replay_concurrent(&session, &templates, OptimizerMode::RelGo, 4, 3).unwrap();
        assert_eq!(report.queries, 4 * 3 * templates.len());
        assert_eq!(report.metrics.hits as usize, report.queries);
        assert_eq!(report.metrics.misses, 0);
        assert_eq!(report.cached_queries, report.queries);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn prepared_replay_is_rebind_only_and_row_identical() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let templates = snb_templates(&schema);
        let (threads, rounds) = (3, 2);
        let report = replay_concurrent_with(
            &session,
            &templates,
            OptimizerMode::RelGo,
            threads,
            rounds,
            ServeMode::Prepared,
        )
        .unwrap();
        let expected = threads * rounds * templates.len();
        assert_eq!(report.queries, expected);
        assert_eq!(report.prepared_queries, expected);
        assert_eq!(report.cached_queries, expected, "{:?}", report.metrics);
        assert_eq!(report.metrics.prepared_hits as usize, expected);
        // Preparation probed the cache once per template; no query paid a
        // probe after that.
        assert_eq!(
            report.metrics.hits + report.metrics.misses,
            templates.len() as u64
        );
    }

    #[test]
    fn batched_replay_matches_prepared_counts() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let templates = snb_templates(&schema);
        let (threads, rounds) = (2, 5);
        let report = replay_concurrent_with(
            &session,
            &templates,
            OptimizerMode::RelGo,
            threads,
            rounds,
            ServeMode::PreparedBatched { batch: 2 },
        )
        .unwrap();
        let expected = threads * rounds * templates.len();
        assert_eq!(report.queries, expected);
        assert_eq!(report.prepared_queries, expected);
        assert_eq!(report.cached_queries, expected);
        // 5 rounds in batches of 2 → 3 batches per (worker, template).
        assert_eq!(report.batches, threads * templates.len() * 3);
    }

    /// Satellite regression: a template failing mid-replay aborts with the
    /// original error, and the metric deltas only reflect queries that
    /// actually ran — nothing is counted "before error propagation".
    #[test]
    fn worker_error_aborts_with_consistent_metrics() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let good = QueryTemplate::new("good", move |d| {
            snb_queries::ic1(&schema, 2, (d % 20) as i64)
        });
        let failing = QueryTemplate::new("failing", move |d| {
            if d >= 2 {
                Err(RelGoError::execution("synthetic template failure"))
            } else {
                snb_queries::ic7(&schema, (d % 20) as i64)
            }
        });
        let templates = vec![good, failing];
        let before = session.cache_metrics();
        // threads=1 makes the abort point deterministic: rounds 0 and 1
        // complete both templates (4 queries), round 2 completes `good` and
        // then `failing` errors at draw 2.
        let err = replay_concurrent(&session, &templates, OptimizerMode::RelGo, 1, 4).unwrap_err();
        assert!(
            err.to_string().contains("synthetic template failure"),
            "{err}"
        );
        let delta = session.cache_metrics().since(&before);
        assert_eq!(
            delta.hits + delta.misses,
            5,
            "exactly the completed queries touched the cache: {delta:?}"
        );
        // The replay still serves correctly afterwards (no poisoned state).
        let report =
            replay_concurrent(&session, &templates[..1], OptimizerMode::RelGo, 2, 2).unwrap();
        assert_eq!(report.queries, 4);
    }

    /// A failing query (not a failing instantiate) mid-batch also aborts
    /// cleanly in the batched regime.
    #[test]
    fn batched_replay_propagates_binding_errors() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let t = QueryTemplate::new("bad-bindings", move |d| {
            snb_queries::ic1(&schema, 2, (d % 20) as i64)
        })
        // Wrong arity from draw 3 on: execute_batch must reject it.
        .with_bindings(|d| {
            if d >= 3 {
                vec![]
            } else {
                vec![relgo_common::Value::Int((d % 20) as i64)]
            }
        });
        let before = session.cache_metrics();
        let err = replay_concurrent_with(
            &session,
            &[t],
            OptimizerMode::RelGo,
            1,
            4,
            ServeMode::PreparedBatched { batch: 4 },
        )
        .unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
        // Up-front validation rejected the whole batch before any member
        // was rebound: no prepared hit is counted for work that never ran.
        assert_eq!(session.cache_metrics().since(&before).prepared_hits, 0);
    }
}
