//! A small serving driver: replay a templated workload against one shared
//! [`Session`] from many threads, through the plan cache or through
//! prepared-statement handles.
//!
//! This is the contention-safety proof for `relgo-cache` and
//! `relgo::prepared`: every worker serves its own template instances while
//! sharing the session (graph view, GLogue, plan cache, pinned handles)
//! with all the others. The report carries the cache-metric deltas so
//! callers can assert the expected hit/miss split.
//!
//! Four serving regimes ([`ServeMode`]):
//!
//! * [`ServeMode::Cached`] — every query goes through
//!   [`Session::run_cached`] (parameterize + cache probe + rebind);
//! * [`ServeMode::Prepared`] — each template is prepared **once** (shared
//!   by all workers); per draw only the binding vector is generated and
//!   [`PreparedStatement::execute`] rebinds the pinned skeleton;
//! * [`ServeMode::PreparedBatched`] — like `Prepared`, but each worker
//!   groups its draws into batches of `batch` bindings driven through
//!   [`PreparedStatement::execute_batch`]'s shared operator state;
//! * [`ServeMode::Mixed`] — `writers` concurrent writer threads ingest
//!   update batches (each commit publishing a new epoch and invalidating
//!   cached plans/pins) while reader threads serve snapshot-pinned,
//!   **verified** cached queries plus prepared executes; a settle pass
//!   re-verifies both paths against the final epoch after the writers
//!   finish. Each writer round deliberately stages one *shared* marker row
//!   across all writers, so first-committer-wins MVCC validation fires on
//!   every multi-writer round: exactly one writer wins the marker, the
//!   losers observe [`crate::CommitError::Conflict`] and retry their
//!   private rows — the report's `conflicts` counter proves the collisions
//!   happened and `ingested_rows` counts only what actually committed. On a
//!   durable session ([`crate::Session::open_durable`]) the report also
//!   carries the WAL counter deltas, where `syncs < records` under
//!   concurrent writers shows group commit amortizing the fsyncs.
//!
//! Inter- and intra-query parallelism compose: the `threads` argument here
//! is the number of concurrent *queries*, while
//! [`crate::SessionOptions::threads`] controls the morsel workers *inside*
//! each query's graph operators (and GLogue counting). A serving setup
//! typically uses many replay threads × few intra-query threads for
//! throughput, or the reverse for latency on heavy analytical queries.
//!
//! ## Worker errors
//!
//! The first error aborts the replay: an atomic abort flag stops the other
//! workers at their next query boundary, and the error is propagated in
//! worker order. Per-worker tallies only ever count *completed* queries,
//! so the session's cache-metric deltas stay consistent with the work that
//! actually ran — an aborted replay never reports planned-but-unexecuted
//! queries (and therefore never inflates a throughput computed from them).

use crate::ingest::IngestBatch;
use crate::prepared::PreparedStatement;
use crate::session::Session;
use relgo_cache::MetricsSnapshot;
use relgo_common::{RelGoError, Result, Value};
use relgo_core::OptimizerMode;
use relgo_metrics::{Histogram, HistogramSnapshot};
use relgo_workloads::templates::QueryTemplate;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// How [`replay_concurrent_with`] drives each query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Per query: parameterize, probe the plan cache, rebind
    /// ([`Session::run_cached`]).
    Cached,
    /// Prepare each template once, then rebind-only executes per draw.
    Prepared,
    /// Prepared, with each worker's draws executed in batches of `batch`
    /// bindings through the shared batch operator state.
    PreparedBatched {
        /// Bindings per `execute_batch` call (≥ 1).
        batch: usize,
    },
    /// Interleave writers and readers: `writers` concurrent writer threads
    /// publish `commits` epoch-publishing batches of `ops_per_commit`
    /// private rows each (disjoint primary-key ranges per batch), while
    /// `threads` reader threads serve the templates — every cached read is
    /// pinned to an epoch snapshot and **verified** against a fresh
    /// optimization on the same snapshot (a divergence aborts the replay),
    /// and every round also fires a prepared execute so commits exercise
    /// pin invalidation.
    ///
    /// Writers proceed in rounds (one commit per writer per round) and
    /// every round's batches additionally stage one *shared* marker row, so
    /// on a multi-writer round the commits provably race: exactly one
    /// writer wins the marker, the losers observe the retryable
    /// [`crate::CommitError::Conflict`] (counted in
    /// [`ReplayReport::conflicts`]) and re-commit their private rows
    /// without it. After the threads join, a final verified cached+prepared
    /// pass per template runs against the settled epoch. Requires an
    /// SNB-shaped session.
    Mixed {
        /// Ingest commits published across all writers.
        commits: usize,
        /// Private rows per commit (≥ 1; a winning round commit carries one
        /// extra marker row).
        ops_per_commit: usize,
        /// Concurrent writer threads (≥ 1).
        writers: usize,
    },
}

impl ServeMode {
    /// Short display name (figure tables).
    pub fn name(&self) -> &'static str {
        match self {
            ServeMode::Cached => "cached",
            ServeMode::Prepared => "prepared",
            ServeMode::PreparedBatched { .. } => "prep-batch",
            ServeMode::Mixed { .. } => "mixed",
        }
    }
}

/// What one replay run did.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Queries that **completed** (threads × rounds × templates when no
    /// worker failed).
    pub queries: usize,
    /// Wall time of the whole replay.
    pub elapsed: Duration,
    /// Sum of per-query optimizer time (rebind time on hits).
    pub opt_time: Duration,
    /// Sum of per-query execution time.
    pub exec_time: Duration,
    /// Queries answered without the optimizer (plan-cache hit or pinned
    /// prepared skeleton).
    pub cached_queries: usize,
    /// Queries served through a prepared handle (0 in [`ServeMode::Cached`]).
    pub prepared_queries: usize,
    /// `execute_batch` calls (0 outside [`ServeMode::PreparedBatched`]).
    pub batches: usize,
    /// Ingest commits published (0 outside [`ServeMode::Mixed`]).
    pub commits: usize,
    /// Rows actually committed by the writers — staged rows of batches that
    /// lost a write conflict are *not* counted until their retry commits (0
    /// outside [`ServeMode::Mixed`]).
    pub ingested_rows: usize,
    /// First-committer-wins losses observed (and retried) by the writers
    /// (0 outside multi-writer [`ServeMode::Mixed`]).
    pub conflicts: usize,
    /// WAL counter deltas over the replay on a durable session (`None`
    /// otherwise). `syncs < records` under concurrent writers is group
    /// commit amortizing the fsyncs.
    pub wal: Option<relgo_delta::wal::WalStats>,
    /// Plan-cache metric deltas over the replay (hits/misses/invalidations/
    /// prepared invalidations as a snapshot diff — mixed-mode figures read
    /// cache behavior off this).
    pub metrics: MetricsSnapshot,
    /// Per-query end-to-end latency distribution over the replay
    /// (optimizer plus execution per query; batched queries contribute
    /// their per-query share). `latency.p50()` / `latency.p99()` are the
    /// serving-mode figures' reporting unit.
    pub latency: HistogramSnapshot,
}

impl ReplayReport {
    /// Completed queries per second of wall time.
    pub fn throughput(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Median per-query latency (`None` when no query completed).
    pub fn p50(&self) -> Option<Duration> {
        self.latency.p50()
    }

    /// 99th-percentile per-query latency (`None` when no query completed or
    /// the tail fell into the overflow bucket).
    pub fn p99(&self) -> Option<Duration> {
        self.latency.p99()
    }
}

/// Counters for one unit of completed serving work — also the shape of a
/// whole worker's tally, so one `merge` covers both accumulations.
#[derive(Default)]
struct Counts {
    completed: usize,
    cached: usize,
    prepared: usize,
    batches: usize,
    commits: usize,
    ingested: usize,
    conflicts: usize,
    opt: Duration,
    exec: Duration,
}

impl Counts {
    fn merge(&mut self, o: &Counts) {
        self.completed += o.completed;
        self.cached += o.cached;
        self.prepared += o.prepared;
        self.batches += o.batches;
        self.commits += o.commits;
        self.ingested += o.ingested;
        self.conflicts += o.conflicts;
        self.opt += o.opt;
        self.exec += o.exec;
    }
}

/// Per-worker tally of completed work (queries that failed are *not*
/// counted — see the module docs on worker errors).
#[derive(Default)]
struct Tally {
    counts: Counts,
    error: Option<RelGoError>,
}

/// Replay `rounds` rounds of every template from `threads` worker threads
/// against one shared session under `mode`, through the plan cache
/// ([`ServeMode::Cached`]). See [`replay_concurrent_with`].
pub fn replay_concurrent(
    session: &Session,
    templates: &[QueryTemplate],
    mode: OptimizerMode,
    threads: usize,
    rounds: usize,
) -> Result<ReplayReport> {
    replay_concurrent_with(session, templates, mode, threads, rounds, ServeMode::Cached)
}

/// Replay `rounds` rounds of every template from `threads` worker threads
/// against one shared session under `mode`, serving through `serve`.
///
/// Worker `w`'s draw for round `r` is `w * rounds + r`, so literals vary
/// across workers and rounds while template structure repeats — the plan
/// cache's (and the prepared handles') intended traffic. The first worker
/// error aborts the replay.
pub fn replay_concurrent_with(
    session: &Session,
    templates: &[QueryTemplate],
    mode: OptimizerMode,
    threads: usize,
    rounds: usize,
    serve: ServeMode,
) -> Result<ReplayReport> {
    let threads = threads.max(1);
    let rounds = rounds.max(1);
    let before = session.cache_metrics();
    let wal_before = session.wal_stats();
    // Per-query latency distribution, recorded by every worker (the
    // session's registry sees the same durations through its own
    // `relgo_query_seconds` histograms; this one is scoped to the replay).
    let latency = Histogram::latency();
    let start = Instant::now();

    // Prepared regimes: one shared handle per template, prepared from the
    // draw-0 instance before any worker starts (so workers never optimize).
    let statements: Vec<PreparedStatement<'_>> = match serve {
        ServeMode::Cached => Vec::new(),
        ServeMode::Prepared | ServeMode::PreparedBatched { .. } | ServeMode::Mixed { .. } => {
            templates
                .iter()
                .map(|t| session.prepare(&t.instantiate(0)?, mode))
                .collect::<Result<_>>()?
        }
    };
    // Mixed mode: writers commit in rounds, synchronized per round by a
    // barrier *between staging and committing*, so every batch of a round
    // shares a base epoch that predates the round's first publish — the
    // shared marker row then makes first-committer-wins validation fire
    // deterministically (one winner, `participants - 1` conflicts).
    let (mixed_commits, mixed_ops, mixed_writers) = match serve {
        ServeMode::Mixed {
            commits,
            ops_per_commit,
            writers,
        } => (commits, ops_per_commit.max(1), writers.max(1)),
        _ => (0, 1, 1),
    };
    let writer_rounds = mixed_commits.div_ceil(mixed_writers);
    let barriers: Vec<std::sync::Barrier> = (0..writer_rounds)
        .map(|r| {
            std::sync::Barrier::new(
                mixed_commits
                    .saturating_sub(r * mixed_writers)
                    .min(mixed_writers),
            )
        })
        .collect();

    let abort = AtomicBool::new(false);
    // Run one unit of serving work (a query or a whole batch, however the
    // mode shapes it) and record it; returns whether the worker should
    // keep going. Shared so the abort/tally/error bookkeeping cannot
    // diverge between the regimes: the abort check precedes the work, so
    // every unit that *ran* (and therefore touched session metrics) is
    // always tallied.
    let step = |tally: &mut Tally, work: &mut dyn FnMut() -> Result<Counts>| -> bool {
        if abort.load(Ordering::Acquire) {
            return false;
        }
        match work() {
            Ok(s) => {
                tally.counts.merge(&s);
                true
            }
            Err(e) => {
                abort.store(true, Ordering::Release);
                tally.error = Some(e);
                false
            }
        }
    };
    let worker = |w: usize| -> Tally {
        let mut tally = Tally::default();
        match serve {
            ServeMode::Cached => {
                'outer: for r in 0..rounds {
                    for t in templates {
                        let draw = (w * rounds + r) as u64;
                        let keep = step(&mut tally, &mut || {
                            let o = session.run_cached(&t.instantiate(draw)?, mode)?;
                            latency.record(o.e2e());
                            Ok(Counts {
                                completed: 1,
                                cached: usize::from(o.cached),
                                opt: o.opt.elapsed,
                                exec: o.exec_time,
                                ..Counts::default()
                            })
                        });
                        if !keep {
                            break 'outer;
                        }
                    }
                }
            }
            ServeMode::Prepared => {
                'outer: for r in 0..rounds {
                    for (t, stmt) in templates.iter().zip(&statements) {
                        let draw = (w * rounds + r) as u64;
                        let keep = step(&mut tally, &mut || {
                            let o = stmt.execute(&t.bindings(draw)?)?;
                            latency.record(o.e2e());
                            Ok(Counts {
                                completed: 1,
                                cached: usize::from(o.cached),
                                prepared: 1,
                                opt: o.opt.elapsed,
                                exec: o.exec_time,
                                ..Counts::default()
                            })
                        });
                        if !keep {
                            break 'outer;
                        }
                    }
                }
            }
            ServeMode::PreparedBatched { batch } => {
                let batch = batch.max(1);
                'outer: for (t, stmt) in templates.iter().zip(&statements) {
                    let draws: Vec<u64> = (0..rounds).map(|r| (w * rounds + r) as u64).collect();
                    for chunk in draws.chunks(batch) {
                        let keep = step(&mut tally, &mut || {
                            let bindings = chunk
                                .iter()
                                .map(|&d| t.bindings(d))
                                .collect::<Result<Vec<_>>>()?;
                            let o = stmt.execute_batch(&bindings)?;
                            // Batched queries contribute their per-query
                            // share of the batch's wall time.
                            let n = o.tables.len().max(1) as u32;
                            let share = (o.opt.elapsed + o.exec_time) / n;
                            for _ in 0..o.tables.len() {
                                latency.record(share);
                            }
                            Ok(Counts {
                                completed: o.tables.len(),
                                cached: o.pinned_queries,
                                prepared: o.tables.len(),
                                batches: 1,
                                opt: o.opt.elapsed,
                                exec: o.exec_time,
                                ..Counts::default()
                            })
                        });
                        if !keep {
                            break 'outer;
                        }
                    }
                }
            }
            ServeMode::Mixed { .. } => {
                // Readers: every cached query pins an epoch snapshot and is
                // verified against a fresh optimization on that snapshot —
                // the writer may publish mid-replay, but never mid-query.
                'outer: for r in 0..rounds {
                    for (t, stmt) in templates.iter().zip(&statements) {
                        let draw = (w * rounds + r) as u64;
                        let keep = step(&mut tally, &mut || {
                            let snap = session.snapshot();
                            let q = t.instantiate(draw)?;
                            let o = snap.run_cached(&q, mode)?;
                            let expected = snap.run(&q, mode)?.table;
                            verified(&o.table, &expected, t.name(), draw, "cached")?;
                            // Unverified prepared execute: keeps pin
                            // invalidation traffic flowing under commits.
                            let p = stmt.execute(&t.bindings(draw)?)?;
                            latency.record(o.e2e());
                            latency.record(p.e2e());
                            Ok(Counts {
                                completed: 2,
                                cached: usize::from(o.cached) + usize::from(p.cached),
                                prepared: 1,
                                opt: o.opt.elapsed + p.opt.elapsed,
                                exec: o.exec_time + p.exec_time,
                                ..Counts::default()
                            })
                        });
                        if !keep {
                            break 'outer;
                        }
                    }
                }
            }
        }
        tally
    };
    // Mixed mode's writers: writer `w` commits chunk `r * writers + w` in
    // round `r`. All of a round's participants stage (marker included),
    // meet at the round barrier, then race to commit: the marker guarantees
    // exactly one winner, and each loser records its typed conflict and
    // retries with the private rows alone. A writer that saw the abort flag
    // (or failed) still waits on every barrier of rounds it participates
    // in, so peers never deadlock on a dead participant.
    let ingest_writer = |w: usize| -> Tally {
        let mut tally = Tally::default();
        let fail = |tally: &mut Tally, e: RelGoError| {
            abort.store(true, Ordering::Release);
            tally.error = Some(e);
        };
        for (r, barrier) in barriers.iter().enumerate() {
            let chunk = r * mixed_writers + w;
            if chunk >= mixed_commits {
                break; // not a participant of this round — nor of later ones
            }
            let staged = if abort.load(Ordering::Acquire) {
                None
            } else {
                match stage_chunk(session, mixed_ops, chunk, r, true) {
                    Ok(batch) => Some(batch),
                    Err(e) => {
                        fail(&mut tally, e);
                        None
                    }
                }
            };
            barrier.wait();
            let Some(batch) = staged else {
                continue; // keep meeting later barriers after an abort
            };
            match batch.commit() {
                Ok(report) => {
                    tally.counts.commits += 1;
                    tally.counts.ingested += report.inserted + report.deleted;
                }
                Err(e) if e.is_conflict() => {
                    tally.counts.conflicts += 1;
                    // Lost the marker race: re-stage against the current
                    // epoch without the marker. The private rows are
                    // disjoint from every other batch, so the retry must
                    // eventually validate — the jittered backoff
                    // de-synchronizes this writer from the other losers of
                    // the same round (per-writer seed), and rebasing covers
                    // losing further races to *them* meanwhile.
                    let policy = crate::ingest::RetryPolicy {
                        seed: w as u64,
                        ..crate::ingest::RetryPolicy::default()
                    };
                    match stage_chunk(session, mixed_ops, chunk, r, false)
                        .and_then(|b| b.commit_with_retry(policy).map_err(RelGoError::from))
                    {
                        Ok(report) => {
                            tally.counts.commits += 1;
                            tally.counts.ingested += report.inserted + report.deleted;
                        }
                        Err(e) => fail(&mut tally, e),
                    }
                }
                Err(e) => fail(&mut tally, RelGoError::from(e)),
            }
        }
        tally
    };

    let mut tallies: Vec<Tally> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        let writer_ref = &ingest_writer;
        let writers: Vec<_> = matches!(serve, ServeMode::Mixed { .. })
            .then(|| {
                (0..mixed_writers)
                    .map(|w| scope.spawn(move || writer_ref(w)))
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        readers
            .into_iter()
            .chain(writers)
            .map(|h| {
                h.join().unwrap_or_else(|_| Tally {
                    error: Some(RelGoError::execution("replay worker panicked")),
                    ..Tally::default()
                })
            })
            .collect()
    });

    // Mixed mode's settle pass: with the writer done, verify that the
    // cached and prepared paths serve the final epoch correctly (the last
    // commit left every pin stale, so this also exercises transparent
    // re-optimization).
    if matches!(serve, ServeMode::Mixed { .. }) && tallies.iter().all(|t| t.error.is_none()) {
        let mut tally = Tally::default();
        for (t, stmt) in templates.iter().zip(&statements) {
            let keep = step(&mut tally, &mut || {
                let draw = (threads * rounds) as u64;
                let snap = session.snapshot();
                let q = t.instantiate(draw)?;
                let expected = snap.run(&q, mode)?.table;
                let c = snap.run_cached(&q, mode)?;
                verified(&c.table, &expected, t.name(), draw, "settled cached")?;
                let p = stmt.execute(&t.bindings(draw)?)?;
                verified(&p.table, &expected, t.name(), draw, "settled prepared")?;
                latency.record(c.e2e());
                latency.record(p.e2e());
                Ok(Counts {
                    completed: 2,
                    cached: usize::from(c.cached) + usize::from(p.cached),
                    prepared: 1,
                    opt: c.opt.elapsed + p.opt.elapsed,
                    exec: c.exec_time + p.exec_time,
                    ..Counts::default()
                })
            });
            if !keep {
                break;
            }
        }
        tallies.push(tally);
    }

    let elapsed = start.elapsed();
    let mut report = ReplayReport {
        queries: 0,
        elapsed,
        opt_time: Duration::ZERO,
        exec_time: Duration::ZERO,
        cached_queries: 0,
        prepared_queries: 0,
        batches: 0,
        commits: 0,
        ingested_rows: 0,
        conflicts: 0,
        wal: match (wal_before, session.wal_stats()) {
            (Some(b), Some(a)) => Some(a.since(&b)),
            _ => None,
        },
        metrics: session.cache_metrics().since(&before),
        latency: latency.snapshot(),
    };
    let mut first_error = None;
    for tally in tallies {
        report.queries += tally.counts.completed;
        report.cached_queries += tally.counts.cached;
        report.prepared_queries += tally.counts.prepared;
        report.batches += tally.counts.batches;
        report.commits += tally.counts.commits;
        report.ingested_rows += tally.counts.ingested;
        report.conflicts += tally.counts.conflicts;
        report.opt_time += tally.counts.opt;
        report.exec_time += tally.counts.exec;
        if first_error.is_none() {
            first_error = tally.error;
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

/// Stage one mixed-mode writer batch for global chunk index `chunk`: `ops`
/// private rows, optionally plus round `round`'s *shared* marker row.
/// Private Person ids and Knows edge ids live in high per-chunk-disjoint
/// ranges, and the Knows edges connect small base-person ids only, so a
/// chunk's validity never depends on which other chunks committed before
/// it — chunks may commit in any interleaving.
fn stage_chunk<'s>(
    session: &'s Session,
    ops: usize,
    chunk: usize,
    round: usize,
    with_marker: bool,
) -> Result<IngestBatch<'s>> {
    const PERSON_BASE: i64 = 10_000_000;
    const EDGE_BASE: i64 = 20_000_000;
    const MARKER_BASE: i64 = 90_000_000;
    let mut batch = session.begin_ingest();
    for i in 0..ops {
        let key = (chunk * ops + i) as i64;
        if i % 3 == 2 {
            batch.insert_edge(
                "Knows",
                vec![
                    (EDGE_BASE + key).into(),
                    ((i % 5) as i64).into(),
                    ((i % 7) as i64 + 5).into(),
                    Value::Date(18_000 + key),
                ],
            )?;
        } else {
            batch.insert_row(
                "Person",
                vec![
                    (PERSON_BASE + key).into(),
                    Value::str(format!("c{chunk}i{i}")),
                    Value::Date(18_000 + key),
                ],
            )?;
        }
    }
    if with_marker {
        batch.insert_row(
            "Person",
            vec![
                (MARKER_BASE + round as i64).into(),
                Value::str(format!("marker{round}")),
                Value::Date(18_000),
            ],
        )?;
    }
    Ok(batch)
}

/// Row check for the mixed mode's verified reads: the result *multiset*
/// must match. Order is compared sorted on purpose — a cached skeleton may
/// have been optimized under a racing epoch's statistics, which can legally
/// pick a different join order (hence row order) than a fresh optimization
/// on the pinned snapshot, while the rows themselves must be identical.
/// (Bit-exact order identity between the regimes on a *quiescent* session
/// is separately enforced by `tests/ingest_differential.rs`.)
fn verified(
    got: &relgo_storage::Table,
    expected: &relgo_storage::Table,
    template: &str,
    draw: u64,
    what: &str,
) -> Result<()> {
    if got.sorted_rows() == expected.sorted_rows() {
        Ok(())
    } else {
        Err(RelGoError::execution(format!(
            "mixed replay divergence: {template} draw {draw} ({what}) returned {} rows vs {}",
            got.num_rows(),
            expected.num_rows()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionOptions;
    use relgo_workloads::snb_queries;
    use relgo_workloads::templates::snb_templates;

    #[test]
    fn replay_composes_with_intra_query_threads() {
        let opts = SessionOptions {
            threads: 2,
            ..SessionOptions::default()
        };
        let (session, schema) = Session::snb_with(0.03, 42, opts).unwrap();
        let templates = snb_templates(&schema);
        for t in &templates {
            session
                .run_cached(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
                .unwrap();
        }
        // 2 replay workers × 2 morsel workers inside each query.
        let report = replay_concurrent(&session, &templates, OptimizerMode::RelGo, 2, 2).unwrap();
        assert_eq!(report.queries, 2 * 2 * templates.len());
        assert_eq!(report.cached_queries, report.queries);
        assert_eq!(report.prepared_queries, 0);
        assert_eq!(report.batches, 0);
    }

    #[test]
    fn replay_is_contention_safe_and_mostly_cached() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let templates = snb_templates(&schema);
        // Prime single-threaded so the concurrent phase is deterministic.
        for t in &templates {
            session
                .run_cached(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
                .unwrap();
        }
        let report = replay_concurrent(&session, &templates, OptimizerMode::RelGo, 4, 3).unwrap();
        assert_eq!(report.queries, 4 * 3 * templates.len());
        assert_eq!(report.metrics.hits as usize, report.queries);
        assert_eq!(report.metrics.misses, 0);
        assert_eq!(report.cached_queries, report.queries);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn prepared_replay_is_rebind_only_and_row_identical() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let templates = snb_templates(&schema);
        let (threads, rounds) = (3, 2);
        let report = replay_concurrent_with(
            &session,
            &templates,
            OptimizerMode::RelGo,
            threads,
            rounds,
            ServeMode::Prepared,
        )
        .unwrap();
        let expected = threads * rounds * templates.len();
        assert_eq!(report.queries, expected);
        assert_eq!(report.prepared_queries, expected);
        assert_eq!(report.cached_queries, expected, "{:?}", report.metrics);
        assert_eq!(report.metrics.prepared_hits as usize, expected);
        // Preparation probed the cache once per template; no query paid a
        // probe after that.
        assert_eq!(
            report.metrics.hits + report.metrics.misses,
            templates.len() as u64
        );
    }

    #[test]
    fn batched_replay_matches_prepared_counts() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let templates = snb_templates(&schema);
        let (threads, rounds) = (2, 5);
        let report = replay_concurrent_with(
            &session,
            &templates,
            OptimizerMode::RelGo,
            threads,
            rounds,
            ServeMode::PreparedBatched { batch: 2 },
        )
        .unwrap();
        let expected = threads * rounds * templates.len();
        assert_eq!(report.queries, expected);
        assert_eq!(report.prepared_queries, expected);
        assert_eq!(report.cached_queries, expected);
        // 5 rounds in batches of 2 → 3 batches per (worker, template).
        assert_eq!(report.batches, threads * templates.len() * 3);
    }

    /// Mixed mode: concurrent writers' commits interleave with verified
    /// reads and prepared executes; zero divergences, exact conflict and
    /// committed-row accounting, every commit observed as a cache
    /// invalidation, and the post-commit pin staleness shows up as prepared
    /// invalidations.
    #[test]
    fn mixed_replay_ingests_while_serving_verified_reads() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let templates = snb_templates(&schema);
        let (threads, rounds, commits, ops, writers) = (2, 2, 3, 5, 2);
        let before = session.cache_metrics();
        let report = replay_concurrent_with(
            &session,
            &templates,
            OptimizerMode::RelGo,
            threads,
            rounds,
            ServeMode::Mixed {
                commits,
                ops_per_commit: ops,
                writers,
            },
        )
        .unwrap();
        // Every chunk publishes exactly once (winners directly, losers via
        // retry), so the epoch count is exact even though batches raced.
        assert_eq!(report.commits, commits);
        assert_eq!(session.epoch(), commits as u64);
        // 3 commits over 2 writers → 2 rounds: round 0 races 2 writers
        // (1 conflict), round 1 has a single participant (0 conflicts).
        let writer_rounds = commits.div_ceil(writers);
        assert_eq!(report.conflicts, commits - writer_rounds);
        // `ingested_rows` counts committed rows only: every chunk's private
        // rows plus exactly one marker per round — the losers' staged
        // markers never commit and are not counted.
        assert_eq!(report.ingested_rows, commits * ops + writer_rounds);
        assert!(report.wal.is_none(), "session is not durable");
        // Readers: 2 queries per (worker, round, template); settle pass
        // adds 2 more per template.
        let expected = 2 * threads * rounds * templates.len() + 2 * templates.len();
        assert_eq!(report.queries, expected);
        assert!(report.prepared_queries >= templates.len());
        let delta = session.cache_metrics().since(&before);
        assert!(
            delta.invalidations >= commits as u64,
            "every commit bumps the statistics version: {delta:?}"
        );
        assert!(
            delta.prepared_invalidations >= 1,
            "a stale pin re-optimized after a commit: {delta:?}"
        );
        // The ingested rows are visible afterwards.
        let persons = session.db().table("Person").unwrap().num_rows();
        assert!(persons > 1000 * 3 / 100, "base persons plus inserts");
    }

    /// Durable mixed mode: ≥2 writer threads against a WAL-backed session.
    /// The report carries WAL durability accounting, and recovering the log
    /// over the same base reproduces the live session's epoch and tables
    /// exactly.
    #[test]
    fn durable_mixed_replay_recovers_bit_identically() {
        use relgo_datagen::{generate_snb, SnbParams};
        use relgo_workloads::snb_queries::SnbSchema;

        let wal_path =
            std::env::temp_dir().join(format!("relgo_serve_durable_{}.wal", std::process::id()));
        std::fs::remove_file(&wal_path).ok();
        let params = SnbParams { sf: 0.03, seed: 42 };
        let (db, mapping) = generate_snb(&params);
        let (session, recovered) = Session::open_durable(
            db,
            mapping,
            SessionOptions::default(),
            &wal_path,
            relgo_delta::wal::WalOptions::default(),
        )
        .unwrap();
        assert!(session.is_durable());
        assert_eq!(recovered.records, 0, "fresh log");
        let schema = SnbSchema::resolve(session.view().schema()).unwrap();
        let templates = snb_templates(&schema);

        let (commits, ops, writers) = (4, 3, 2);
        let report = replay_concurrent_with(
            &session,
            &templates,
            OptimizerMode::RelGo,
            2,
            2,
            ServeMode::Mixed {
                commits,
                ops_per_commit: ops,
                writers,
            },
        )
        .unwrap();
        assert_eq!(report.commits, commits);
        let wal = report.wal.expect("durable session reports WAL stats");
        assert_eq!(
            wal.records, commits as u64,
            "one WAL record per published commit (losing batches append nothing)"
        );
        assert!(wal.syncs >= 1 && wal.syncs <= wal.records);
        assert_eq!(session.wal_stats().unwrap().records, commits as u64);

        // Crash-free recovery: replaying the log over the same base
        // reproduces the live state.
        let (db, mapping) = generate_snb(&params);
        let (recovered_session, rec) = Session::recover(db, mapping, &wal_path).unwrap();
        assert_eq!(rec.records, commits);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(recovered_session.epoch(), session.epoch());
        for name in ["Person", "Knows", "Likes"] {
            let live = session.db().table(name).unwrap().sorted_rows();
            let back = recovered_session.db().table(name).unwrap().sorted_rows();
            assert_eq!(live, back, "{name} survives recovery bit-identically");
        }
        std::fs::remove_file(&wal_path).ok();
    }

    /// Satellite regression: a template failing mid-replay aborts with the
    /// original error, and the metric deltas only reflect queries that
    /// actually ran — nothing is counted "before error propagation".
    #[test]
    fn worker_error_aborts_with_consistent_metrics() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let good = QueryTemplate::new("good", move |d| {
            snb_queries::ic1(&schema, 2, (d % 20) as i64)
        });
        let failing = QueryTemplate::new("failing", move |d| {
            if d >= 2 {
                Err(RelGoError::execution("synthetic template failure"))
            } else {
                snb_queries::ic7(&schema, (d % 20) as i64)
            }
        });
        let templates = vec![good, failing];
        let before = session.cache_metrics();
        // threads=1 makes the abort point deterministic: rounds 0 and 1
        // complete both templates (4 queries), round 2 completes `good` and
        // then `failing` errors at draw 2.
        let err = replay_concurrent(&session, &templates, OptimizerMode::RelGo, 1, 4).unwrap_err();
        assert!(
            err.to_string().contains("synthetic template failure"),
            "{err}"
        );
        let delta = session.cache_metrics().since(&before);
        assert_eq!(
            delta.hits + delta.misses,
            5,
            "exactly the completed queries touched the cache: {delta:?}"
        );
        // The replay still serves correctly afterwards (no poisoned state).
        let report =
            replay_concurrent(&session, &templates[..1], OptimizerMode::RelGo, 2, 2).unwrap();
        assert_eq!(report.queries, 4);
    }

    /// A failing query (not a failing instantiate) mid-batch also aborts
    /// cleanly in the batched regime.
    #[test]
    fn batched_replay_propagates_binding_errors() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let t = QueryTemplate::new("bad-bindings", move |d| {
            snb_queries::ic1(&schema, 2, (d % 20) as i64)
        })
        // Wrong arity from draw 3 on: execute_batch must reject it.
        .with_bindings(|d| {
            if d >= 3 {
                vec![]
            } else {
                vec![relgo_common::Value::Int((d % 20) as i64)]
            }
        });
        let before = session.cache_metrics();
        let err = replay_concurrent_with(
            &session,
            &[t],
            OptimizerMode::RelGo,
            1,
            4,
            ServeMode::PreparedBatched { batch: 4 },
        )
        .unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
        // Up-front validation rejected the whole batch before any member
        // was rebound: no prepared hit is counted for work that never ran.
        assert_eq!(session.cache_metrics().since(&before).prepared_hits, 0);
    }
}
