//! Criterion bench for Fig. 4a: exact search-space counting on path
//! patterns under both regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::pattern::search_space::{agnostic_plan_count, aware_plan_count, path_pattern};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_search_space");
    group.sample_size(10);
    for m in [4usize, 8, 10] {
        let p = path_pattern(m);
        group.bench_with_input(BenchmarkId::new("aware", m), &p, |b, p| {
            b.iter(|| aware_plan_count(std::hint::black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("agnostic", m), &p, |b, p| {
            b.iter(|| agnostic_plan_count(std::hint::black_box(p)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
