//! Criterion bench for Fig. 7: end-to-end (optimize + execute) time of
//! RelGo vs GRainDB on representative SNB and JOB queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::prelude::*;
use relgo::workloads::{job_queries, snb_queries};

fn bench(c: &mut Criterion) {
    let (snb, sschema) = Session::snb(0.1, 42).expect("snb");
    let (imdb, ischema) = Session::imdb(0.15, 7).expect("imdb");
    let snb_queries = [
        ("IC2", snb_queries::ic2(&sschema, 5, 18_500).unwrap()),
        ("IC7", snb_queries::ic7(&sschema, 5).unwrap()),
    ];
    let job1 = job_queries::build_job(&ischema, &job_queries::job_specs()[0]).unwrap();

    let mut group = c.benchmark_group("fig7_e2e");
    group.sample_size(10);
    for (name, q) in &snb_queries {
        for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
            let _ = snb.run(q, mode).unwrap(); // warm-up
            group.bench_with_input(
                BenchmarkId::new(format!("snb_{}", mode.name()), name),
                q,
                |b, q| b.iter(|| snb.run(q, mode).unwrap()),
            );
        }
    }
    for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
        let _ = imdb.run(&job1, mode).unwrap();
        group.bench_with_input(
            BenchmarkId::new(format!("imdb_{}", mode.name()), "JOB1"),
            &job1,
            |b, q| b.iter(|| imdb.run(q, mode).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
