//! Criterion bench for Fig. 4b: optimization time of the converged
//! optimizer vs the Calcite-like exhaustive enumerator on IC queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::prelude::*;
use relgo::workloads::snb_queries;

fn bench(c: &mut Criterion) {
    let (session, schema) = Session::snb(0.05, 42).expect("session");
    let queries = [
        ("IC1-2", snb_queries::ic1(&schema, 2, 5).unwrap()),
        ("IC5-1", snb_queries::ic5(&schema, 1, 5, 14_000).unwrap()),
        ("IC12", snb_queries::ic12(&schema, 5, "class_1").unwrap()),
    ];
    let mut group = c.benchmark_group("fig4b_opt_time");
    group.sample_size(10);
    for (name, q) in &queries {
        // Warm GLogue so RelGo timing reflects planning, not statistics
        // collection (built offline in the paper).
        let _ = session.optimize(q, OptimizerMode::RelGo).unwrap();
        group.bench_with_input(BenchmarkId::new("RelGo", name), q, |b, q| {
            b.iter(|| session.optimize(q, OptimizerMode::RelGo).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("CalciteLike", name), q, |b, q| {
            b.iter(|| session.optimize(q, OptimizerMode::CalciteLike).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
