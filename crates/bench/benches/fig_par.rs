//! Criterion bench for morsel-driven intra-query parallelism: GLogue
//! statistics building (seed-partitioned homomorphism counting) and the
//! expand-heavy QC1 knows-triangle execution at 1/2/4 worker threads.
//! Parallel runs are bit-identical to serial; only the wall time changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::glogue::GLogue;
use relgo::prelude::*;
use relgo::workloads::snb_queries;

fn bench(c: &mut Criterion) {
    let (mut snb, schema) = Session::snb(0.05, 42).expect("snb");
    let q = snb_queries::qc_queries(&schema)
        .expect("qc queries")
        .remove(0)
        .query;
    let (plan, _) = snb.optimize(&q, OptimizerMode::RelGo).expect("optimize");

    let mut group = c.benchmark_group("fig_par");
    group.sample_size(10);
    for t in [1usize, 2, 4] {
        // Statistics build: fresh GLogue, so every iteration re-counts the
        // triangle's sub-pattern cardinalities with `t` workers.
        group.bench_with_input(BenchmarkId::new("glogue_stats", t), &t, |b, &t| {
            b.iter(|| {
                let gl = GLogue::with_threads(snb.view(), 3, 1, t).unwrap();
                gl.cardinality(&q.pattern).unwrap()
            })
        });
        // Execution: the same optimized plan, `t` morsel workers.
        snb.set_threads(t);
        group.bench_with_input(BenchmarkId::new("exec_qc1", t), &t, |b, _| {
            b.iter(|| snb.execute(&plan, OptimizerMode::RelGo).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
