//! Criterion bench for Fig. 8: the heuristic-rule ablation (RelGo vs
//! RelGoNoRule) on the QR micro-benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::prelude::*;
use relgo::workloads::snb_queries;

fn bench(c: &mut Criterion) {
    let (session, schema) = Session::snb(0.1, 42).expect("session");
    let qr = snb_queries::qr_queries(&schema).unwrap();
    let mut group = c.benchmark_group("fig8_rules");
    group.sample_size(10);
    for w in &qr {
        for mode in [OptimizerMode::RelGo, OptimizerMode::RelGoNoRule] {
            let _ = session.run(&w.query, mode).unwrap();
            group.bench_with_input(BenchmarkId::new(mode.name(), &w.name), &w.query, |b, q| {
                b.iter(|| session.run(q, mode).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
