//! Criterion bench for Fig. 11: comprehensive comparison against the
//! DuckDB-like baseline on representative IC and JOB queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::prelude::*;
use relgo::workloads::{job_queries, snb_queries};

fn bench(c: &mut Criterion) {
    let (snb, sschema) = Session::snb(0.1, 42).expect("snb");
    let (imdb, ischema) = Session::imdb(0.15, 7).expect("imdb");
    let ic7 = snb_queries::ic7(&sschema, 5).unwrap();
    let job17 = job_queries::build_job(&ischema, &job_queries::job_specs()[16]).unwrap();
    let modes = [
        OptimizerMode::DuckDbLike,
        OptimizerMode::GRainDb,
        OptimizerMode::UmbraLike,
        OptimizerMode::KuzuLike,
        OptimizerMode::RelGo,
    ];

    let mut group = c.benchmark_group("fig11_comprehensive");
    group.sample_size(10);
    for mode in modes {
        let _ = snb.run(&ic7, mode).unwrap();
        group.bench_with_input(BenchmarkId::new(mode.name(), "IC7"), &ic7, |b, q| {
            b.iter(|| snb.run(q, mode).unwrap())
        });
        let _ = imdb.run(&job17, mode).unwrap();
        group.bench_with_input(BenchmarkId::new(mode.name(), "JOB17"), &job17, |b, q| {
            b.iter(|| imdb.run(q, mode).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
