//! Criterion bench for Fig. 10: join-order efficiency on JOB queries under
//! RelGo, GRainDB, RelGoHash and DuckDB-like optimizers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::prelude::*;
use relgo::workloads::job_queries;

fn bench(c: &mut Criterion) {
    let (session, schema) = Session::imdb(0.15, 7).expect("session");
    let jobs = job_queries::job_queries(&schema).unwrap();
    let mut group = c.benchmark_group("fig10_join_order");
    group.sample_size(10);
    for w in jobs.iter().take(3) {
        for mode in [
            OptimizerMode::RelGo,
            OptimizerMode::GRainDb,
            OptimizerMode::RelGoHash,
            OptimizerMode::DuckDbLike,
        ] {
            let _ = session.run(&w.query, mode).unwrap();
            group.bench_with_input(BenchmarkId::new(mode.name(), &w.name), &w.query, |b, q| {
                b.iter(|| session.run(q, mode).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
