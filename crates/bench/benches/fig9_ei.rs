//! Criterion bench for Fig. 9: the EXPAND_INTERSECT ablation (RelGo vs
//! RelGoNoEI) on the cyclic QC micro-benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::prelude::*;
use relgo::workloads::snb_queries;

fn bench(c: &mut Criterion) {
    let (session, schema) = Session::snb(0.1, 42).expect("session");
    let qc = snb_queries::qc_queries(&schema).unwrap();
    let mut group = c.benchmark_group("fig9_ei");
    group.sample_size(10);
    for w in &qc {
        for mode in [OptimizerMode::RelGo, OptimizerMode::RelGoNoEI] {
            if session.run(&w.query, mode).is_err() {
                // NoEI may legitimately exhaust the budget on QC3 — the
                // paper reports it as OOM; skip benchmarking that cell.
                continue;
            }
            group.bench_with_input(BenchmarkId::new(mode.name(), &w.name), &w.query, |b, q| {
                b.iter(|| session.run(q, mode).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
