//! Criterion bench for checkpointing: the cost of writing a snapshot
//! (encode + fsync + rename + WAL compaction), and recovery latency from a
//! checkpoint plus a short WAL tail vs full-history replay of the same
//! number of committed epochs.

use criterion::{criterion_group, criterion_main, Criterion};
use relgo::prelude::*;
use relgo::CheckpointStore;
use std::sync::atomic::{AtomicI64, Ordering};

fn snb_base() -> (relgo::storage::Database, relgo::graph::RGMapping) {
    relgo::datagen::generate_snb(&relgo::datagen::SnbParams { sf: 0.05, seed: 42 })
}

fn wal_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("relgo_bench_ckpt_{}_{tag}.wal", std::process::id()))
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    if let Ok(ckpts) = CheckpointStore::for_wal(path).list() {
        for (_, p) in ckpts {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Commit one 8-insert person batch with globally fresh keys.
fn commit_batch(session: &Session, next: &AtomicI64) {
    let lo = next.fetch_add(8, Ordering::Relaxed);
    let mut batch = session.begin_ingest();
    for i in 0..8 {
        let id = lo + i;
        batch
            .insert_row(
                "Person",
                vec![
                    Value::Int(id),
                    Value::str(format!("ckpt_{id}")),
                    Value::Date(19_000),
                ],
            )
            .unwrap();
    }
    batch.commit().unwrap();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_ckpt");
    group.sample_size(10);

    // Checkpoint write latency: each iteration commits one batch (so the
    // snapshot epoch advances and the write is never a no-op) and then
    // snapshots the full database.
    {
        let path = wal_path("write");
        cleanup(&path);
        let (db, mapping) = snb_base();
        let (session, _) = Session::open_durable(
            db,
            mapping,
            SessionOptions::default(),
            &path,
            WalOptions::default(),
        )
        .unwrap();
        let next = AtomicI64::new(40_000_000);
        group.bench_function("checkpoint_snb_sf005", |b| {
            b.iter(|| {
                commit_batch(&session, &next);
                session.checkpoint().unwrap()
            })
        });
        cleanup(&path);
    }

    // Recovery from a checkpoint + 2-record tail vs full replay of the same
    // 16-epoch history. Both logs hold identical histories; the first was
    // checkpointed at epoch 14.
    {
        let ckpt_path = wal_path("recover_ckpt");
        let full_path = wal_path("recover_full");
        cleanup(&ckpt_path);
        cleanup(&full_path);
        let (db, mapping) = snb_base();
        for (path, checkpoint_at) in [(&ckpt_path, Some(14)), (&full_path, None)] {
            let (writer, _) = Session::recover(db.clone(), mapping.clone(), path).unwrap();
            let next = AtomicI64::new(40_000_000);
            for c in 0..16 {
                commit_batch(&writer, &next);
                if checkpoint_at == Some(c + 1) {
                    writer.checkpoint().unwrap();
                }
            }
        }
        for (tag, path, replayed) in [
            ("recover_from_checkpoint_tail2", &ckpt_path, 2usize),
            ("recover_full_replay16", &full_path, 16usize),
        ] {
            group.bench_function(tag, |b| {
                b.iter(|| {
                    let (session, report) =
                        Session::recover(db.clone(), mapping.clone(), path).unwrap();
                    assert_eq!(report.records, replayed);
                    assert_eq!(session.epoch(), 16);
                    session
                })
            });
        }
        cleanup(&ckpt_path);
        cleanup(&full_path);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
