//! Criterion bench for the plan cache: the cold `run` path (full GLogue
//! cost-based optimization per call) vs the warm `run_cached` path
//! (parameterize + sharded-LRU lookup + literal rebind) on repeated
//! templated queries, plus a multi-threaded cached replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::prelude::*;
use relgo::workloads::templates::{job_templates, snb_templates};
use std::sync::atomic::{AtomicU64, Ordering};

fn bench(c: &mut Criterion) {
    let (snb, sschema) = Session::snb(0.05, 42).expect("snb");
    let (imdb, ischema) = Session::imdb(0.15, 7).expect("imdb");
    let suites = [
        ("snb", &snb, snb_templates(&sschema)),
        ("job", &imdb, job_templates(&ischema)),
    ];

    let mut group = c.benchmark_group("fig_cache");
    group.sample_size(10);
    for (tag, session, templates) in &suites {
        for t in templates {
            // Cold: a fresh literal every iteration, optimizer always runs.
            let draw = AtomicU64::new(0);
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_cold"), t.name()),
                t,
                |b, t| {
                    b.iter(|| {
                        let q = t.instantiate(draw.fetch_add(1, Ordering::Relaxed)).unwrap();
                        session.run(&q, OptimizerMode::RelGo).unwrap()
                    })
                },
            );
            // Warm: same traffic through the plan cache (primed by the
            // first iteration's miss).
            let draw = AtomicU64::new(0);
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_warm"), t.name()),
                t,
                |b, t| {
                    b.iter(|| {
                        let q = t.instantiate(draw.fetch_add(1, Ordering::Relaxed)).unwrap();
                        session.run_cached(&q, OptimizerMode::RelGo).unwrap()
                    })
                },
            );
        }
    }

    // Multi-threaded cached replay of the whole SNB template set.
    let templates = snb_templates(&sschema);
    group.bench_function("snb_warm/replay_4x4", |b| {
        b.iter(|| replay_concurrent(&snb, &templates, OptimizerMode::RelGo, 4, 4).unwrap())
    });
    group.finish();

    let m = snb.cache_metrics();
    println!(
        "fig_cache snb cache metrics: hits={} misses={} evictions={} rebind_failures={}",
        m.hits, m.misses, m.evictions, m.rebind_failures
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
