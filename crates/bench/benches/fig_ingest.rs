//! Criterion bench for the ingest subsystem: commit latency of a small
//! delta, commit + optimizer-rewarm under the incremental vs full
//! statistics-refresh paths, and epoch-pinned cached reads (the reader
//! side of mixed serving).
//!
//! Each commit iteration inserts 8 fresh Likes rows and deletes the 8 rows
//! of the previous iteration, so the dataset size stays stable across the
//! sampled run while every commit still exercises inserts *and*
//! tombstones.

use criterion::{criterion_group, criterion_main, Criterion};
use relgo::prelude::*;
use relgo::workloads::templates::{snb_templates, QueryTemplate};
use std::sync::atomic::{AtomicI64, Ordering};

fn ingest_session(staleness: f64) -> (Session, Vec<QueryTemplate>) {
    let options = SessionOptions {
        stats_staleness: staleness,
        ..SessionOptions::default()
    };
    let (session, schema) = Session::snb_with(0.05, 42, options).expect("snb");
    let templates = snb_templates(&schema);
    // Warm the optimizer so commits have statistics state to maintain.
    for t in &templates {
        session
            .optimize(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
            .unwrap();
    }
    (session, templates)
}

/// Commit one 8-insert (+8-delete, after the first call) Likes batch.
fn commit_batch(session: &Session, next: &AtomicI64, lo0: i64, persons: i64, messages: i64) {
    let lo = next.fetch_add(8, Ordering::Relaxed);
    let mut batch = session.begin_ingest();
    for i in 0..8 {
        let id = lo + i;
        batch
            .insert_edge(
                "Likes",
                vec![
                    Value::Int(id),
                    Value::Int(id % persons),
                    Value::Int((id * 3) % messages),
                    Value::Date(18_500),
                ],
            )
            .unwrap();
        if lo > lo0 {
            batch.delete_row("Likes", id - 8).unwrap();
        }
    }
    batch.commit().unwrap();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_ingest");
    group.sample_size(10);

    for (tag, staleness) in [("incremental", 1.0), ("full", 0.0)] {
        // Pure commit latency.
        let (session, _) = ingest_session(staleness);
        let db = session.db();
        let persons = db.table("Person").unwrap().num_rows() as i64;
        let messages = db.table("Message").unwrap().num_rows() as i64;
        let lo0 = db.table("Likes").unwrap().num_rows() as i64 * 4;
        let next = AtomicI64::new(lo0);
        group.bench_function(format!("commit_likes8_{tag}"), |b| {
            b.iter(|| commit_batch(&session, &next, lo0, persons, messages))
        });
        // Commit + re-warming the optimizer against the new epoch: what
        // the staleness knob actually buys or costs per commit.
        let (session, templates) = ingest_session(staleness);
        let next = AtomicI64::new(lo0);
        group.bench_function(format!("commit_and_rewarm_{tag}"), |b| {
            b.iter(|| {
                commit_batch(&session, &next, lo0, persons, messages);
                for t in &templates {
                    session
                        .optimize(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
                        .unwrap();
                }
            })
        });
    }

    // Epoch-pinned cached reads (the reader side of mixed serving).
    let (session, templates) = ingest_session(1.0);
    session
        .run_cached(&templates[0].instantiate(0).unwrap(), OptimizerMode::RelGo)
        .unwrap();
    group.bench_function("snapshot_cached_read", |b| {
        b.iter(|| {
            let snap = session.snapshot();
            snap.run_cached(&templates[0].instantiate(1).unwrap(), OptimizerMode::RelGo)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
