//! Criterion bench for the prepared-statement serving path: warm
//! `run_cached` (parameterize + cache probe + rebind) vs prepared
//! `execute` (validate + rebind only) vs `execute_batch` (shared batch
//! operator state) on repeated templated queries, plus the three-regime
//! concurrent replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::prelude::*;
use relgo::workloads::templates::{job_templates, snb_templates};
use std::sync::atomic::{AtomicU64, Ordering};

fn bench(c: &mut Criterion) {
    let (snb, sschema) = Session::snb(0.05, 42).expect("snb");
    let (imdb, ischema) = Session::imdb(0.15, 7).expect("imdb");
    let suites = [
        ("snb", &snb, snb_templates(&sschema)),
        ("job", &imdb, job_templates(&ischema)),
    ];

    let mut group = c.benchmark_group("fig_prepared");
    group.sample_size(10);
    for (tag, session, templates) in &suites {
        for t in templates {
            // Warm cached baseline: parameterize + probe + rebind per call.
            let draw = AtomicU64::new(0);
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_cached"), t.name()),
                t,
                |b, t| {
                    b.iter(|| {
                        let q = t.instantiate(draw.fetch_add(1, Ordering::Relaxed)).unwrap();
                        session.run_cached(&q, OptimizerMode::RelGo).unwrap()
                    })
                },
            );
            // Prepared: rebind-only executes against the pinned skeleton.
            let stmt = session
                .prepare(&t.instantiate(0).unwrap(), OptimizerMode::RelGo)
                .expect("prepare");
            let draw = AtomicU64::new(0);
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_prepared"), t.name()),
                t,
                |b, t| {
                    b.iter(|| {
                        let bindings = t.bindings(draw.fetch_add(1, Ordering::Relaxed)).unwrap();
                        stmt.execute(&bindings).unwrap()
                    })
                },
            );
            // Batched: 8 bindings per iteration through the shared state.
            let draw = AtomicU64::new(0);
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_batched8"), t.name()),
                t,
                |b, t| {
                    b.iter(|| {
                        let base = draw.fetch_add(8, Ordering::Relaxed);
                        let batch: Vec<Vec<Value>> =
                            (base..base + 8).map(|d| t.bindings(d).unwrap()).collect();
                        stmt.execute_batch(&batch).unwrap()
                    })
                },
            );
        }
    }

    // Concurrent replay of the SNB template set under each serving regime.
    let templates = snb_templates(&sschema);
    for serve in [
        ServeMode::Cached,
        ServeMode::Prepared,
        ServeMode::PreparedBatched { batch: 4 },
    ] {
        group.bench_function(format!("snb_replay_4x4/{}", serve.name()), |b| {
            b.iter(|| {
                replay_concurrent_with(&snb, &templates, OptimizerMode::RelGo, 4, 4, serve).unwrap()
            })
        });
    }
    group.finish();

    let m = snb.cache_metrics();
    println!(
        "fig_prepared snb cache metrics: hits={} misses={} prepared_hits={} rebind_failures={}",
        m.hits, m.misses, m.prepared_hits, m.rebind_failures
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
