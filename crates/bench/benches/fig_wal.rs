//! Criterion bench for the write-ahead log: per-commit latency with fsync
//! on vs off, the raw append+sync path, and recovery replay of a populated
//! log into a fresh session.
//!
//! Each commit iteration inserts 8 fresh person rows with monotonically
//! increasing primary keys, so every commit is a real (non-conflicting)
//! MVCC publish plus one WAL record.

use criterion::{criterion_group, criterion_main, Criterion};
use relgo::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};

fn snb_base() -> (relgo::storage::Database, relgo::graph::RGMapping) {
    relgo::datagen::generate_snb(&relgo::datagen::SnbParams { sf: 0.05, seed: 42 })
}

fn wal_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("relgo_bench_wal_{}_{tag}.wal", std::process::id()))
}

/// Commit one 8-insert person batch with globally fresh keys.
fn commit_batch(session: &Session, next: &AtomicI64) {
    let lo = next.fetch_add(8, Ordering::Relaxed);
    let mut batch = session.begin_ingest();
    for i in 0..8 {
        let id = lo + i;
        batch
            .insert_row(
                "Person",
                vec![
                    Value::Int(id),
                    Value::str(format!("wal_{id}")),
                    Value::Date(18_500),
                ],
            )
            .unwrap();
    }
    batch.commit().unwrap();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_wal");
    group.sample_size(10);

    // Durable commit latency: fsync on vs off vs no WAL at all.
    for (tag, fsync) in [("fsync", true), ("no_fsync", false)] {
        let path = wal_path(tag);
        let _ = std::fs::remove_file(&path);
        let (db, mapping) = snb_base();
        let (session, _) = Session::open_durable(
            db,
            mapping,
            SessionOptions::default(),
            &path,
            WalOptions {
                fsync,
                ..WalOptions::default()
            },
        )
        .unwrap();
        let next = AtomicI64::new(40_000_000);
        group.bench_function(format!("commit_person8_{tag}"), |b| {
            b.iter(|| commit_batch(&session, &next))
        });
        let _ = std::fs::remove_file(&path);
    }
    {
        let (db, mapping) = snb_base();
        let session = Session::open_with(db, mapping, SessionOptions::default()).unwrap();
        let next = AtomicI64::new(40_000_000);
        group.bench_function("commit_person8_no_wal", |b| {
            b.iter(|| commit_batch(&session, &next))
        });
    }

    // Recovery replay: open a log holding 16 committed batches into a fresh
    // session over the same base data.
    {
        let path = wal_path("recover");
        let _ = std::fs::remove_file(&path);
        let (db, mapping) = snb_base();
        let (writer, _) = Session::recover(db.clone(), mapping.clone(), &path).unwrap();
        let next = AtomicI64::new(40_000_000);
        for _ in 0..16 {
            commit_batch(&writer, &next);
        }
        drop(writer);
        group.bench_function("recover_16_commits", |b| {
            b.iter(|| {
                let (session, report) =
                    Session::recover(db.clone(), mapping.clone(), &path).unwrap();
                assert_eq!(report.records, 16);
                assert_eq!(session.epoch(), 16);
                session
            })
        });
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
