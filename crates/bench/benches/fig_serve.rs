//! Criterion bench for the networked serving edge: HTTP `/query`
//! round-trips per template, prepared `/execute`, `/healthz`, and a full
//! `/metrics` scrape against one in-process `relgo-server` instance.
//!
//! The server runs once for the whole bench on an ephemeral port, so the
//! numbers include request parsing, admission, execution, and wire
//! serialization — the full per-request path a client pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgo::prelude::*;
use relgo::workloads::templates::snb_templates;
use relgo_server::{Server, ServerConfig};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

/// One blocking request/response exchange; panics on any malformed reply
/// so a broken server fails the bench instead of skewing it.
fn http(addr: &str, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req =
        format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response.split_once("\r\n\r\n").expect("split");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    (status, body.to_string())
}

fn bench(c: &mut Criterion) {
    let (session, schema) = Session::snb(0.05, 42).expect("snb");
    let templates = snb_templates(&schema);
    let bound = Server::new(&session, &templates, ServerConfig::default())
        .bind()
        .expect("bind");
    let addr = bound.local_addr().to_string();

    std::thread::scope(|scope| {
        let server = scope.spawn(move || bound.run());

        let mut group = c.benchmark_group("fig_serve");
        group.sample_size(10);

        group.bench_function("healthz", |b| {
            b.iter(|| {
                let (status, _) = http(&addr, "GET", "/healthz");
                assert_eq!(status, 200);
            })
        });

        for t in &templates {
            let draw = AtomicU64::new(0);
            group.bench_with_input(BenchmarkId::new("query", t.name()), t, |b, t| {
                b.iter(|| {
                    let d = draw.fetch_add(1, Ordering::Relaxed);
                    let (status, body) = http(
                        &addr,
                        "POST",
                        &format!("/query?template={}&draw={d}", t.name()),
                    );
                    assert_eq!(status, 200, "{body}");
                })
            });
        }

        // Prepared wire path: one /prepare, then rebind-only /execute.
        let (status, body) = http(
            &addr,
            "POST",
            &format!("/prepare?template={}", templates[0].name()),
        );
        assert_eq!(status, 200, "{body}");
        let stmt = body
            .trim()
            .strip_prefix("ok stmt=")
            .expect("stmt id")
            .to_string();
        let draw = AtomicU64::new(0);
        group.bench_function("execute", |b| {
            b.iter(|| {
                let d = draw.fetch_add(1, Ordering::Relaxed);
                let (status, body) = http(&addr, "POST", &format!("/execute?stmt={stmt}&draw={d}"));
                assert_eq!(status, 200, "{body}");
            })
        });

        group.bench_function("metrics_scrape", |b| {
            b.iter(|| {
                let (status, body) = http(&addr, "GET", "/metrics");
                assert_eq!(status, 200);
                assert!(body.contains("relgo_http_requests_total"));
            })
        });

        group.finish();

        let (status, _) = http(&addr, "POST", "/shutdown");
        assert_eq!(status, 200);
        let stats = server.join().expect("server thread").expect("serve");
        println!(
            "fig_serve drain: connections={} ok={} rejected={} failed={}",
            stats.connections, stats.ok_responses, stats.rejected, stats.failed
        );
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
