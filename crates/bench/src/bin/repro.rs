//! `repro` — regenerate the paper's evaluation figures.
//!
//! Usage:
//! ```text
//! repro [fig4a|fig4b|fig7|fig8|fig9|fig10|fig11|fig12|figcache|figpar|figprepared|figingest|figwal|figckpt|figserve|figprofile|stats|all] [--quick]
//! ```
//!
//! `--quick` (or `RELGO_BENCH_QUICK=1`) shrinks scales and repetitions for
//! a fast smoke run; the default configuration produces the numbers
//! recorded in `EXPERIMENTS.md`.

use relgo_bench::figures;
use relgo_bench::harness::BenchConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let cfg = BenchConfig::from_env(quick);

    let run = |name: &str| -> bool { what == "all" || what == name };
    let mut ran_any = false;
    let mut failed: Vec<String> = Vec::new();

    let mut emit = |name: &str, f: &dyn Fn() -> relgo::common::Result<String>| {
        if run(name) {
            ran_any = true;
            match f() {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    eprintln!("{name}: {e}");
                    failed.push(name.to_string());
                }
            }
        }
    };

    emit("stats", &|| figures::dataset_stats(&cfg));
    emit("fig4a", &|| figures::fig4a());
    emit("fig4b", &|| figures::fig4b(&cfg));
    emit("fig7", &|| figures::fig7(&cfg));
    emit("fig8", &|| figures::fig8(&cfg));
    emit("fig9", &|| figures::fig9(&cfg));
    emit("fig10", &|| figures::fig10(&cfg));
    emit("fig11", &|| figures::fig11(&cfg));
    emit("fig12", &|| figures::fig12(&cfg));
    emit("figcache", &|| figures::fig_cache(&cfg));
    emit("figpar", &|| figures::fig_par(&cfg));
    emit("figprepared", &|| figures::fig_prepared(&cfg));
    emit("figingest", &|| figures::fig_ingest(&cfg));
    emit("figwal", &|| figures::fig_wal(&cfg));
    emit("figckpt", &|| figures::fig_ckpt(&cfg));
    emit("figserve", &|| figures::fig_serve(&cfg));
    emit("figprofile", &|| figures::fig_profile(&cfg));

    if !ran_any {
        eprintln!(
            "unknown target '{what}'; expected one of: stats fig4a fig4b fig7 fig8 fig9 fig10 fig11 fig12 figcache figpar figprepared figingest figwal figckpt figserve figprofile all"
        );
        std::process::exit(2);
    }
    // Figures are self-checking: a figure that fails its own invariants
    // must fail the run, not just print to stderr.
    if !failed.is_empty() {
        eprintln!("failed figures: {}", failed.join(" "));
        std::process::exit(1);
    }
}
