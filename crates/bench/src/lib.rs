//! # relgo-bench
//!
//! The benchmark harness that regenerates every figure of the paper's
//! evaluation (§5). Each `fig*` function produces the same rows/series the
//! paper plots; the `repro` binary prints them, and the Criterion benches
//! measure representative slices under `cargo bench`.
//!
//! Scale notes: `RELGO_BENCH_QUICK=1` (or `--quick`) shrinks scale factors
//! and repetition counts so the whole suite completes in well under a
//! minute; the default configuration corresponds to the shapes reported in
//! `EXPERIMENTS.md`.

pub mod figures;
pub mod harness;

pub use harness::{measure, BenchConfig, Timing};
