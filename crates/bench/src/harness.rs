//! Timing helpers shared by the `repro` binary and the Criterion benches.
//!
//! Methodology mirrors the paper's (§5.1), scaled down: each query runs a
//! warm-up round (amortizing GLogue statistic collection, which the paper
//! performs offline during RGMapping) and is then repeated; we report the
//! median. A per-query timeout marks runs as `OT`; resource exhaustion is
//! reported as `OOM`.

use relgo::prelude::*;
use std::time::Duration;

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Repetitions per (query, mode) after warm-up.
    pub reps: usize,
    /// SNB scale factor for the micro benchmarks (Figs 7–9).
    pub snb_sf_small: f64,
    /// SNB scale factor standing in for LDBC30.
    pub snb_sf_mid: f64,
    /// SNB scale factor standing in for LDBC100 (Fig 11).
    pub snb_sf_large: f64,
    /// IMDB scale factor.
    pub imdb_sf: f64,
    /// Optimizer timeout (Calcite-like enumeration, Fig 4b).
    pub opt_timeout: Duration,
}

impl BenchConfig {
    /// Full configuration (a few minutes for `repro all`).
    pub fn full() -> BenchConfig {
        BenchConfig {
            reps: 5,
            snb_sf_small: 0.1,
            snb_sf_mid: 0.3,
            snb_sf_large: 1.0,
            imdb_sf: 0.5,
            opt_timeout: Duration::from_secs(3),
        }
    }

    /// Quick configuration (sub-minute sanity run).
    pub fn quick() -> BenchConfig {
        BenchConfig {
            reps: 2,
            snb_sf_small: 0.05,
            snb_sf_mid: 0.1,
            snb_sf_large: 0.2,
            imdb_sf: 0.15,
            opt_timeout: Duration::from_millis(500),
        }
    }

    /// Pick from the environment (`RELGO_BENCH_QUICK=1`) or an explicit
    /// flag.
    pub fn from_env(quick_flag: bool) -> BenchConfig {
        if quick_flag || std::env::var("RELGO_BENCH_QUICK").is_ok() {
            BenchConfig::quick()
        } else {
            BenchConfig::full()
        }
    }
}

/// One measured query run.
#[derive(Debug, Clone, Copy)]
pub enum Timing {
    /// Median optimization and execution times in milliseconds.
    Ok {
        /// Optimization time (ms).
        opt_ms: f64,
        /// Execution time (ms).
        exec_ms: f64,
        /// Result rows.
        rows: usize,
    },
    /// The executor tripped the intermediate-size guard.
    Oom,
}

impl Timing {
    /// End-to-end milliseconds (`f64::INFINITY` for OOM — matches how the
    /// paper treats failed runs when averaging speedups).
    pub fn e2e_ms(&self) -> f64 {
        match self {
            Timing::Ok {
                opt_ms, exec_ms, ..
            } => opt_ms + exec_ms,
            Timing::Oom => f64::INFINITY,
        }
    }

    /// Render like the paper's tables (`12.34` or `OOM`).
    pub fn display(&self) -> String {
        match self {
            Timing::Ok {
                opt_ms, exec_ms, ..
            } => format!("{:.2}", opt_ms + exec_ms),
            Timing::Oom => "OOM".to_string(),
        }
    }
}

/// Measure one (query, mode): one warm-up run, then the median of
/// `reps` timed runs.
pub fn measure(
    session: &Session,
    query: &SpjmQuery,
    mode: OptimizerMode,
    reps: usize,
) -> Result<Timing> {
    // Warm-up (also catches OOM without polluting the timings).
    match session.run(query, mode) {
        Ok(_) => {}
        Err(RelGoError::ResourceExhausted(_)) => return Ok(Timing::Oom),
        Err(e) => return Err(e),
    }
    let mut opts = Vec::with_capacity(reps);
    let mut execs = Vec::with_capacity(reps);
    let mut rows = 0usize;
    for _ in 0..reps.max(1) {
        match session.run(query, mode) {
            Ok(out) => {
                opts.push(out.opt.elapsed.as_secs_f64() * 1e3);
                execs.push(out.exec_time.as_secs_f64() * 1e3);
                rows = out.table.num_rows();
            }
            Err(RelGoError::ResourceExhausted(_)) => return Ok(Timing::Oom),
            Err(e) => return Err(e),
        }
    }
    Ok(Timing::Ok {
        opt_ms: median(&mut opts),
        exec_ms: median(&mut execs),
        rows,
    })
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Right-pad a cell for the ASCII tables.
pub fn cell(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

/// Geometric mean of positive finite values (the paper's "average
/// speedup"); infinite entries (OOM baselines) are excluded.
pub fn geomean(xs: &[f64]) -> f64 {
    let finite: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x > 0.0)
        .collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    (finite.iter().map(|x| x.ln()).sum::<f64>() / finite.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_speedups() {
        let g = geomean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-9);
        assert!(geomean(&[2.0, f64::INFINITY]) - 2.0 < 1e-9);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn measure_reports_rows() {
        let (session, schema) = Session::snb(0.03, 42).unwrap();
        let q = relgo::workloads::snb_queries::ic1(&schema, 1, 5).unwrap();
        let t = measure(&session, &q, OptimizerMode::RelGo, 2).unwrap();
        match t {
            Timing::Ok {
                opt_ms, exec_ms, ..
            } => {
                assert!(opt_ms >= 0.0 && exec_ms >= 0.0);
            }
            Timing::Oom => panic!("tiny query must not OOM"),
        }
    }

    #[test]
    fn configs_differ() {
        assert!(BenchConfig::quick().reps < BenchConfig::full().reps);
        assert!(BenchConfig::quick().snb_sf_large < BenchConfig::full().snb_sf_large);
    }
}
