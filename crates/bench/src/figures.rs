//! One function per paper figure; each returns the printable report.

use crate::harness::{cell, geomean, measure, BenchConfig, Timing};
use relgo::pattern::search_space::fig4a_series;
use relgo::prelude::*;
use relgo::workloads::{job_queries, snb_queries, Workload};
use std::fmt::Write as _;

/// Fig. 4a: search-space comparison on path patterns (m = 1..10).
pub fn fig4a() -> Result<String> {
    let rows = fig4a_series(10)?;
    let mut out = String::new();
    writeln!(
        out,
        "Fig 4a — Search space: graph-aware vs graph-agnostic (path patterns)"
    )
    .ok();
    writeln!(
        out,
        "{} {} {} {}",
        cell("m", 3),
        cell("aware", 16),
        cell("agnostic", 22),
        cell("ratio", 12)
    )
    .ok();
    for r in &rows {
        writeln!(
            out,
            "{} {} {} {}",
            cell(&r.edges.to_string(), 3),
            cell(&format!("{:.3e}", r.aware as f64), 16),
            cell(&format!("{:.3e}", r.agnostic as f64), 22),
            cell(&format!("{:.1e}", r.agnostic as f64 / r.aware as f64), 12),
        )
        .ok();
    }
    Ok(out)
}

/// Fig. 4b: optimization time on the IC workload — RelGo vs the
/// Calcite-like exhaustive enumerator (no pruning, no memoization).
pub fn fig4b(cfg: &BenchConfig) -> Result<String> {
    let (session, schema) = Session::snb(cfg.snb_sf_small, 42)?;
    let queries = snb_queries::ldbc_interactive(&schema)?;
    let mut out = String::new();
    writeln!(
        out,
        "Fig 4b — Optimization time (ms), Calcite-like vs RelGo (timeout {:?})",
        cfg.opt_timeout
    )
    .ok();
    writeln!(
        out,
        "{} {} {} {}",
        cell("query", 7),
        cell("Calcite", 12),
        cell("RelGo", 10),
        cell("visited", 12)
    )
    .ok();
    for w in &queries {
        // RelGo: warm GLogue once, then time the optimization alone.
        let _ = session.optimize(&w.query, OptimizerMode::RelGo)?;
        let (_, relgo_stats) = session.optimize(&w.query, OptimizerMode::RelGo)?;
        let (_, calcite_stats) = session.optimize(&w.query, OptimizerMode::CalciteLike)?;
        let calcite_txt = if calcite_stats.timed_out {
            "OT".to_string()
        } else {
            format!("{:.3}", calcite_stats.elapsed.as_secs_f64() * 1e3)
        };
        writeln!(
            out,
            "{} {} {} {}",
            cell(&w.name, 7),
            cell(&calcite_txt, 12),
            cell(
                &format!("{:.3}", relgo_stats.elapsed.as_secs_f64() * 1e3),
                10
            ),
            cell(&calcite_stats.plans_visited.to_string(), 12),
        )
        .ok();
    }
    Ok(out)
}

fn run_matrix(
    session: &Session,
    queries: &[&Workload],
    modes: &[OptimizerMode],
    reps: usize,
    out: &mut String,
    split_opt_exec: bool,
) -> Result<Vec<Vec<Timing>>> {
    let mut header = cell("query", 7);
    for m in modes {
        if split_opt_exec {
            header.push_str(&cell(&format!("{} opt", m.name()), 14));
            header.push_str(&cell(&format!("{} exe", m.name()), 14));
        } else {
            header.push_str(&cell(m.name(), 13));
        }
    }
    writeln!(out, "{header}").ok();
    let mut all = Vec::new();
    for w in queries {
        let mut line = cell(&w.name, 7);
        let mut row = Vec::new();
        for mode in modes {
            let t = measure(session, &w.query, *mode, reps)?;
            match (&t, split_opt_exec) {
                (
                    Timing::Ok {
                        opt_ms, exec_ms, ..
                    },
                    true,
                ) => {
                    line.push_str(&cell(&format!("{opt_ms:.2}"), 14));
                    line.push_str(&cell(&format!("{exec_ms:.2}"), 14));
                }
                (Timing::Oom, true) => {
                    line.push_str(&cell("OOM", 14));
                    line.push_str(&cell("OOM", 14));
                }
                (t, false) => line.push_str(&cell(&t.display(), 13)),
            }
            row.push(t);
        }
        writeln!(out, "{line}").ok();
        all.push(row);
    }
    Ok(all)
}

/// Fig. 7: optimization + execution time, RelGo vs GRainDB, on the SNB
/// subset (IC1-3, IC2, IC4, IC7) and the IMDB subset (JOB1..4).
pub fn fig7(cfg: &BenchConfig) -> Result<String> {
    let mut out = String::new();
    writeln!(out, "Fig 7 — E2E time split (ms), RelGo vs GRainDB").ok();
    writeln!(out, "(a) SNB-like sf={}", cfg.snb_sf_mid).ok();
    let (session, schema) = Session::snb(cfg.snb_sf_mid, 42)?;
    let all = snb_queries::ldbc_interactive(&schema)?;
    let pick = ["IC1-3", "IC2", "IC4", "IC7"];
    let subset: Vec<&Workload> = all
        .iter()
        .filter(|w| pick.contains(&w.name.as_str()))
        .collect();
    run_matrix(
        &session,
        &subset,
        &[OptimizerMode::RelGo, OptimizerMode::GRainDb],
        cfg.reps,
        &mut out,
        true,
    )?;
    writeln!(out, "(b) IMDB-like sf={}", cfg.imdb_sf).ok();
    let (session, schema) = Session::imdb(cfg.imdb_sf, 7)?;
    let jobs = job_queries::job_queries(&schema)?;
    let subset: Vec<&Workload> = jobs.iter().take(4).collect();
    run_matrix(
        &session,
        &subset,
        &[OptimizerMode::RelGo, OptimizerMode::GRainDb],
        cfg.reps,
        &mut out,
        true,
    )?;
    Ok(out)
}

/// Fig. 8: heuristic-rule ablation — RelGo vs RelGoNoRule on QR1..4 at two
/// scales.
pub fn fig8(cfg: &BenchConfig) -> Result<String> {
    let mut out = String::new();
    writeln!(out, "Fig 8 — RelGo vs RelGoNoRule on QR1..4 (e2e ms)").ok();
    for (tag, sf) in [
        ("LDBC10-like", cfg.snb_sf_small),
        ("LDBC30-like", cfg.snb_sf_mid),
    ] {
        writeln!(out, "({tag}, sf={sf})").ok();
        let (session, schema) = Session::snb(sf, 42)?;
        let qr = snb_queries::qr_queries(&schema)?;
        let refs: Vec<&Workload> = qr.iter().collect();
        let rows = run_matrix(
            &session,
            &refs,
            &[OptimizerMode::RelGo, OptimizerMode::RelGoNoRule],
            cfg.reps,
            &mut out,
            false,
        )?;
        let speedups: Vec<f64> = rows.iter().map(|r| r[1].e2e_ms() / r[0].e2e_ms()).collect();
        writeln!(
            out,
            "  speedup per query: {:?}",
            speedups
                .iter()
                .map(|s| format!("{s:.1}x"))
                .collect::<Vec<_>>()
        )
        .ok();
        writeln!(
            out,
            "  FilterIntoMatch (QR1,QR2) geomean: {:.1}x;  TrimAndFuse (QR3,QR4) geomean: {:.1}x",
            geomean(&speedups[..2]),
            geomean(&speedups[2..]),
        )
        .ok();
    }
    Ok(out)
}

/// Fig. 9: EI-join ablation — RelGo vs RelGoNoEI on QC1..3 at two scales.
pub fn fig9(cfg: &BenchConfig) -> Result<String> {
    let mut out = String::new();
    writeln!(out, "Fig 9 — RelGo vs RelGoNoEI on QC1..3 (e2e ms)").ok();
    for (tag, sf) in [
        ("LDBC10-like", cfg.snb_sf_small),
        ("LDBC30-like", cfg.snb_sf_mid),
    ] {
        writeln!(out, "({tag}, sf={sf})").ok();
        let (session, schema) = Session::snb(sf, 42)?;
        let qc = snb_queries::qc_queries(&schema)?;
        let refs: Vec<&Workload> = qc.iter().collect();
        let rows = run_matrix(
            &session,
            &refs,
            &[OptimizerMode::RelGo, OptimizerMode::RelGoNoEI],
            cfg.reps,
            &mut out,
            false,
        )?;
        let speedups: Vec<f64> = rows.iter().map(|r| r[1].e2e_ms() / r[0].e2e_ms()).collect();
        writeln!(
            out,
            "  NoEI/RelGo per query: {:?}",
            speedups
                .iter()
                .map(|s| format!("{s:.2}x"))
                .collect::<Vec<_>>()
        )
        .ok();
    }
    Ok(out)
}

/// Fig. 10: join-order efficiency — RelGo, GRainDB, RelGoHash, DuckDB on
/// ten JOB queries.
pub fn fig10(cfg: &BenchConfig) -> Result<String> {
    let mut out = String::new();
    writeln!(
        out,
        "Fig 10 — Join-order efficiency on JOB (e2e ms), sf={}",
        cfg.imdb_sf
    )
    .ok();
    let (session, schema) = Session::imdb(cfg.imdb_sf, 7)?;
    let jobs = job_queries::job_queries(&schema)?;
    let subset: Vec<&Workload> = jobs.iter().take(10).collect();
    let modes = [
        OptimizerMode::RelGo,
        OptimizerMode::GRainDb,
        OptimizerMode::RelGoHash,
        OptimizerMode::DuckDbLike,
    ];
    let rows = run_matrix(&session, &subset, &modes, cfg.reps, &mut out, false)?;
    let vs_graindb: Vec<f64> = rows.iter().map(|r| r[1].e2e_ms() / r[0].e2e_ms()).collect();
    let hash_vs_duck: Vec<f64> = rows.iter().map(|r| r[3].e2e_ms() / r[2].e2e_ms()).collect();
    writeln!(
        out,
        "  RelGo vs GRainDB geomean speedup: {:.1}x",
        geomean(&vs_graindb)
    )
    .ok();
    writeln!(
        out,
        "  RelGoHash vs DuckDB geomean speedup: {:.1}x",
        geomean(&hash_vs_duck)
    )
    .ok();
    Ok(out)
}

/// Fig. 11: comprehensive speedups vs the DuckDB-like baseline on the full
/// IC workload (Fig 11a analog) and all 33 JOB queries (Fig 11b analog).
pub fn fig11(cfg: &BenchConfig) -> Result<String> {
    let mut out = String::new();
    let modes = [
        OptimizerMode::DuckDbLike,
        OptimizerMode::RelGo,
        OptimizerMode::UmbraLike,
        OptimizerMode::GRainDb,
        OptimizerMode::KuzuLike,
    ];
    writeln!(
        out,
        "Fig 11a — Speedup vs DuckDB on SNB-like sf={}",
        cfg.snb_sf_large
    )
    .ok();
    let (session, schema) = Session::snb(cfg.snb_sf_large, 42)?;
    let queries = snb_queries::ldbc_interactive(&schema)?;
    let refs: Vec<&Workload> = queries.iter().collect();
    speedup_table(&session, &refs, &modes, cfg.reps, &mut out)?;

    writeln!(
        out,
        "\nFig 11b — Speedup vs DuckDB on IMDB-like sf={}",
        cfg.imdb_sf
    )
    .ok();
    let (session, schema) = Session::imdb(cfg.imdb_sf, 7)?;
    let jobs = job_queries::job_queries(&schema)?;
    let refs: Vec<&Workload> = jobs.iter().collect();
    speedup_table(&session, &refs, &modes, cfg.reps, &mut out)?;
    Ok(out)
}

fn speedup_table(
    session: &Session,
    queries: &[&Workload],
    modes: &[OptimizerMode],
    reps: usize,
    out: &mut String,
) -> Result<()> {
    let mut header = cell("query", 7);
    for m in &modes[1..] {
        header.push_str(&cell(m.name(), 12));
    }
    writeln!(out, "{header}   (baseline DuckDB ms in last column)").ok();
    let mut per_mode: Vec<Vec<f64>> = vec![Vec::new(); modes.len() - 1];
    for w in queries {
        let base = measure(session, &w.query, modes[0], reps)?;
        let mut line = cell(&w.name, 7);
        for (i, mode) in modes[1..].iter().enumerate() {
            let t = measure(session, &w.query, *mode, reps)?;
            let speedup = base.e2e_ms() / t.e2e_ms();
            per_mode[i].push(speedup);
            line.push_str(&cell(&format!("{speedup:.2}x"), 12));
        }
        line.push_str(&cell(&base.display(), 12));
        writeln!(out, "{line}").ok();
    }
    let mut line = cell("geomean", 7);
    for sp in &per_mode {
        line.push_str(&cell(&format!("{:.2}x", geomean(sp)), 12));
    }
    writeln!(out, "{line}").ok();
    Ok(())
}

/// Fig. 12: the JOB17 case-study plans under RelGo, GRainDB and Umbra-like.
pub fn fig12(cfg: &BenchConfig) -> Result<String> {
    let (session, schema) = Session::imdb(cfg.imdb_sf, 7)?;
    let q = job_queries::build_job(&schema, &job_queries::job_specs()[16])?;
    let mut out = String::new();
    writeln!(out, "Fig 12 — JOB17 case study plans").ok();
    for mode in [
        OptimizerMode::RelGo,
        OptimizerMode::GRainDb,
        OptimizerMode::UmbraLike,
    ] {
        writeln!(out, "--- {} ---", mode.name()).ok();
        writeln!(out, "{}", session.explain(&q, mode)?).ok();
    }
    Ok(out)
}

/// Plan-cache figure (`fig_cache`): per-template optimizer time with a cold
/// cache vs the warm `run_cached` path (parameterize + rebind), then a
/// multi-threaded templated replay against one shared session with the
/// cache-metric deltas.
pub fn fig_cache(cfg: &BenchConfig) -> Result<String> {
    use relgo::workloads::templates::{job_templates, snb_templates};

    let mut out = String::new();
    writeln!(
        out,
        "fig_cache — plan cache: cold optimize vs warm rebind (opt ms)"
    )
    .ok();

    // Explicit options (the `*_with` constructors): the harness's optimizer
    // timeout, and cache sizing comfortably above the template count.
    let options = SessionOptions {
        opt_timeout: cfg.opt_timeout,
        plan_cache_shards: 4,
        plan_cache_capacity: 256,
        ..SessionOptions::default()
    };
    let (snb, sschema) = Session::snb_with(cfg.snb_sf_small, 42, options)?;
    let (imdb, ischema) = Session::imdb_with(cfg.imdb_sf, 7, options)?;
    let suites: [(&str, &Session, Vec<QueryTemplate>); 2] = [
        ("SNB", &snb, snb_templates(&sschema)),
        ("JOB", &imdb, job_templates(&ischema)),
    ];

    for (tag, session, templates) in &suites {
        writeln!(out, "({tag})").ok();
        writeln!(
            out,
            "{} {} {} {}",
            cell("template", 16),
            cell("cold opt", 12),
            cell("warm opt", 12),
            cell("ratio", 10)
        )
        .ok();
        let mut ratios = Vec::new();
        for t in templates {
            // Cold: the ordinary run path re-optimizes every repetition.
            let mut cold = Vec::new();
            for rep in 0..cfg.reps.max(1) {
                let q = t.instantiate(rep as u64)?;
                cold.push(session.run(&q, OptimizerMode::RelGo)?.opt.elapsed);
            }
            // Warm: prime once, then every instance rebinds.
            session.run_cached(&t.instantiate(0)?, OptimizerMode::RelGo)?;
            let mut warm = Vec::new();
            for rep in 0..cfg.reps.max(1) {
                let q = t.instantiate(1 + rep as u64)?;
                let o = session.run_cached(&q, OptimizerMode::RelGo)?;
                warm.push(o.opt.elapsed);
            }
            let cold_ms = median_duration_ms(&mut cold);
            let warm_ms = median_duration_ms(&mut warm);
            let ratio = cold_ms / warm_ms.max(1e-6);
            ratios.push(ratio);
            writeln!(
                out,
                "{} {} {} {}",
                cell(t.name(), 16),
                cell(&format!("{cold_ms:.3}"), 12),
                cell(&format!("{warm_ms:.3}"), 12),
                cell(&format!("{ratio:.0}x"), 10)
            )
            .ok();
        }
        writeln!(out, "  geomean opt-time ratio: {:.0}x", geomean(&ratios)).ok();
    }

    // Multi-threaded replay: 4 workers share the SNB session.
    let templates = snb_templates(&sschema);
    let threads = 4;
    let rounds = cfg.reps.max(2);
    for t in &templates {
        snb.run_cached(&t.instantiate(0)?, OptimizerMode::RelGo)?;
    }
    let report = replay_concurrent(&snb, &templates, OptimizerMode::RelGo, threads, rounds)?;
    writeln!(
        out,
        "(replay) {} threads x {} rounds x {} templates = {} queries in {:.0} ms ({:.0} q/s)",
        threads,
        rounds,
        templates.len(),
        report.queries,
        report.elapsed.as_secs_f64() * 1e3,
        report.throughput()
    )
    .ok();
    let m = report.metrics;
    writeln!(
        out,
        "  cache: hits={} misses={} evictions={} rebind_failures={} (hit ratio {:.0}%)",
        m.hits,
        m.misses,
        m.evictions,
        m.rebind_failures,
        m.hit_ratio() * 100.0
    )
    .ok();
    Ok(out)
}

fn median_duration_ms(xs: &mut [std::time::Duration]) -> f64 {
    xs.sort();
    xs[xs.len() / 2].as_secs_f64() * 1e3
}

/// Prepared-statement figure (`fig_prepared`): per-query opt/rebind time
/// under four serving regimes — cold `run` (full optimization), warm
/// `run_cached` (parameterize + cache probe + rebind), prepared `execute`
/// (validate + rebind only), and prepared `execute_batch` (shared batch
/// operator state) — plus a concurrent replay under each [`ServeMode`].
///
/// The figure *errors* (rather than printing a wrong table) if prepared
/// execution does not spend strictly less opt/rebind time than the warm
/// cached path on a suite (summed per-template **medians**, so one
/// scheduler stall on a sub-millisecond measurement cannot flip the
/// comparison), or if any batched result is not bit-identical to its
/// per-query `execute` twin — so rendering doubles as the acceptance
/// check, across both the RelGo and GRainDB modes.
pub fn fig_prepared(cfg: &BenchConfig) -> Result<String> {
    use relgo::workloads::templates::{job_templates, snb_templates};

    let mut out = String::new();
    writeln!(
        out,
        "fig_prepared — prepared statements: per-query opt/rebind ms by serving regime"
    )
    .ok();

    let options = SessionOptions {
        opt_timeout: cfg.opt_timeout,
        plan_cache_shards: 4,
        plan_cache_capacity: 256,
        ..SessionOptions::default()
    };
    let (snb, sschema) = Session::snb_with(cfg.snb_sf_small, 42, options)?;
    let (imdb, ischema) = Session::imdb_with(cfg.imdb_sf, 7, options)?;
    let suites: [(&str, &Session, Vec<QueryTemplate>); 2] = [
        ("SNB", &snb, snb_templates(&sschema)),
        ("JOB", &imdb, job_templates(&ischema)),
    ];
    let reps = cfg.reps.max(3) as u64;

    for (tag, session, templates) in &suites {
        for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
            writeln!(out, "({tag}, {})", mode.name()).ok();
            writeln!(
                out,
                "{} {} {} {} {} {}",
                cell("template", 16),
                cell("cold", 10),
                cell("cached", 10),
                cell("prepared", 10),
                cell("batched", 10),
                cell("cached/prep", 12)
            )
            .ok();
            let mut cached_total = 0f64;
            let mut prepared_total = 0f64;
            for t in templates {
                // Cold: every instance pays the full optimizer.
                let mut cold = Vec::with_capacity(reps as usize);
                for draw in 1..=reps {
                    cold.push(session.run(&t.instantiate(draw)?, mode)?.opt.elapsed);
                }
                // Warm cached: prime, then parameterize+probe+rebind.
                session.run_cached(&t.instantiate(0)?, mode)?;
                let mut cached = Vec::with_capacity(reps as usize);
                for draw in 1..=reps {
                    cached.push(session.run_cached(&t.instantiate(draw)?, mode)?.opt.elapsed);
                }
                // Prepared: validate+rebind only; keep the per-query tables
                // for the batch bit-identity check.
                let stmt = session.prepare(&t.instantiate(0)?, mode)?;
                let bindings: Vec<Vec<Value>> =
                    (1..=reps).map(|d| t.bindings(d)).collect::<Result<_>>()?;
                let mut prepared = Vec::with_capacity(bindings.len());
                let mut singles = Vec::with_capacity(bindings.len());
                for b in &bindings {
                    let o = stmt.execute(b)?;
                    prepared.push(o.opt.elapsed);
                    singles.push(o.table);
                }
                // Batched: all bindings against one shared operator state.
                let batch = stmt.execute_batch(&bindings)?;
                for (i, (single, batched)) in singles.iter().zip(&batch.tables).enumerate() {
                    if !tables_bit_identical(single, batched) {
                        return Err(RelGoError::execution(format!(
                            "{tag} {} ({}): batched result {i} diverges from per-query execute",
                            t.name(),
                            mode.name()
                        )));
                    }
                }
                // Per-query medians: robust to a one-off scheduler stall.
                let cold_ms = median_duration_ms(&mut cold);
                let cached_ms = median_duration_ms(&mut cached);
                let prepared_ms = median_duration_ms(&mut prepared);
                let batched_ms = batch.opt.elapsed.as_secs_f64() * 1e3 / reps as f64;
                cached_total += cached_ms;
                prepared_total += prepared_ms;
                writeln!(
                    out,
                    "{} {} {} {} {} {}",
                    cell(t.name(), 16),
                    cell(&format!("{cold_ms:.3}"), 10),
                    cell(&format!("{cached_ms:.3}"), 10),
                    cell(&format!("{prepared_ms:.3}"), 10),
                    cell(&format!("{batched_ms:.3}"), 10),
                    cell(&format!("{:.1}x", cached_ms / prepared_ms.max(1e-9)), 12)
                )
                .ok();
            }
            if prepared_total >= cached_total {
                return Err(RelGoError::execution(format!(
                    "{tag} ({}): prepared execute must spend strictly less opt/rebind time \
                     than warm run_cached (median sums: prepared {prepared_total:.4} ms \
                     vs cached {cached_total:.4} ms)",
                    mode.name()
                )));
            }
        }
    }

    // Concurrent replay: the same SNB traffic under each serving regime.
    let templates = snb_templates(&sschema);
    let (threads, rounds) = (4, cfg.reps.max(2));
    for t in &templates {
        snb.run_cached(&t.instantiate(0)?, OptimizerMode::RelGo)?;
    }
    writeln!(
        out,
        "(replay) {threads} threads x {rounds} rounds x {} templates",
        templates.len()
    )
    .ok();
    writeln!(
        out,
        "{} {} {} {} {} {}",
        cell("mode", 10),
        cell("queries", 9),
        cell("cached", 8),
        cell("batches", 9),
        cell("opt ms", 10),
        cell("q/s", 10)
    )
    .ok();
    for serve in [
        ServeMode::Cached,
        ServeMode::Prepared,
        ServeMode::PreparedBatched { batch: rounds },
    ] {
        let report = replay_concurrent_with(
            &snb,
            &templates,
            OptimizerMode::RelGo,
            threads,
            rounds,
            serve,
        )?;
        writeln!(
            out,
            "{} {} {} {} {} {}",
            cell(serve.name(), 10),
            cell(&report.queries.to_string(), 9),
            cell(&report.cached_queries.to_string(), 8),
            cell(&report.batches.to_string(), 9),
            cell(&format!("{:.3}", report.opt_time.as_secs_f64() * 1e3), 10),
            cell(&format!("{:.0}", report.throughput()), 10)
        )
        .ok();
    }
    let m = snb.cache_metrics();
    writeln!(
        out,
        "  cache: hits={} misses={} prepared_hits={} prepared_invalidations={} rebind_failures={}",
        m.hits, m.misses, m.prepared_hits, m.prepared_invalidations, m.rebind_failures
    )
    .ok();
    Ok(out)
}

/// Whether two result tables are bit-identical: same row count and the same
/// values in the same row order (not just set-equal).
fn tables_bit_identical(a: &Table, b: &Table) -> bool {
    a.num_rows() == b.num_rows() && (0..a.num_rows() as u32).all(|r| a.row(r) == b.row(r))
}

/// Ingest figure (`fig_ingest`), two panels — and self-checking: rendering
/// errors instead of printing a wrong table.
///
/// **(a) Incremental vs full statistics refresh.** Two identical SNB
/// sessions warm their GLogue on the IC suite, then commit the same small
/// Likes-only delta — one under an always-incremental staleness threshold,
/// one forced to a full pattern-count rebuild. The cost that matters is
/// `stats refresh + re-optimizing the suite against the new epoch`: the
/// incremental path must retain warm counts for the labels the delta never
/// touched and come out **strictly cheaper**; both must agree with a
/// fresh session's statistics (that part is the `ingest_differential`
/// harness's job — here the figure asserts retention and cost).
///
/// **(b) Mixed-mode replay.** A writer ingests dynamic-SNB update batches
/// (each commit publishing an epoch and invalidating cached plans/pins)
/// while reader threads serve snapshot-pinned verified reads plus prepared
/// executes. The replay itself errors on any row divergence; the figure
/// additionally errors unless every commit was observed as a plan-cache
/// invalidation and at least one stale pin re-optimized.
pub fn fig_ingest(cfg: &BenchConfig) -> Result<String> {
    use relgo::workloads::templates::snb_templates;
    use std::time::Instant;

    let mut out = String::new();
    writeln!(
        out,
        "fig_ingest — snapshot-versioned ingestion: statistics refresh and mixed serving"
    )
    .ok();

    // ---- (a) incremental vs full statistics refresh -------------------
    let mk = |staleness: f64| -> Result<(Session, relgo::workloads::snb_queries::SnbSchema)> {
        let options = SessionOptions {
            opt_timeout: cfg.opt_timeout,
            stats_staleness: staleness,
            ..SessionOptions::default()
        };
        Session::snb_with(cfg.snb_sf_small, 42, options)
    };
    // The delta: Likes-only inserts — Person/Knows/HasCreator counts are
    // untouched, so the incremental path keeps the expensive ones warm.
    let likes_delta = |session: &Session| -> Result<IngestReport> {
        let db = session.db();
        let likes = db.table("Likes")?;
        let persons = db.table("Person")?.num_rows() as i64;
        let messages = db.table("Message")?.num_rows() as i64;
        let next = (0..likes.num_rows() as u32)
            .filter_map(|r| likes.value(r, 0).as_int())
            .max()
            .unwrap_or(-1)
            + 1;
        let mut batch = session.begin_ingest();
        for i in 0..16i64 {
            batch.insert_edge(
                "Likes",
                vec![
                    Value::Int(next + i),
                    Value::Int(i % persons),
                    Value::Int((i * 7) % messages),
                    Value::Date(18_500),
                ],
            )?;
        }
        Ok(batch.commit()?)
    };
    // Per path, the cost that matters: stats refresh at commit + bringing
    // the optimizer back to warm against the new epoch. Medians over
    // independent session pairs so a sub-millisecond scheduler stall
    // cannot flip the comparison.
    let reps = cfg.reps.max(3);
    let mut totals: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut last = [(0f64, 0f64); 2];
    let mut warm_counts = [0usize; 2];
    for _ in 0..reps {
        for (i, staleness) in [(0usize, 1.0), (1usize, 0.0)] {
            let (session, schema) = mk(staleness)?;
            let templates = snb_templates(&schema);
            for t in &templates {
                session.optimize(&t.instantiate(0)?, OptimizerMode::RelGo)?;
            }
            let report = likes_delta(&session)?;
            // Re-warm the *same* workload: retained counts are keyed by
            // pattern + predicates, so the incremental path re-optimizes
            // mostly from cache while the full path recounts everything.
            let reopt_start = Instant::now();
            for t in &templates {
                session.optimize(&t.instantiate(0)?, OptimizerMode::RelGo)?;
            }
            let reopt_ms = reopt_start.elapsed().as_secs_f64() * 1e3;
            let refresh_ms = report.stats_time.as_secs_f64() * 1e3;
            totals[i].push(refresh_ms + reopt_ms);
            last[i] = (refresh_ms, reopt_ms);
            match (i, report.stats) {
                (0, StatsRefresh::Incremental { retained, evicted }) => {
                    if retained == 0 {
                        return Err(RelGoError::execution(format!(
                            "incremental refresh retained no warm counts (evicted {evicted}) \
                             — a Likes-only delta must keep Person/Knows patterns warm"
                        )));
                    }
                    warm_counts[0] = retained;
                }
                (0, StatsRefresh::Full) => {
                    return Err(RelGoError::execution(
                        "staleness 1.0 must take the incremental refresh path",
                    ));
                }
                (_, stats) => {
                    if stats != StatsRefresh::Full {
                        return Err(RelGoError::execution(
                            "staleness 0.0 must take the full rebuild path",
                        ));
                    }
                }
            }
        }
    }
    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let costs = [median(&mut totals[0]), median(&mut totals[1])];
    writeln!(
        out,
        "(a) statistics refresh across a 16-row Likes commit + re-warming the IC suite \
         (median of {reps})"
    )
    .ok();
    writeln!(
        out,
        "{} {} {} {} {}",
        cell("path", 12),
        cell("refresh ms", 12),
        cell("reopt ms", 12),
        cell("median ms", 12),
        cell("warm counts", 12)
    )
    .ok();
    for (i, name) in [(0usize, "incremental"), (1, "full")] {
        let warm = if i == 0 {
            warm_counts[0].to_string()
        } else {
            "0 (rebuilt)".to_string()
        };
        writeln!(
            out,
            "{} {} {} {} {}",
            cell(name, 12),
            cell(&format!("{:.3}", last[i].0), 12),
            cell(&format!("{:.3}", last[i].1), 12),
            cell(&format!("{:.3}", costs[i]), 12),
            cell(&warm, 12)
        )
        .ok();
    }
    if costs[0] >= costs[1] {
        return Err(RelGoError::execution(format!(
            "incremental statistics refresh must be strictly cheaper than a full rebuild \
             for a small delta (median: incremental {:.4} ms vs full {:.4} ms)",
            costs[0], costs[1]
        )));
    }
    writeln!(
        out,
        "  incremental refresh is {:.1}x cheaper end-to-end",
        costs[1] / costs[0].max(1e-9)
    )
    .ok();

    // ---- (b) mixed-mode replay ---------------------------------------
    let (session, schema) = mk(0.5)?;
    let templates = snb_templates(&schema);
    let (threads, rounds) = (2, cfg.reps.max(2));
    let (commits, ops_per_commit) = (3, 8);
    let before = session.cache_metrics();
    // Any row divergence between a snapshot-pinned cached read and a fresh
    // optimization on the same snapshot aborts the replay with an error.
    let report = replay_concurrent_with(
        &session,
        &templates,
        OptimizerMode::RelGo,
        threads,
        rounds,
        ServeMode::Mixed {
            commits,
            ops_per_commit,
            writers: 1,
        },
    )?;
    let delta = session.cache_metrics().since(&before);
    if report.commits != commits {
        return Err(RelGoError::execution(format!(
            "mixed replay published {} commits, expected {commits}",
            report.commits
        )));
    }
    if delta.invalidations < commits as u64 {
        return Err(RelGoError::execution(format!(
            "every commit must be observed as a plan-cache invalidation \
             ({} invalidations for {commits} commits)",
            delta.invalidations
        )));
    }
    if delta.prepared_invalidations == 0 {
        return Err(RelGoError::execution(
            "no pinned prepared statement re-optimized after the commits",
        ));
    }
    writeln!(
        out,
        "(b) mixed replay: {threads} readers x {rounds} rounds (verified) + 1 writer x \
         {commits} commits x {ops_per_commit} rows"
    )
    .ok();
    writeln!(
        out,
        "  {} queries ({} prepared) in {:.0} ms, {} rows ingested, epoch {} — zero divergences",
        report.queries,
        report.prepared_queries,
        report.elapsed.as_secs_f64() * 1e3,
        report.ingested_rows,
        session.epoch()
    )
    .ok();
    writeln!(
        out,
        "  cache deltas: hits={} misses={} invalidations={} prepared_hits={} prepared_invalidations={}",
        delta.hits, delta.misses, delta.invalidations, delta.prepared_hits, delta.prepared_invalidations
    )
    .ok();
    Ok(out)
}

/// WAL figure (`fig_wal`), three panels — and self-checking: rendering
/// errors instead of printing a wrong table.
///
/// **(a) Durability cost.** Two single-writer durable sessions commit the
/// same person-insert stream, one with fsync-on-commit and one with fsync
/// off; the figure reports median per-commit latency and asserts the WAL
/// counters prove what each path did (`syncs == records` vs `syncs == 0`).
///
/// **(b) Group commit.** A durable session runs a mixed replay with
/// concurrent writer threads racing on a shared marker row. The figure
/// errors unless the WAL delta shows group commit actually batching:
/// strictly fewer fsyncs than committed records.
///
/// **(c) Crash-recovery replay.** The log written in (b) is recovered into
/// a fresh session over the same base data; the figure errors unless the
/// replay lands on the live session's exact epoch with bit-identical
/// tables and query results.
pub fn fig_wal(cfg: &BenchConfig) -> Result<String> {
    use relgo::workloads::templates::snb_templates;
    use std::time::Instant;

    let mut out = String::new();
    writeln!(
        out,
        "fig_wal — write-ahead logging: durability cost, group commit, crash recovery"
    )
    .ok();

    let (db, mapping) = relgo::datagen::generate_snb(&relgo::datagen::SnbParams {
        sf: cfg.snb_sf_small,
        seed: 42,
    });
    let wal_path = |tag: &str| {
        std::env::temp_dir().join(format!("relgo_fig_wal_{}_{tag}.wal", std::process::id()))
    };
    let options = SessionOptions {
        opt_timeout: cfg.opt_timeout,
        ..SessionOptions::default()
    };

    // ---- (a) durability cost: fsync on vs off --------------------------
    let commits = 4 * cfg.reps.max(2);
    writeln!(
        out,
        "(a) single-writer commit latency, 8-row person batches (median of {commits} commits)"
    )
    .ok();
    writeln!(
        out,
        "{} {} {} {} {}",
        cell("path", 12),
        cell("commits", 8),
        cell("median ms", 12),
        cell("fsyncs", 8),
        cell("wal bytes", 10)
    )
    .ok();
    for (tag, fsync) in [("fsync", true), ("no-fsync", false)] {
        let path = wal_path(tag);
        let _ = std::fs::remove_file(&path);
        let (session, _) = Session::open_durable(
            db.clone(),
            mapping.clone(),
            options,
            &path,
            WalOptions {
                fsync,
                ..WalOptions::default()
            },
        )?;
        let mut times = Vec::with_capacity(commits);
        for c in 0..commits {
            let start = Instant::now();
            let mut batch = session.begin_ingest();
            for i in 0..8i64 {
                let id = 30_000_000 + (c as i64) * 8 + i;
                batch.insert_row(
                    "Person",
                    vec![
                        Value::Int(id),
                        Value::str(format!("wal_{id}")),
                        Value::Date(18_500),
                    ],
                )?;
            }
            batch.commit()?;
            times.push(start.elapsed().as_secs_f64() * 1e3);
        }
        let stats = session.wal_stats().expect("durable session has WAL stats");
        if stats.records != commits as u64 {
            return Err(RelGoError::execution(format!(
                "{tag}: expected {commits} WAL records, got {}",
                stats.records
            )));
        }
        let expected_syncs = if fsync { commits as u64 } else { 0 };
        if stats.syncs != expected_syncs {
            return Err(RelGoError::execution(format!(
                "{tag}: a single writer must fsync {expected_syncs} times, got {}",
                stats.syncs
            )));
        }
        // WAL durability is a traced query-lifecycle stage: every commit
        // on a durable session charges `wal_append`.
        let wal_stage_samples = match session
            .observability_snapshot()
            .registry
            .get("relgo_query_stage_seconds", &[("stage", "wal_append")])
        {
            Some(relgo::metrics::SampleValue::Histogram(h)) => h.count,
            _ => 0,
        };
        if wal_stage_samples != commits as u64 {
            return Err(RelGoError::execution(format!(
                "{tag}: expected {commits} wal_append stage samples, got {wal_stage_samples}"
            )));
        }
        times.sort_by(|a, b| a.total_cmp(b));
        writeln!(
            out,
            "{} {} {} {} {}",
            cell(tag, 12),
            cell(&commits.to_string(), 8),
            cell(&format!("{:.3}", times[times.len() / 2]), 12),
            cell(&stats.syncs.to_string(), 8),
            cell(&stats.bytes.to_string(), 10)
        )
        .ok();
        let _ = std::fs::remove_file(&path);
    }

    // ---- (b) group commit under concurrent writers ---------------------
    let path = wal_path("group");
    let _ = std::fs::remove_file(&path);
    let (session, _) = Session::open_durable(
        db.clone(),
        mapping.clone(),
        options,
        &path,
        WalOptions {
            // Hold each leader's flush open briefly so concurrently
            // committing writers stage into the same group.
            sync_delay: Some(std::time::Duration::from_millis(20)),
            ..WalOptions::default()
        },
    )?;
    let schema = SnbSchema::resolve(session.view().schema())?;
    let templates = snb_templates(&schema);
    let (readers, rounds) = (2, cfg.reps.max(2));
    let (commits, ops_per_commit, writers) = (8, 6, 4);
    let report = replay_concurrent_with(
        &session,
        &templates,
        OptimizerMode::RelGo,
        readers,
        rounds,
        ServeMode::Mixed {
            commits,
            ops_per_commit,
            writers,
        },
    )?;
    let wal = report.wal.ok_or_else(|| {
        RelGoError::execution("mixed replay on a durable session must report WAL deltas")
    })?;
    if wal.records != commits as u64 {
        return Err(RelGoError::execution(format!(
            "expected one WAL record per published commit ({commits}), got {}",
            wal.records
        )));
    }
    if wal.syncs >= wal.records {
        return Err(RelGoError::execution(format!(
            "group commit must reduce per-commit fsyncs under {writers} concurrent writers \
             ({} fsyncs for {} records)",
            wal.syncs, wal.records
        )));
    }
    let expected_conflicts = commits - commits.div_ceil(writers);
    if report.conflicts != expected_conflicts {
        return Err(RelGoError::execution(format!(
            "marker row must force one winner per round: expected {expected_conflicts} \
             retried conflicts, got {}",
            report.conflicts
        )));
    }
    writeln!(
        out,
        "(b) group commit: {writers} writers x {commits} commits x {ops_per_commit} rows \
         + {readers} verified readers x {rounds} rounds"
    )
    .ok();
    writeln!(
        out,
        "  {} records in {} fsyncs ({:.2} records/fsync), {} write conflicts retried, \
         {} bytes logged — zero read divergences",
        wal.records,
        wal.syncs,
        wal.records as f64 / wal.syncs.max(1) as f64,
        report.conflicts,
        wal.bytes
    )
    .ok();

    // ---- (c) crash-recovery replay -------------------------------------
    let live_epoch = session.epoch();
    let probe = templates[0].instantiate(3)?;
    let live_result = session.run(&probe, OptimizerMode::RelGo)?.table;
    let start = Instant::now();
    let (recovered, rec) = Session::recover(db.clone(), mapping.clone(), &path)?;
    let recover_ms = start.elapsed().as_secs_f64() * 1e3;
    if recovered.epoch() != live_epoch || rec.epoch != live_epoch {
        return Err(RelGoError::execution(format!(
            "recovery replay must reproduce the live epoch: live {live_epoch}, \
             recovered {} (report {})",
            recovered.epoch(),
            rec.epoch
        )));
    }
    {
        let live_db = session.db();
        let rec_db = recovered.db();
        for name in ["Person", "Knows", "Likes"] {
            if !tables_bit_identical(live_db.table(name)?, rec_db.table(name)?) {
                return Err(RelGoError::execution(format!(
                    "recovered table {name} diverges from the live session"
                )));
            }
        }
    }
    let rec_result = recovered.run(&probe, OptimizerMode::RelGo)?.table;
    if !tables_bit_identical(&live_result, &rec_result) {
        return Err(RelGoError::execution(
            "recovered session answers the probe query differently from the live one",
        ));
    }
    writeln!(
        out,
        "(c) recovery: replayed {} records ({} rows, {} bytes) in {:.1} ms to epoch {} — \
         tables and query results bit-identical to the live session",
        rec.records, rec.rows_replayed, rec.bytes, recover_ms, rec.epoch
    )
    .ok();
    let _ = std::fs::remove_file(&path);
    Ok(out)
}

/// Checkpointing figure (`fig_ckpt`), three panels — and self-checking:
/// rendering errors instead of printing a wrong table.
///
/// **(a) WAL compaction.** A durable session commits a person-insert
/// stream, then checkpoints. The figure errors unless compaction drops
/// every pre-checkpoint record and the live log shrinks to zero bytes on
/// disk (the snapshot now carries that history).
///
/// **(b) Bounded recovery.** Two sessions replay the same N-commit history;
/// one runs under an auto-checkpoint policy capped at C records, the other
/// never checkpoints. The figure errors unless recovery of the first
/// replays at most C WAL records while the second replays all N — the
/// policy bounds replay regardless of history length.
///
/// **(c) Bit-identity.** Both recovered sessions must match the live one on
/// base tables and on a probe query under both optimizer modes.
pub fn fig_ckpt(cfg: &BenchConfig) -> Result<String> {
    use relgo::workloads::templates::snb_templates;
    use std::time::Instant;

    let mut out = String::new();
    writeln!(
        out,
        "fig_ckpt — checkpointing: WAL compaction, bounded recovery replay"
    )
    .ok();

    let (db, mapping) = relgo::datagen::generate_snb(&relgo::datagen::SnbParams {
        sf: cfg.snb_sf_small,
        seed: 42,
    });
    let wal_path = |tag: &str| {
        std::env::temp_dir().join(format!("relgo_fig_ckpt_{}_{tag}.wal", std::process::id()))
    };
    let cleanup = |path: &std::path::Path| {
        let _ = std::fs::remove_file(path);
        if let Ok(ckpts) = relgo::CheckpointStore::for_wal(path).list() {
            for (_, p) in ckpts {
                let _ = std::fs::remove_file(p);
            }
        }
    };
    let options = SessionOptions {
        opt_timeout: cfg.opt_timeout,
        ..SessionOptions::default()
    };
    let commit_batch = |session: &Session, c: i64| -> Result<()> {
        let mut batch = session.begin_ingest();
        for i in 0..8i64 {
            let id = 40_000_000 + c * 8 + i;
            batch.insert_row(
                "Person",
                vec![
                    Value::Int(id),
                    Value::str(format!("ckpt_{id}")),
                    Value::Date(19_000),
                ],
            )?;
        }
        batch.commit()?;
        Ok(())
    };

    // ---- (a) checkpoint compacts the WAL on disk -----------------------
    let commits = 4 * cfg.reps.max(2) as i64;
    let path = wal_path("compact");
    cleanup(&path);
    let (session, _) = Session::open_durable(
        db.clone(),
        mapping.clone(),
        options,
        &path,
        WalOptions::default(),
    )?;
    for c in 0..commits {
        commit_batch(&session, c)?;
    }
    let before = session
        .wal_bytes_since_checkpoint()
        .ok_or_else(|| RelGoError::execution("durable session must expose live WAL bytes"))?;
    if before == 0 {
        return Err(RelGoError::execution(
            "WAL must hold bytes before the checkpoint",
        ));
    }
    let report = session.checkpoint()?;
    if report.wal.records_dropped != commits as u64 || report.wal.bytes_retained != 0 {
        return Err(RelGoError::execution(format!(
            "checkpoint at the head epoch must drop all {commits} records and retain 0 bytes \
             (dropped {}, retained {})",
            report.wal.records_dropped, report.wal.bytes_retained
        )));
    }
    if session.wal_bytes_since_checkpoint() != Some(0) {
        return Err(RelGoError::execution(
            "compaction must shrink the live WAL to 0 bytes on disk",
        ));
    }
    writeln!(
        out,
        "(a) compaction: {commits} commits, {before} WAL bytes -> 0 after checkpoint \
         (snapshot {} bytes at epoch {}, {:.1} ms)",
        report.bytes,
        report.epoch,
        report.elapsed.as_secs_f64() * 1e3
    )
    .ok();
    cleanup(&path);

    // ---- (b) bounded recovery under an auto-checkpoint policy ----------
    let cap = 4u64;
    let total = (3 * cap + 1) as i64; // cadence leaves a 1-record tail
    let auto_path = wal_path("auto");
    let full_path = wal_path("full");
    cleanup(&auto_path);
    cleanup(&full_path);
    let auto_options = SessionOptions {
        checkpoint: Some(CheckpointPolicy {
            max_records: cap,
            max_wal_bytes: u64::MAX,
        }),
        ..options
    };
    let (live_auto, _) = Session::open_durable(
        db.clone(),
        mapping.clone(),
        auto_options,
        &auto_path,
        WalOptions::default(),
    )?;
    let (live_full, _) = Session::open_durable(
        db.clone(),
        mapping.clone(),
        options,
        &full_path,
        WalOptions::default(),
    )?;
    for c in 0..total {
        commit_batch(&live_auto, c)?;
        commit_batch(&live_full, c)?;
    }
    let start = Instant::now();
    let (rec_auto, ra) = Session::recover(db.clone(), mapping.clone(), &auto_path)?;
    let auto_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let (rec_full, rf) = Session::recover(db.clone(), mapping.clone(), &full_path)?;
    let full_ms = start.elapsed().as_secs_f64() * 1e3;
    if !ra.checkpoint_loaded || ra.records as u64 > cap {
        return Err(RelGoError::execution(format!(
            "policy cap {cap} must bound recovery replay: loaded={} records={}",
            ra.checkpoint_loaded, ra.records
        )));
    }
    if rf.checkpoint_loaded || rf.records as i64 != total {
        return Err(RelGoError::execution(format!(
            "the never-checkpointed twin must replay its full {total}-record history: \
             loaded={} records={}",
            rf.checkpoint_loaded, rf.records
        )));
    }
    if rec_auto.epoch() != live_auto.epoch() || rec_full.epoch() != live_full.epoch() {
        return Err(RelGoError::execution(
            "both recoveries must land on the live epoch",
        ));
    }
    writeln!(
        out,
        "(b) bounded recovery: {total}-commit history, policy cap {cap} records"
    )
    .ok();
    writeln!(
        out,
        "{} {} {} {} {}",
        cell("path", 14),
        cell("ckpt epoch", 11),
        cell("replayed", 9),
        cell("skipped", 8),
        cell("recover ms", 12)
    )
    .ok();
    for (tag, rec, ms) in [
        ("checkpointed", &ra, auto_ms),
        ("full-replay", &rf, full_ms),
    ] {
        writeln!(
            out,
            "{} {} {} {} {}",
            cell(tag, 14),
            cell(&rec.checkpoint_epoch.to_string(), 11),
            cell(&rec.records.to_string(), 9),
            cell(&rec.skipped_records.to_string(), 8),
            cell(&format!("{ms:.1}"), 12)
        )
        .ok();
    }

    // ---- (c) bit-identity against the live sessions --------------------
    let schema = SnbSchema::resolve(live_auto.view().schema())?;
    let probe = snb_templates(&schema)[0].instantiate(3)?;
    for (tag, live, rec) in [
        ("auto", &live_auto, &rec_auto),
        ("full", &live_full, &rec_full),
    ] {
        let live_db = live.db();
        let rec_db = rec.db();
        for name in ["Person", "Knows", "Likes"] {
            if !tables_bit_identical(live_db.table(name)?, rec_db.table(name)?) {
                return Err(RelGoError::execution(format!(
                    "{tag}: recovered table {name} diverges from the live session"
                )));
            }
        }
        for mode in [OptimizerMode::RelGo, OptimizerMode::GRainDb] {
            let want = live.run(&probe, mode)?.table;
            let got = rec.run(&probe, mode)?.table;
            if !tables_bit_identical(&want, &got) {
                return Err(RelGoError::execution(format!(
                    "{tag}: recovered session answers the probe differently under {mode:?}"
                )));
            }
        }
    }
    writeln!(
        out,
        "(c) both recoveries bit-identical to the live sessions (tables + probe under \
         RelGo and GRainDb)"
    )
    .ok();
    cleanup(&auto_path);
    cleanup(&full_path);
    Ok(out)
}

/// Intra-query parallel scaling (`fig_par`): GLogue statistics build and
/// expand-heavy query execution at 1/2/4/8 threads over {SNB, JOB}, with
/// bit-identity checks of every parallel result against the serial run.
///
/// Speedups are relative to the 1-thread run on the same machine; on a
/// single-core container the scheduler degrades to ~1× (morsel dispatch is
/// cheap) and the figure mainly certifies determinism.
pub fn fig_par(cfg: &BenchConfig) -> Result<String> {
    use std::time::Instant;

    let thread_counts = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    writeln!(
        out,
        "fig_par — morsel-driven intra-query scaling (machine has {cores} core(s))"
    )
    .ok();

    let options = SessionOptions {
        opt_timeout: cfg.opt_timeout,
        ..SessionOptions::default()
    };
    let (mut snb, sschema) = Session::snb_with(cfg.snb_sf_small, 42, options)?;
    let (mut imdb, ischema) = Session::imdb_with(cfg.imdb_sf, 7, options)?;
    // Expand-heavy, unanchored exec workloads: the knows-square (QC2)
    // chains three full-table expansions; JOB17 is the expand-based
    // case-study plan. The stats-build probe counts an *unanchored* pattern
    // so the seed range covers the whole root table (what GLogue pays on a
    // cold statistics build): the QC2 square itself for SNB, the
    // name–title–company wedge for IMDB.
    let snb_q = relgo::workloads::snb_queries::qc_queries(&sschema)?
        .remove(1)
        .query;
    let snb_stats_pattern = snb_q.pattern.clone();
    let job_q = job_queries::build_job(&ischema, &job_queries::job_specs()[16])?;
    let job_stats_pattern = {
        let mut pb = PatternBuilder::new();
        let n = pb.vertex("n", ischema.name);
        let t = pb.vertex("t", ischema.title);
        let c = pb.vertex("c", ischema.company_name);
        pb.edge(n, t, ischema.cast_info)?;
        pb.edge(c, t, ischema.movie_companies)?;
        pb.build()?
    };
    let suites: [(&str, &mut Session, SpjmQuery, Pattern); 2] = [
        ("SNB QC2", &mut snb, snb_q, snb_stats_pattern),
        ("JOB17", &mut imdb, job_q, job_stats_pattern),
    ];

    for (tag, session, query, stats_pattern) in suites {
        writeln!(out, "({tag})").ok();
        writeln!(
            out,
            "{} {} {} {} {} {}",
            cell("threads", 8),
            cell("stats ms", 12),
            cell("speedup", 9),
            cell("exec ms", 12),
            cell("speedup", 9),
            cell("identical", 10)
        )
        .ok();
        session.set_threads(1);
        let (plan, _) = session.optimize(&query, OptimizerMode::RelGo)?;
        let baseline = session.execute(&plan, OptimizerMode::RelGo)?;
        let mut stats_base = f64::NAN;
        let mut exec_base = f64::NAN;
        let mut base_card = f64::NAN;
        for &t in &thread_counts {
            // Statistics build: the exact-counting kernel GLogue pays when
            // (re)building statistics, seed-partitioned across `t` workers.
            let mut stats = Vec::new();
            let mut card = 0f64;
            for _ in 0..cfg.reps.max(1) {
                let start = Instant::now();
                card =
                    relgo::glogue::count_homomorphisms_par(&session.view(), &stats_pattern, 1, t)?;
                stats.push(start.elapsed());
            }
            // Execution: the same optimized plan, `t` morsel workers.
            session.set_threads(t);
            let mut execs = Vec::new();
            let mut table = session.execute(&plan, OptimizerMode::RelGo)?;
            for _ in 0..cfg.reps.max(1) {
                let start = Instant::now();
                table = session.execute(&plan, OptimizerMode::RelGo)?;
                execs.push(start.elapsed());
            }
            let stats_ms = median_duration_ms(&mut stats);
            let exec_ms = median_duration_ms(&mut execs);
            if t == 1 {
                stats_base = stats_ms;
                exec_base = exec_ms;
                base_card = card;
            }
            let identical = tables_bit_identical(&baseline, &table) && card == base_card;
            writeln!(
                out,
                "{} {} {} {} {} {}",
                cell(&t.to_string(), 8),
                cell(&format!("{stats_ms:.3}"), 12),
                cell(&format!("{:.2}x", stats_base / stats_ms.max(1e-9)), 9),
                cell(&format!("{exec_ms:.3}"), 12),
                cell(&format!("{:.2}x", exec_base / exec_ms.max(1e-9)), 9),
                cell(if identical { "yes" } else { "NO" }, 10)
            )
            .ok();
            if !identical {
                return Err(RelGoError::execution(format!(
                    "{tag}: parallel result at {t} threads diverges from serial"
                )));
            }
        }
        session.set_threads(1);
    }
    Ok(out)
}

/// Dataset statistics (the "full version"'s dataset table).
pub fn dataset_stats(cfg: &BenchConfig) -> Result<String> {
    let mut out = String::new();
    writeln!(out, "Dataset statistics").ok();
    for (tag, sf) in [
        ("SNB-like (LDBC10 stand-in)", cfg.snb_sf_small),
        ("SNB-like (LDBC30 stand-in)", cfg.snb_sf_mid),
        ("SNB-like (LDBC100 stand-in)", cfg.snb_sf_large),
    ] {
        let (session, _) = Session::snb(sf, 42)?;
        let stats = session.view().stats();
        writeln!(
            out,
            "{tag}: sf={sf}  vertex tuples={}  edge tuples={}",
            stats.total_vertices(),
            stats.total_edges()
        )
        .ok();
    }
    let (session, _) = Session::imdb(cfg.imdb_sf, 7)?;
    let stats = session.view().stats();
    writeln!(
        out,
        "IMDB-like: sf={}  vertex tuples={}  edge tuples={}",
        cfg.imdb_sf,
        stats.total_vertices(),
        stats.total_edges()
    )
    .ok();
    writeln!(out, "\nPer-table row counts (IMDB-like):").ok();
    for t in session.db().tables() {
        writeln!(out, "  {:<18} {:>9}", t.name(), t.num_rows()).ok();
    }
    Ok(out)
}

/// Networked serving (`fig_serve`): the `relgo-server` HTTP edge over one
/// shared session — concurrent clients, a wire ingest, a Prometheus
/// scrape, and a graceful drain — followed by in-process replay latency
/// distributions and the query-lifecycle trace coverage check.
///
/// The figure is self-checking and errors out unless:
/// - every client-observed response is well-formed and the drain loses
///   zero in-flight requests (accepted connections == complete responses),
/// - the `/metrics` scrape passes format validation and its request/row
///   counters reconcile exactly with the client-side tallies,
/// - the HTTP `query` latency histogram and both replay-mode latency
///   distributions report a *finite* p99,
/// - the serving edge recorded response serialization as a traced stage
///   (the `serialize` entry of the query-stage histogram is populated),
/// - stage traces account for >= 96% of measured end-to-end latency.
pub fn fig_serve(cfg: &BenchConfig) -> Result<String> {
    use relgo::metrics::text;
    use relgo::metrics::SampleValue;
    use relgo::workloads::templates::snb_templates;
    use relgo_server::{Server, ServerConfig};
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    // A tiny blocking HTTP client; any malformed response is an error the
    // figure propagates (that is the "zero lost queries" check's teeth).
    fn http(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String)> {
        let err = |what: &str| RelGoError::execution(format!("http {method} {path}: {what}"));
        let mut stream = TcpStream::connect(addr).map_err(|e| err(&format!("connect: {e}")))?;
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream
            .write_all(req.as_bytes())
            .map_err(|e| err(&format!("send: {e}")))?;
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .map_err(|e| err(&format!("read: {e}")))?;
        let (head, body) = response
            .split_once("\r\n\r\n")
            .ok_or_else(|| err("truncated response (no header/body split)"))?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("malformed status line"))?;
        Ok((status, body.to_string()))
    }

    // The keep-alive counterpart: send `paths` back to back over ONE
    // socket, returning each request's status and wall latency. The
    // per-response `Content-Length` framing keeps the stream synchronized.
    fn http_keepalive(addr: &str, paths: &[String]) -> Result<Vec<(u16, Duration)>> {
        use std::io::{BufRead as _, BufReader};
        let err = |what: &str| RelGoError::execution(format!("keep-alive client: {what}"));
        let stream = TcpStream::connect(addr).map_err(|e| err(&format!("connect: {e}")))?;
        let mut reader = BufReader::new(&stream);
        let mut results = Vec::with_capacity(paths.len());
        for path in paths {
            let start = Instant::now();
            let req = format!("POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\n\r\n");
            (&stream)
                .write_all(req.as_bytes())
                .map_err(|e| err(&format!("send: {e}")))?;
            let mut status = 0u16;
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                if reader
                    .read_line(&mut line)
                    .map_err(|e| err(&format!("read: {e}")))?
                    == 0
                {
                    return Err(err("server closed a keep-alive connection early"));
                }
                if status == 0 {
                    status = line
                        .split_whitespace()
                        .nth(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("malformed status line"))?;
                }
                if line == "\r\n" {
                    break;
                }
                if let Some(v) = line.strip_prefix("Content-Length: ") {
                    content_length = v.trim().parse().map_err(|_| err("bad Content-Length"))?;
                }
            }
            let mut body = vec![0u8; content_length];
            reader
                .read_exact(&mut body)
                .map_err(|e| err(&format!("read body: {e}")))?;
            results.push((status, start.elapsed()));
        }
        Ok(results)
    }

    let mut out = String::new();
    writeln!(
        out,
        "fig_serve — networked serving: HTTP edge, metrics scrape, graceful drain"
    )
    .ok();

    let options = SessionOptions {
        opt_timeout: cfg.opt_timeout,
        ..SessionOptions::default()
    };
    let (session, schema) = Session::snb_with(cfg.snb_sf_small, 42, options)?;
    let templates = snb_templates(&schema);

    // ---- (a) HTTP serving phase ----------------------------------------
    let clients = 3usize;
    let rounds = cfg.reps.max(2);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        max_inflight_per_tenant: 64,
        tenant_row_budget: usize::MAX,
        ..ServerConfig::default()
    };
    let bound = Server::new(&session, &templates, config).bind()?;
    let addr = bound.local_addr().to_string();

    let (stats, client_result) = std::thread::scope(|scope| {
        let server = scope.spawn(move || bound.run());

        // All client work in a fallible closure so the shutdown below runs
        // on *every* path — a figure error must not leave the server (and
        // with it the whole scope) waiting forever.
        let client_work = || -> Result<(u64, u64, u64, u64, f64, f64, Duration)> {
            let mut sent = 0u64;
            let mut rows_received = 0u64;
            // Concurrent query clients, one tenant each.
            let per_client: Vec<(u64, u64)> = std::thread::scope(|cscope| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let (addr, templates) = (&addr, &templates);
                        cscope.spawn(move || -> Result<(u64, u64)> {
                            let mut sent = 0u64;
                            let mut rows = 0u64;
                            for r in 0..rounds {
                                for t in templates.iter() {
                                    let draw = (c * rounds + r) as u64;
                                    let (status, body) = http(
                                        addr,
                                        "POST",
                                        &format!(
                                            "/query?template={}&draw={draw}&tenant=c{c}",
                                            t.name()
                                        ),
                                        "",
                                    )?;
                                    sent += 1;
                                    if status != 200 {
                                        return Err(RelGoError::execution(format!(
                                            "query {} draw {draw}: status {status}: {body}",
                                            t.name()
                                        )));
                                    }
                                    // Well-formedness: meta line agrees with
                                    // the number of row lines that follow.
                                    let mut lines = body.lines();
                                    let meta = lines.next().unwrap_or("");
                                    let n: u64 = meta
                                        .strip_prefix("ok rows=")
                                        .and_then(|m| m.split_whitespace().next())
                                        .and_then(|m| m.parse().ok())
                                        .ok_or_else(|| {
                                            RelGoError::execution(format!(
                                                "malformed meta line: {meta}"
                                            ))
                                        })?;
                                    let got = lines.count() as u64;
                                    if got != n {
                                        return Err(RelGoError::execution(format!(
                                            "meta says rows={n}, body has {got}"
                                        )));
                                    }
                                    rows += n;
                                }
                            }
                            Ok((sent, rows))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .collect::<Result<Vec<_>>>()
            })?;
            for (s, r) in per_client {
                sent += s;
                rows_received += r;
            }

            // Prepared path over the wire.
            let (status, body) = http(
                &addr,
                "POST",
                &format!("/prepare?template={}", templates[0].name()),
                "",
            )?;
            if status != 200 {
                return Err(RelGoError::execution(format!("prepare: {status}: {body}")));
            }
            let stmt = body
                .trim()
                .strip_prefix("ok stmt=")
                .unwrap_or("1")
                .to_string();
            for draw in 0..rounds as u64 {
                let (status, body) = http(
                    &addr,
                    "POST",
                    &format!("/execute?stmt={stmt}&draw={draw}"),
                    "",
                )?;
                if status != 200 {
                    return Err(RelGoError::execution(format!("execute: {status}: {body}")));
                }
                let meta = body.lines().next().unwrap_or("");
                rows_received += meta
                    .strip_prefix("ok rows=")
                    .and_then(|m| m.split_whitespace().next())
                    .and_then(|m| m.parse::<u64>().ok())
                    .unwrap_or(0);
            }

            // A wire ingest commit.
            let mut ingest = String::new();
            for i in 0..8i64 {
                writeln!(ingest, "Person|i:{}|s:serve_{i}|d:18500", 40_000_000 + i).ok();
            }
            let (status, body) = http(&addr, "POST", "/ingest", &ingest)?;
            if status != 200 {
                return Err(RelGoError::execution(format!("ingest: {status}: {body}")));
            }

            // Keep-alive reuse: the same cached query N times over ONE
            // persistent connection vs N fresh connections — the delta is
            // the per-request connection-setup tax keep-alive removes.
            let ka_reqs = (2 * rounds).max(4);
            let ka_path = format!("/query?template={}&draw=0&tenant=ka", templates[0].name());
            let reused: Vec<(u16, Duration)> =
                http_keepalive(&addr, &vec![ka_path.clone(); ka_reqs])?;
            let mut fresh = Vec::with_capacity(ka_reqs);
            for _ in 0..ka_reqs {
                let start = Instant::now();
                let (status, _) = http(&addr, "POST", &ka_path, "")?;
                fresh.push((status, start.elapsed()));
            }
            for (status, _) in reused.iter().chain(fresh.iter()) {
                sent += 1;
                if *status != 200 {
                    return Err(RelGoError::execution(format!(
                        "keep-alive phase query failed: status {status}"
                    )));
                }
            }
            // Same rows flow on both paths; count them off the oracle-free
            // meta line of one probe (all draws identical).
            let (_, probe_body) = http(&addr, "POST", &ka_path, "")?;
            sent += 1;
            let ka_rows: u64 = probe_body
                .lines()
                .next()
                .and_then(|m| m.strip_prefix("ok rows="))
                .and_then(|m| m.split_whitespace().next())
                .and_then(|m| m.parse().ok())
                .unwrap_or(0);
            rows_received += ka_rows * (2 * ka_reqs + 1) as u64;
            let mean_us = |v: &[(u16, Duration)]| {
                v.iter().map(|(_, d)| d.as_micros() as f64).sum::<f64>() / v.len() as f64
            };
            let (reused_mean_us, fresh_mean_us) = (mean_us(&reused), mean_us(&fresh));
            let reuses = (ka_reqs - 1) as u64; // first request on the socket is not a reuse

            // Deadline-bounded termination: an already-expired budget
            // (`deadline_ms=0`) must answer 503 within one morsel's work,
            // never run the query to completion. The generous wall bound
            // below is the *proof* — an unbounded query at this scale
            // would be cut off mid-flight, not merely slow.
            let deadline_probes = 2u64;
            let deadline_start = Instant::now();
            for _ in 0..deadline_probes {
                let (status, body) = http(&addr, "POST", &format!("{ka_path}&deadline_ms=0"), "")?;
                sent += 1;
                if status != 503 {
                    return Err(RelGoError::execution(format!(
                        "expired deadline answered {status}, want 503: {body}"
                    )));
                }
            }
            let deadline_elapsed = deadline_start.elapsed() / deadline_probes as u32;
            if deadline_elapsed > Duration::from_secs(2) {
                return Err(RelGoError::execution(format!(
                    "deadline_ms=0 query took {deadline_elapsed:?} to terminate (bound: 2s)"
                )));
            }

            Ok((
                sent,
                rows_received,
                reuses,
                deadline_probes,
                reused_mean_us,
                fresh_mean_us,
                deadline_elapsed,
            ))
        };
        let client_result = client_work();

        // Scrape before shutdown (the scrape itself is the last counted
        // request), then always drain.
        let scrape = http(&addr, "GET", "/metrics", "").map(|(_, body)| body);
        let shutdown = http(&addr, "POST", "/shutdown", "");
        let stats = server.join().expect("server thread");
        let combined = client_result.and_then(|c| {
            shutdown?;
            Ok((c, scrape?))
        });
        (stats, combined)
    });
    let stats = stats?;
    let (
        (
            queries_sent,
            rows_received,
            reuses,
            deadline_probes,
            reused_mean_us,
            fresh_mean_us,
            deadline_elapsed,
        ),
        scrape_body,
    ) = client_result?;

    // Drain accounting: every request was answered, nothing in-flight was
    // lost, and the only non-2xx responses are the deliberate deadline
    // probes (503s). Keep-alive reuse means strictly more requests than
    // connections.
    let answered = stats.ok_responses + stats.rejected + stats.failed;
    if stats.requests != answered || stats.failed != deadline_probes || stats.rejected != 0 {
        return Err(RelGoError::execution(format!(
            "drain lost requests: requests={} answered={answered} rejected={} failed={}",
            stats.requests, stats.rejected, stats.failed
        )));
    }
    if stats.requests <= stats.connections {
        return Err(RelGoError::execution(format!(
            "keep-alive reuse missing: requests={} <= connections={}",
            stats.requests, stats.connections
        )));
    }

    // Scrape validation + exact reconciliation with client tallies.
    text::validate(&scrape_body).map_err(RelGoError::execution)?;
    let scrape = text::parse(&scrape_body).map_err(RelGoError::execution)?;
    let series = scrape.names().len();
    let scraped_queries = scrape
        .value("relgo_http_requests_total", &[("endpoint", "query")])
        .unwrap_or(-1.0);
    let scraped_rows = scrape
        .value("relgo_http_rows_served_total", &[])
        .unwrap_or(-1.0);
    if scraped_queries != queries_sent as f64 || scraped_rows != rows_received as f64 {
        return Err(RelGoError::execution(format!(
            "scrape does not reconcile: queries {scraped_queries} vs {queries_sent}, rows {scraped_rows} vs {rows_received}"
        )));
    }
    // The keep-alive and deadline series reconcile exactly: every client
    // in this figure except the keep-alive phase sends
    // `Connection: close`, so the phase's reuses are the only ones.
    let scraped_reuses = scrape
        .value("relgo_http_keepalive_reuses_total", &[])
        .unwrap_or(-1.0);
    let scraped_deadlines = scrape
        .value("relgo_http_deadline_expirations_total", &[])
        .unwrap_or(-1.0);
    if scraped_reuses != reuses as f64 || scraped_deadlines != deadline_probes as f64 {
        return Err(RelGoError::execution(format!(
            "keep-alive/deadline series do not reconcile: reuses {scraped_reuses} vs {reuses}, deadlines {scraped_deadlines} vs {deadline_probes}"
        )));
    }
    // The scrape's own connection is open while /metrics renders.
    let open = scrape
        .value("relgo_http_open_connections", &[])
        .unwrap_or(0.0);
    if open < 1.0 {
        return Err(RelGoError::execution(format!(
            "open-connections gauge missed the scraping connection: {open}"
        )));
    }
    if series < 12 {
        return Err(RelGoError::execution(format!(
            "scrape exposes only {series} series (expected >= 12)"
        )));
    }
    // Response serialization is traced at the serving edge: every row
    // write over HTTP charged the `serialize` stage.
    let serialized = scrape
        .value("relgo_query_stage_seconds_count", &[("stage", "serialize")])
        .unwrap_or(0.0);
    if serialized <= 0.0 {
        return Err(RelGoError::execution(
            "the serving edge recorded no serialize-stage samples".to_string(),
        ));
    }

    writeln!(
        out,
        "(a) HTTP edge: {clients} clients x {rounds} rounds x {} templates, 4 workers",
        templates.len()
    )
    .ok();
    writeln!(
        out,
        "{} {} {} {}",
        cell("endpoint", 10),
        cell("requests", 9),
        cell("p50 ms", 10),
        cell("p99 ms", 10)
    )
    .ok();
    let registry = session.observability_snapshot().registry;
    let mut query_p99_finite = false;
    for endpoint in ["query", "prepare", "execute", "ingest", "metrics"] {
        let requests = match scrape.value("relgo_http_requests_total", &[("endpoint", endpoint)]) {
            Some(v) => v,
            None => continue,
        };
        let (p50, p99) = match registry.get("relgo_http_request_seconds", &[("endpoint", endpoint)])
        {
            Some(SampleValue::Histogram(h)) => (h.p50(), h.p99()),
            _ => (None, None),
        };
        if endpoint == "query" {
            query_p99_finite = p99.is_some();
        }
        let ms = |d: Option<std::time::Duration>| {
            d.map_or("inf".to_string(), |d| {
                format!("{:.3}", d.as_secs_f64() * 1e3)
            })
        };
        writeln!(
            out,
            "{} {} {} {}",
            cell(endpoint, 10),
            cell(&format!("{requests:.0}"), 9),
            cell(&ms(p50), 10),
            cell(&ms(p99), 10)
        )
        .ok();
    }
    writeln!(
        out,
        "drain: requests={} over connections={} answered={answered} lost=0;  scrape: {series} series, validated, counters reconcile",
        stats.requests, stats.connections
    )
    .ok();
    writeln!(
        out,
        "(a2) keep-alive: {reuses} reuses on one socket; per-request mean {:.0}us reused vs {:.0}us fresh",
        reused_mean_us, fresh_mean_us
    )
    .ok();
    writeln!(
        out,
        "(a3) deadline: deadline_ms=0 answers 503 in {:.1}ms mean (bound 2000ms) — expired queries terminate within one morsel",
        deadline_elapsed.as_secs_f64() * 1e3
    )
    .ok();
    if !query_p99_finite {
        return Err(RelGoError::execution(
            "HTTP query latency p99 is not finite (overflow bucket or empty histogram)".to_string(),
        ));
    }

    // ---- (b) in-process replay latency distributions --------------------
    writeln!(out, "(b) concurrent replay latency (per-query e2e)").ok();
    writeln!(
        out,
        "{} {} {} {} {}",
        cell("serve mode", 11),
        cell("queries", 8),
        cell("qps", 10),
        cell("p50 ms", 10),
        cell("p99 ms", 10)
    )
    .ok();
    for (tag, serve) in [
        ("cached", ServeMode::Cached),
        ("prepared", ServeMode::Prepared),
    ] {
        let report =
            replay_concurrent_with(&session, &templates, OptimizerMode::RelGo, 2, rounds, serve)?;
        let (p50, p99) = (report.p50(), report.p99());
        if p99.is_none() {
            return Err(RelGoError::execution(format!(
                "{tag} replay p99 is not finite over {} queries",
                report.queries
            )));
        }
        let ms = |d: Option<std::time::Duration>| {
            d.map_or("inf".to_string(), |d| {
                format!("{:.3}", d.as_secs_f64() * 1e3)
            })
        };
        writeln!(
            out,
            "{} {} {} {} {}",
            cell(tag, 11),
            cell(&report.queries.to_string(), 8),
            cell(&format!("{:.0}", report.throughput()), 10),
            cell(&ms(p50), 10),
            cell(&ms(p99), 10)
        )
        .ok();
    }

    // ---- (c) query-lifecycle trace coverage ------------------------------
    let mut accounted = std::time::Duration::ZERO;
    let mut total = std::time::Duration::ZERO;
    for (i, t) in templates.iter().enumerate() {
        for draw in 0..rounds as u64 {
            let q = t.instantiate(100 + i as u64 * 31 + draw)?;
            let outcome = session.run_cached(&q, OptimizerMode::RelGo)?;
            accounted += outcome.trace.accounted();
            total += outcome.trace.total;
        }
    }
    let coverage = if total.is_zero() {
        1.0
    } else {
        accounted.as_secs_f64() / total.as_secs_f64()
    };
    writeln!(
        out,
        "(c) trace coverage: stages account for {:.1}% of end-to-end wall (threshold 96%)",
        coverage * 1e2
    )
    .ok();
    if coverage < 0.96 {
        return Err(RelGoError::execution(format!(
            "stage traces cover only {:.1}% of end-to-end latency (need >= 96%)",
            coverage * 1e2
        )));
    }

    Ok(out)
}

/// Operator-level profiling (`fig_profile`): EXPLAIN ANALYZE over the SNB
/// and JOB template suites — per-template Q-error tables, the profiling
/// overhead bound, and the profiled serving path (`profile=1`, `POST
/// /explain`, the slow-query log) over the wire.
///
/// The figure is self-checking and errors out unless:
/// - every profiled execution is bit-identical to its unprofiled twin,
/// - every plan's per-operator actual rows reconcile: each operator's
///   measured input cardinality equals the sum of the output cardinalities
///   of the operators that feed it,
/// - the root operator's actual output equals the result cardinality,
/// - profiling overhead over a whole suite stays inside a generous bound,
/// - over HTTP, the per-operator metric series reconcile *exactly* with
///   client-side tallies of the returned profiles, and every served query
///   lands in the slow-query access log with its full operator profile.
pub fn fig_profile(cfg: &BenchConfig) -> Result<String> {
    use relgo::metrics::text;
    use relgo::workloads::templates::{job_templates, snb_templates, QueryTemplate};
    use relgo_server::{Server, ServerConfig};
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::time::Instant;

    let mut out = String::new();
    writeln!(
        out,
        "fig_profile — operator profiling: EXPLAIN ANALYZE, Q-error, slow-query log"
    )
    .ok();

    let options = SessionOptions {
        opt_timeout: cfg.opt_timeout,
        ..SessionOptions::default()
    };
    let (snb, snb_schema) = Session::snb_with(cfg.snb_sf_small, 42, options)?;
    let (imdb, imdb_schema) = Session::imdb_with(cfg.imdb_sf, 7, options)?;
    let suites: [(&str, &Session, Vec<QueryTemplate>); 2] = [
        ("SNB", &snb, snb_templates(&snb_schema)),
        ("JOB", &imdb, job_templates(&imdb_schema)),
    ];

    // ---- (a) per-template Q-error tables --------------------------------
    // Every EXPLAIN ANALYZE is certified against its unprofiled twin:
    // bit-identical result rows, internally reconciled operator
    // cardinalities (each operator's measured input equals what its
    // children produced), and a root output equal to the result size.
    for (tag, session, templates) in &suites {
        writeln!(
            out,
            "\n(a) {tag} EXPLAIN ANALYZE (draw 0, RelGo mode; q-error = max(est/act, act/est))"
        )
        .ok();
        writeln!(
            out,
            "{} {} {} {} {}",
            cell("template", 10),
            cell("ops", 5),
            cell("rows", 8),
            cell("root est", 10),
            cell("max q", 10)
        )
        .ok();
        for t in templates {
            let q = t.instantiate(0)?;
            let plain = session.run(&q, OptimizerMode::RelGo)?;
            let ea = session.explain_analyze(&q, OptimizerMode::RelGo)?;
            if !tables_bit_identical(&plain.table, &ea.outcome.table) {
                return Err(RelGoError::execution(format!(
                    "{tag} {}: profiled execution diverges from the unprofiled run",
                    t.name()
                )));
            }
            ea.report.reconcile()?;
            let root = ea
                .report
                .root()
                .ok_or_else(|| RelGoError::execution("empty plan report"))?;
            if root.prof.rows_out != plain.table.num_rows() as u64 {
                return Err(RelGoError::execution(format!(
                    "{tag} {}: root operator reports {} rows, result has {}",
                    t.name(),
                    root.prof.rows_out,
                    plain.table.num_rows()
                )));
            }
            if ea.rendered.lines().count() != ea.report.ops.len() {
                return Err(RelGoError::execution(format!(
                    "{tag} {}: rendered tree has {} lines for {} operators",
                    t.name(),
                    ea.rendered.lines().count(),
                    ea.report.ops.len()
                )));
            }
            writeln!(
                out,
                "{} {} {} {} {}",
                cell(t.name(), 10),
                cell(&ea.report.ops.len().to_string(), 5),
                cell(&plain.table.num_rows().to_string(), 8),
                cell(&format!("{:.0}", root.meta.est_rows), 10),
                cell(
                    &ea.report
                        .max_qerror()
                        .map_or("-".to_string(), |q| format!("{q:.2}")),
                    10
                )
            )
            .ok();
        }
    }

    // ---- (b) profiling overhead -----------------------------------------
    // One full pass over each suite, profiled vs unprofiled (best of
    // `reps` passes each). The bound is deliberately generous — profiling
    // must stay a bounded tax, not a different execution regime.
    writeln!(
        out,
        "\n(b) profiling overhead (whole-suite pass, best of passes)"
    )
    .ok();
    for (tag, session, templates) in &suites {
        let passes = cfg.reps.max(2);
        let mut plain_best = f64::INFINITY;
        let mut profiled_best = f64::INFINITY;
        for _ in 0..passes {
            let start = Instant::now();
            for t in templates {
                session.run(&t.instantiate(1)?, OptimizerMode::RelGo)?;
            }
            plain_best = plain_best.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            for t in templates {
                let (outcome, report) =
                    session.run_profiled(&t.instantiate(1)?, OptimizerMode::RelGo)?;
                report.reconcile()?;
                if report.root().map(|r| r.prof.rows_out) != Some(outcome.table.num_rows() as u64) {
                    return Err(RelGoError::execution(format!(
                        "{tag}: profiled root cardinality diverges in the overhead pass"
                    )));
                }
            }
            profiled_best = profiled_best.min(start.elapsed().as_secs_f64());
        }
        let bound = 3.0 * plain_best + 0.05;
        writeln!(
            out,
            "{tag}: unprofiled {:.1}ms, profiled {:.1}ms ({:.2}x; bound 3x + 50ms)",
            plain_best * 1e3,
            profiled_best * 1e3,
            profiled_best / plain_best.max(1e-9)
        )
        .ok();
        if profiled_best > bound {
            return Err(RelGoError::execution(format!(
                "{tag}: profiling overhead out of bounds: {profiled_best:.3}s vs {plain_best:.3}s unprofiled"
            )));
        }
    }

    // ---- (c) the profiled serving path over HTTP ------------------------
    fn http(addr: &str, method: &str, path: &str) -> Result<(u16, String)> {
        let err = |what: &str| RelGoError::execution(format!("http {method} {path}: {what}"));
        let mut stream = TcpStream::connect(addr).map_err(|e| err(&format!("connect: {e}")))?;
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        );
        stream
            .write_all(req.as_bytes())
            .map_err(|e| err(&format!("send: {e}")))?;
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .map_err(|e| err(&format!("read: {e}")))?;
        let (head, body) = response
            .split_once("\r\n\r\n")
            .ok_or_else(|| err("truncated response"))?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("malformed status line"))?;
        Ok((status, body.to_string()))
    }

    // A fresh session so the operator series reconcile exactly against
    // this phase's client-side tallies (phases (a)/(b) already recorded
    // profiles on their own sessions).
    let (serve_session, serve_schema) = Session::snb_with(cfg.snb_sf_small, 42, options)?;
    let serve_templates = snb_templates(&serve_schema);
    let log_path =
        std::env::temp_dir().join(format!("relgo_fig_profile_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        max_inflight_per_tenant: 64,
        tenant_row_budget: usize::MAX,
        access_log: Some(log_path.display().to_string()),
        slow_query_ms: Some(0),
        ..ServerConfig::default()
    };
    let bound = Server::new(&serve_session, &serve_templates, config).bind()?;
    let addr = bound.local_addr().to_string();

    let (server_result, client_result) = std::thread::scope(|scope| {
        let server = scope.spawn(move || bound.run());
        let client_work = || -> Result<(u64, std::collections::HashMap<String, u64>)> {
            let mut queries = 0u64;
            let mut kind_counts: std::collections::HashMap<String, u64> =
                std::collections::HashMap::new();
            for t in &serve_templates {
                for draw in 0..cfg.reps.max(2) as u64 {
                    let (status, body) = http(
                        &addr,
                        "POST",
                        &format!("/query?template={}&draw={draw}&profile=1", t.name()),
                    )?;
                    if status != 200 {
                        return Err(RelGoError::execution(format!(
                            "profiled query {}: status {status}: {body}",
                            t.name()
                        )));
                    }
                    queries += 1;
                    let tail = body.lines().last().unwrap_or("");
                    if !tail.starts_with('[') || !tail.ends_with(']') {
                        return Err(RelGoError::execution(format!(
                            "profile=1 body does not end with a JSON profile: {tail}"
                        )));
                    }
                    for part in tail.split("\"kind\":\"").skip(1) {
                        let kind = part.split('"').next().unwrap_or("");
                        *kind_counts.entry(kind.to_string()).or_insert(0) += 1;
                    }
                }
            }

            // Scrape while the tallies are exact (the /explain below adds
            // one more profiled execution).
            let (status, scrape_body) = http(&addr, "GET", "/metrics")?;
            if status != 200 {
                return Err(RelGoError::execution(format!("scrape status {status}")));
            }
            text::validate(&scrape_body).map_err(RelGoError::execution)?;
            let scrape = text::parse(&scrape_body).map_err(RelGoError::execution)?;
            for (kind, n) in &kind_counts {
                let seconds = scrape
                    .value("relgo_operator_seconds_count", &[("op", kind)])
                    .unwrap_or(-1.0);
                let rows_out = scrape
                    .value("relgo_operator_rows_count", &[("op", kind), ("dir", "out")])
                    .unwrap_or(-1.0);
                if seconds != *n as f64 || rows_out != *n as f64 {
                    return Err(RelGoError::execution(format!(
                        "operator series for {kind} do not reconcile: seconds_count={seconds}, rows_count={rows_out}, client tally={n}"
                    )));
                }
            }
            if scrape.value("relgo_qerror_count", &[]).unwrap_or(0.0) <= 0.0 {
                return Err(RelGoError::execution(
                    "aggregate Q-error histogram is empty after profiled serving".to_string(),
                ));
            }

            // POST /explain round-trips the annotated tree.
            let (status, body) = http(
                &addr,
                "POST",
                &format!("/explain?template={}&draw=1", serve_templates[0].name()),
            )?;
            if status != 200 || !body.starts_with("ok ops=") {
                return Err(RelGoError::execution(format!(
                    "explain round-trip failed: {status}: {body}"
                )));
            }
            if !body.contains("[op=0 est=") || !body.contains(" act=") {
                return Err(RelGoError::execution(format!(
                    "explain tree lacks est/act annotations: {body}"
                )));
            }
            Ok((queries, kind_counts))
        };
        let client_result = client_work();
        let shutdown = http(&addr, "POST", "/shutdown");
        let stats = server.join().expect("server thread");
        (stats.and_then(|s| shutdown.map(|_| s)), client_result)
    });
    server_result?;
    let (queries, kind_counts) = client_result?;

    // Threshold 0 marks every request slow: each served query's access-log
    // line must carry its full operator profile.
    let log = std::fs::read_to_string(&log_path)
        .map_err(|e| RelGoError::execution(format!("read {}: {e}", log_path.display())))?;
    let mut logged_profiles = 0u64;
    for line in log.lines() {
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(RelGoError::execution(format!(
                "access-log line is not a JSON object: {line}"
            )));
        }
        if (line.contains("\"endpoint\":\"query\"") || line.contains("\"endpoint\":\"explain\""))
            && line.contains("\"status\":200")
        {
            if !line.contains("\"slow\":true") || !line.contains("\"profile\":[{\"op\":0,") {
                return Err(RelGoError::execution(format!(
                    "served query missing from the slow-query log: {line}"
                )));
            }
            logged_profiles += 1;
        }
    }
    let _ = std::fs::remove_file(&log_path);
    if logged_profiles != queries + 1 {
        return Err(RelGoError::execution(format!(
            "slow-query log has {logged_profiles} profiled lines for {queries} queries + 1 explain"
        )));
    }

    writeln!(
        out,
        "\n(c) profiled serving: {queries} profile=1 queries over HTTP; {} operator kinds; \
         per-kind series reconcile exactly; {logged_profiles} slow-query log entries carry full profiles",
        kind_counts.len()
    )
    .ok();
    writeln!(
        out,
        "all profiled executions bit-identical to unprofiled; operator cardinalities reconcile"
    )
    .ok();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            reps: 1,
            snb_sf_small: 0.03,
            snb_sf_mid: 0.04,
            snb_sf_large: 0.05,
            imdb_sf: 0.05,
            opt_timeout: std::time::Duration::from_millis(100),
        }
    }

    #[test]
    fn fig4a_report_has_ten_rows() {
        let s = fig4a().unwrap();
        assert_eq!(s.lines().count(), 12, "{s}");
        assert!(s.contains("ratio"));
    }

    #[test]
    fn fig4b_reports_all_queries() {
        let s = fig4b(&tiny()).unwrap();
        assert!(s.contains("IC1-1"));
        assert!(s.contains("IC12"));
    }

    #[test]
    fn fig7_and_fig12_render() {
        let s = fig7(&tiny()).unwrap();
        assert!(s.contains("IC7"));
        assert!(s.contains("JOB1"));
        let s = fig12(&tiny()).unwrap();
        assert!(s.contains("RelGo"));
        assert!(s.contains("EXPAND"));
    }

    #[test]
    fn fig8_fig9_render() {
        let s = fig8(&tiny()).unwrap();
        assert!(s.contains("QR1"));
        assert!(s.contains("FilterIntoMatch"));
        let s = fig9(&tiny()).unwrap();
        assert!(s.contains("QC3"));
    }

    #[test]
    fn fig_par_renders_and_certifies_identity() {
        // fig_par errors out if any parallel result diverges from serial,
        // so rendering doubles as a determinism check.
        let s = fig_par(&tiny()).unwrap();
        assert!(s.contains("SNB QC2"), "{s}");
        assert!(s.contains("JOB17"), "{s}");
        assert!(!s.contains(" NO "), "{s}");
    }

    #[test]
    fn fig_prepared_renders_and_certifies() {
        // fig_prepared errors out if prepared execution is not strictly
        // cheaper than warm run_cached or if any batched result diverges
        // from per-query execute, so rendering doubles as the acceptance
        // check.
        let s = fig_prepared(&tiny()).unwrap();
        assert!(s.contains("GRainDB"), "{s}");
        assert!(s.contains("prep-batch"), "{s}");
        assert!(s.contains("prepared_hits="), "{s}");
    }

    #[test]
    fn fig_ingest_renders_and_certifies() {
        // fig_ingest errors out unless the incremental statistics refresh
        // is strictly cheaper than the full rebuild, the mixed replay sees
        // zero divergences, and cache/pin invalidations are observed after
        // commits — rendering doubles as the acceptance check.
        let s = fig_ingest(&tiny()).unwrap();
        assert!(s.contains("incremental"), "{s}");
        assert!(s.contains("zero divergences"), "{s}");
        assert!(s.contains("invalidations="), "{s}");
    }

    #[test]
    fn fig_serve_renders_and_certifies() {
        // fig_serve errors out unless the drain loses zero in-flight
        // requests, the /metrics scrape validates and reconciles with
        // client tallies, every latency distribution has a finite p99,
        // and stage traces cover >= 96% of end-to-end latency — rendering
        // doubles as the acceptance check.
        let s = fig_serve(&tiny()).unwrap();
        assert!(s.contains("lost=0"), "{s}");
        assert!(s.contains("counters reconcile"), "{s}");
        assert!(s.contains("keep-alive:"), "{s}");
        assert!(s.contains("deadline_ms=0 answers 503"), "{s}");
        assert!(s.contains("trace coverage"), "{s}");
    }

    #[test]
    fn fig_profile_renders_and_certifies() {
        // fig_profile errors out unless every EXPLAIN ANALYZE is
        // bit-identical to its unprofiled twin, operator cardinalities
        // reconcile bottom-up, overhead stays bounded, the per-operator
        // metric series match client tallies exactly, and every served
        // query lands in the slow-query log with its full profile.
        let s = fig_profile(&tiny()).unwrap();
        assert!(s.contains("EXPLAIN ANALYZE"), "{s}");
        assert!(s.contains("max q"), "{s}");
        assert!(s.contains("profiling overhead"), "{s}");
        assert!(s.contains("series reconcile exactly"), "{s}");
        assert!(s.contains("bit-identical"), "{s}");
    }

    #[test]
    fn stats_report_renders() {
        let s = dataset_stats(&tiny()).unwrap();
        assert!(s.contains("IMDB-like"));
        assert!(s.contains("cast_info"));
    }
}
