//! The graph schema derived from an RGMapping: label identity and endpoint
//! typing for pattern validation and planning.

use crate::mapping::RGMapping;
use relgo_common::{FxHashMap, LabelId, RelGoError, Result};

/// Compact label metadata: names ↔ ids, plus the (source, target) vertex
/// labels of every edge label.
#[derive(Debug, Clone, Default)]
pub struct GraphSchema {
    vertex_labels: Vec<String>,
    edge_labels: Vec<String>,
    vertex_by_name: FxHashMap<String, LabelId>,
    edge_by_name: FxHashMap<String, LabelId>,
    /// `endpoints[edge_label] = (src_vertex_label, dst_vertex_label)`.
    endpoints: Vec<(LabelId, LabelId)>,
}

impl GraphSchema {
    /// Derive the schema from a validated mapping. Label ids are assigned in
    /// declaration order (vertices and edges in separate id spaces).
    pub fn from_mapping(mapping: &RGMapping) -> Result<Self> {
        let mut s = GraphSchema::default();
        for v in mapping.vertices() {
            let id = LabelId(s.vertex_labels.len() as u16);
            if s.vertex_by_name.insert(v.label.clone(), id).is_some() {
                return Err(RelGoError::schema(format!(
                    "duplicate vertex label '{}'",
                    v.label
                )));
            }
            s.vertex_labels.push(v.label.clone());
        }
        for e in mapping.edges() {
            let id = LabelId(s.edge_labels.len() as u16);
            if s.edge_by_name.insert(e.label.clone(), id).is_some() {
                return Err(RelGoError::schema(format!(
                    "duplicate edge label '{}'",
                    e.label
                )));
            }
            s.edge_labels.push(e.label.clone());
            let src = s.vertex_label_id(&vertex_label_for_table(mapping, &e.src_table)?)?;
            let dst = s.vertex_label_id(&vertex_label_for_table(mapping, &e.dst_table)?)?;
            s.endpoints.push((src, dst));
        }
        Ok(s)
    }

    /// Number of vertex labels.
    pub fn vertex_label_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of edge labels.
    pub fn edge_label_count(&self) -> usize {
        self.edge_labels.len()
    }

    /// Resolve a vertex label name.
    pub fn vertex_label_id(&self, name: &str) -> Result<LabelId> {
        self.vertex_by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelGoError::not_found(format!("vertex label '{name}'")))
    }

    /// Resolve an edge label name.
    pub fn edge_label_id(&self, name: &str) -> Result<LabelId> {
        self.edge_by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelGoError::not_found(format!("edge label '{name}'")))
    }

    /// Vertex label name of `id`.
    pub fn vertex_label_name(&self, id: LabelId) -> &str {
        &self.vertex_labels[id.0 as usize]
    }

    /// Edge label name of `id`.
    pub fn edge_label_name(&self, id: LabelId) -> &str {
        &self.edge_labels[id.0 as usize]
    }

    /// `(source, target)` vertex labels of the edge label `id`.
    pub fn edge_endpoints(&self, id: LabelId) -> (LabelId, LabelId) {
        self.endpoints[id.0 as usize]
    }

    /// All edge labels incident (as source or target) to vertex label `v`.
    pub fn edges_touching(&self, v: LabelId) -> Vec<LabelId> {
        self.endpoints
            .iter()
            .enumerate()
            .filter(|(_, &(s, t))| s == v || t == v)
            .map(|(i, _)| LabelId(i as u16))
            .collect()
    }
}

fn vertex_label_for_table(mapping: &RGMapping, table: &str) -> Result<String> {
    mapping
        .vertices()
        .iter()
        .find(|v| v.table == table)
        .map(|v| v.label.clone())
        .ok_or_else(|| RelGoError::not_found(format!("vertex table '{table}' in mapping")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> RGMapping {
        RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person")
    }

    #[test]
    fn label_ids_in_declaration_order() {
        let s = GraphSchema::from_mapping(&mapping()).unwrap();
        assert_eq!(s.vertex_label_id("Person").unwrap(), LabelId(0));
        assert_eq!(s.vertex_label_id("Message").unwrap(), LabelId(1));
        assert_eq!(s.edge_label_id("Likes").unwrap(), LabelId(0));
        assert_eq!(s.edge_label_id("Knows").unwrap(), LabelId(1));
        assert_eq!(s.vertex_label_name(LabelId(1)), "Message");
        assert_eq!(s.edge_label_name(LabelId(1)), "Knows");
    }

    #[test]
    fn endpoints_resolved() {
        let s = GraphSchema::from_mapping(&mapping()).unwrap();
        assert_eq!(
            s.edge_endpoints(LabelId(0)),
            (LabelId(0), LabelId(1)),
            "Likes: Person → Message"
        );
        assert_eq!(
            s.edge_endpoints(LabelId(1)),
            (LabelId(0), LabelId(0)),
            "Knows: Person → Person"
        );
    }

    #[test]
    fn edges_touching_vertex_label() {
        let s = GraphSchema::from_mapping(&mapping()).unwrap();
        assert_eq!(s.edges_touching(LabelId(0)), vec![LabelId(0), LabelId(1)]);
        assert_eq!(s.edges_touching(LabelId(1)), vec![LabelId(0)]);
    }

    #[test]
    fn unknown_labels_error() {
        let s = GraphSchema::from_mapping(&mapping()).unwrap();
        assert!(s.vertex_label_id("Nope").is_err());
        assert!(s.edge_label_id("Nope").is_err());
    }
}
