//! Label-level graph statistics: cardinalities and average degrees — the
//! low-order graph inputs (`|V|`, `|E|`, `d̄`) of the paper's cost model.

use crate::index::Direction;
use crate::view::GraphView;
use relgo_common::LabelId;

/// Statistics of a [`GraphView`].
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    vertex_counts: Vec<usize>,
    edge_counts: Vec<usize>,
    /// Average out-degree per edge label (over the *source* label's
    /// vertices), and in-degree (over the target label's).
    avg_out_degree: Vec<f64>,
    avg_in_degree: Vec<f64>,
}

impl GraphStats {
    /// Compute from a view (index not required — degrees are |E| / |V|).
    pub fn compute(view: &GraphView) -> GraphStats {
        let nv = view.schema().vertex_label_count();
        let ne = view.schema().edge_label_count();
        let vertex_counts: Vec<usize> = (0..nv as u16)
            .map(|l| view.vertex_count(LabelId(l)))
            .collect();
        let mut edge_counts = Vec::with_capacity(ne);
        let mut avg_out_degree = Vec::with_capacity(ne);
        let mut avg_in_degree = Vec::with_capacity(ne);
        for l in 0..ne as u16 {
            let el = LabelId(l);
            let m = view.edge_count(el);
            let (src, dst) = view.schema().edge_endpoints(el);
            let ns = vertex_counts[src.0 as usize].max(1);
            let nt = vertex_counts[dst.0 as usize].max(1);
            edge_counts.push(m);
            avg_out_degree.push(m as f64 / ns as f64);
            avg_in_degree.push(m as f64 / nt as f64);
        }
        GraphStats {
            vertex_counts,
            edge_counts,
            avg_out_degree,
            avg_in_degree,
        }
    }

    /// Delta-aware refresh after a committed ingest: recompute only the
    /// labels the change flags mark (see
    /// [`crate::view::GraphView::changed_label_flags`]) and copy the rest
    /// from `prev`. Exact: an unchanged label's tables are bit-identical
    /// across the epochs, so its recomputed statistics would be too.
    pub fn refresh_delta(
        prev: &GraphStats,
        view: &GraphView,
        changed_vertex: &[bool],
        changed_edge: &[bool],
    ) -> GraphStats {
        let nv = view.schema().vertex_label_count();
        let ne = view.schema().edge_label_count();
        let vertex_counts: Vec<usize> = (0..nv as u16)
            .map(|l| {
                if changed_vertex[l as usize] {
                    view.vertex_count(LabelId(l))
                } else {
                    prev.vertex_counts[l as usize]
                }
            })
            .collect();
        let mut edge_counts = Vec::with_capacity(ne);
        let mut avg_out_degree = Vec::with_capacity(ne);
        let mut avg_in_degree = Vec::with_capacity(ne);
        for l in 0..ne as u16 {
            let el = LabelId(l);
            if !changed_edge[l as usize] {
                edge_counts.push(prev.edge_counts[l as usize]);
                avg_out_degree.push(prev.avg_out_degree[l as usize]);
                avg_in_degree.push(prev.avg_in_degree[l as usize]);
                continue;
            }
            let m = view.edge_count(el);
            let (src, dst) = view.schema().edge_endpoints(el);
            let ns = vertex_counts[src.0 as usize].max(1);
            let nt = vertex_counts[dst.0 as usize].max(1);
            edge_counts.push(m);
            avg_out_degree.push(m as f64 / ns as f64);
            avg_in_degree.push(m as f64 / nt as f64);
        }
        GraphStats {
            vertex_counts,
            edge_counts,
            avg_out_degree,
            avg_in_degree,
        }
    }

    /// Number of vertices of label `l`.
    pub fn vertex_count(&self, l: LabelId) -> usize {
        self.vertex_counts[l.0 as usize]
    }

    /// Number of edges of label `l`.
    pub fn edge_count(&self, l: LabelId) -> usize {
        self.edge_counts[l.0 as usize]
    }

    /// Average degree of `(edge label, direction)` — the `d̄` used by the
    /// EXPAND cost `|M(P'l)| × d̄` (§4.2.1).
    pub fn avg_degree(&self, l: LabelId, dir: Direction) -> f64 {
        match dir {
            Direction::Out => self.avg_out_degree[l.0 as usize],
            Direction::In => self.avg_in_degree[l.0 as usize],
        }
    }

    /// Total vertices across all labels.
    pub fn total_vertices(&self) -> usize {
        self.vertex_counts.iter().sum()
    }

    /// Total edges across all labels.
    pub fn total_edges(&self) -> usize {
        self.edge_counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::RGMapping;
    use relgo_common::DataType;
    use relgo_storage::table::table_of;
    use relgo_storage::Database;

    fn view() -> GraphView {
        let mut db = Database::new();
        db.add_table(table_of(
            "V",
            &[("id", DataType::Int)],
            vec![
                vec![1.into()],
                vec![2.into()],
                vec![3.into()],
                vec![4.into()],
            ],
        ));
        db.add_table(table_of(
            "E",
            &[
                ("eid", DataType::Int),
                ("s", DataType::Int),
                ("t", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 2.into()],
                vec![2.into(), 1.into(), 3.into()],
                vec![3.into(), 2.into(), 3.into()],
            ],
        ));
        db.set_primary_key("V", "id").unwrap();
        db.set_primary_key("E", "eid").unwrap();
        let mapping = RGMapping::new().vertex("V").edge("E", "s", "V", "t", "V");
        GraphView::build(&mut db, mapping).unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let s = view().stats();
        assert_eq!(s.vertex_count(LabelId(0)), 4);
        assert_eq!(s.edge_count(LabelId(0)), 3);
        assert!((s.avg_degree(LabelId(0), Direction::Out) - 0.75).abs() < 1e-12);
        assert!((s.avg_degree(LabelId(0), Direction::In) - 0.75).abs() < 1e-12);
        assert_eq!(s.total_vertices(), 4);
        assert_eq!(s.total_edges(), 3);
    }
}
