//! RGMapping: relations → property graph.
//!
//! Mirrors the SQL/PGQ `CREATE PROPERTY GRAPH` statement of the paper's
//! Fig. 2: vertex tables become vertex labels, edge tables become edge
//! labels, and the `SOURCE KEY ... REFERENCE` / `DESTINATION KEY ...
//! REFERENCE` clauses define the λˢ/λᵗ total functions through
//! primary-foreign-key relationships.

use relgo_common::{RelGoError, Result};
use relgo_storage::Database;

/// A vertex mapping: one relation whose tuples become vertices labeled with
/// the relation's name (or an explicit label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexMapping {
    /// Backing relation.
    pub table: String,
    /// Vertex label (defaults to the table name).
    pub label: String,
}

/// An edge mapping: one relation whose tuples become edges, with source and
/// target resolved through foreign keys into vertex relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeMapping {
    /// Backing relation.
    pub table: String,
    /// Edge label (defaults to the table name).
    pub label: String,
    /// Foreign-key column in the edge relation pointing at the source
    /// vertex relation's primary key (λˢ).
    pub src_key: String,
    /// Source vertex relation.
    pub src_table: String,
    /// Foreign-key column pointing at the target vertex relation (λᵗ).
    pub dst_key: String,
    /// Target vertex relation.
    pub dst_table: String,
}

/// The full relations-to-graph mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RGMapping {
    vertices: Vec<VertexMapping>,
    edges: Vec<EdgeMapping>,
}

impl RGMapping {
    /// Start an empty mapping; populate with [`RGMapping::vertex`] and
    /// [`RGMapping::edge`], then check with [`RGMapping::validate`].
    pub fn new() -> Self {
        RGMapping::default()
    }

    /// Declare a vertex table (label = table name).
    pub fn vertex(mut self, table: &str) -> Self {
        self.vertices.push(VertexMapping {
            table: table.to_string(),
            label: table.to_string(),
        });
        self
    }

    /// Declare a vertex table with an explicit label.
    pub fn vertex_as(mut self, table: &str, label: &str) -> Self {
        self.vertices.push(VertexMapping {
            table: table.to_string(),
            label: label.to_string(),
        });
        self
    }

    /// Declare an edge table (label = table name):
    /// `SOURCE KEY (src_key) REFERENCE src_table`,
    /// `DESTINATION KEY (dst_key) REFERENCE dst_table`.
    pub fn edge(
        mut self,
        table: &str,
        src_key: &str,
        src_table: &str,
        dst_key: &str,
        dst_table: &str,
    ) -> Self {
        self.edges.push(EdgeMapping {
            table: table.to_string(),
            label: table.to_string(),
            src_key: src_key.to_string(),
            src_table: src_table.to_string(),
            dst_key: dst_key.to_string(),
            dst_table: dst_table.to_string(),
        });
        self
    }

    /// Declare an edge table with an explicit label.
    #[allow(clippy::too_many_arguments)]
    pub fn edge_as(
        mut self,
        table: &str,
        label: &str,
        src_key: &str,
        src_table: &str,
        dst_key: &str,
        dst_table: &str,
    ) -> Self {
        self.edges.push(EdgeMapping {
            table: table.to_string(),
            label: label.to_string(),
            src_key: src_key.to_string(),
            src_table: src_table.to_string(),
            dst_key: dst_key.to_string(),
            dst_table: dst_table.to_string(),
        });
        self
    }

    /// Declared vertex mappings.
    pub fn vertices(&self) -> &[VertexMapping] {
        &self.vertices
    }

    /// Declared edge mappings.
    pub fn edges(&self) -> &[EdgeMapping] {
        &self.edges
    }

    /// Validate the mapping against a database:
    ///
    /// * every referenced table exists;
    /// * vertex labels and edge labels are unique (within their own spaces);
    /// * every edge endpoint references a declared *vertex* table;
    /// * endpoint key columns exist, and the vertex tables have primary keys
    ///   (so the λ functions are total and well-defined).
    pub fn validate(&self, db: &Database) -> Result<()> {
        for (i, v) in self.vertices.iter().enumerate() {
            db.table(&v.table)?;
            if self.vertices[..i].iter().any(|w| w.label == v.label) {
                return Err(RelGoError::schema(format!(
                    "duplicate vertex label '{}'",
                    v.label
                )));
            }
            if db.primary_key(&v.table).is_none() {
                return Err(RelGoError::schema(format!(
                    "vertex table '{}' has no primary key",
                    v.table
                )));
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            let t = db.table(&e.table)?;
            if self.edges[..i].iter().any(|f| f.label == e.label) {
                return Err(RelGoError::schema(format!(
                    "duplicate edge label '{}'",
                    e.label
                )));
            }
            t.schema().index_of(&e.src_key)?;
            t.schema().index_of(&e.dst_key)?;
            for endpoint in [&e.src_table, &e.dst_table] {
                if !self.vertices.iter().any(|v| v.table == *endpoint) {
                    return Err(RelGoError::schema(format!(
                        "edge '{}' references '{}', which is not a declared vertex table",
                        e.label, endpoint
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgo_common::DataType;
    use relgo_storage::table::table_of;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![vec![1.into(), "Tom".into()]],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
            ],
            vec![vec![1.into(), 1.into(), 100.into()]],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        db
    }

    fn mapping() -> RGMapping {
        RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message")
    }

    #[test]
    fn valid_mapping_passes() {
        mapping().validate(&db()).unwrap();
    }

    #[test]
    fn missing_table_rejected() {
        let m = RGMapping::new().vertex("Nope");
        assert!(m.validate(&db()).is_err());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let m = RGMapping::new()
            .vertex("Person")
            .vertex_as("Message", "Person");
        assert!(m.validate(&db()).is_err());
    }

    #[test]
    fn edge_must_reference_vertex_tables() {
        let m = RGMapping::new()
            .vertex("Person")
            .edge("Likes", "pid", "Person", "mid", "Message"); // Message not declared
        assert!(m.validate(&db()).is_err());
    }

    #[test]
    fn edge_key_columns_must_exist() {
        let m = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "nope", "Person", "mid", "Message");
        assert!(m.validate(&db()).is_err());
    }

    #[test]
    fn vertex_table_needs_primary_key() {
        let mut d = db();
        d.add_table(table_of("NoPk", &[("x", DataType::Int)], vec![]));
        let m = RGMapping::new().vertex("NoPk");
        assert!(m.validate(&d).is_err());
    }

    #[test]
    fn self_referencing_edge_is_fine() {
        let mut d = db();
        d.add_table(table_of(
            "Knows",
            &[
                ("knows_id", DataType::Int),
                ("pid1", DataType::Int),
                ("pid2", DataType::Int),
            ],
            vec![],
        ));
        d.set_primary_key("Knows", "knows_id").unwrap();
        let m = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Knows", "pid1", "Person", "pid2", "Person");
        m.validate(&d).unwrap();
    }
}
