//! The GRainDB-style graph index (paper §3.2.1, Fig. 5).
//!
//! * **EV-index**: for every edge tuple, the pre-resolved row ids of its
//!   source and target vertex tuples — GRainDB's extra `*_rowid` columns.
//!   It routes an edge to its joinable vertex tuples without hashing.
//! * **VE-index**: for every vertex tuple, the adjacent edge tuples and the
//!   corresponding neighbor vertex tuples, stored per edge label and
//!   direction in CSR form. Neighbor lists are sorted by neighbor row id so
//!   `EXPAND_INTERSECT` can intersect them with linear merges.

use crate::view::GraphView;
use relgo_common::{LabelId, Result, RowId};

/// Traversal direction through an edge label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Follow edges from source to target (λˢ side to λᵗ side).
    Out,
    /// Follow edges from target to source.
    In,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

/// EV-index of one edge label: `src_rid[e]` / `dst_rid[e]` are the row ids of
/// the source / target vertex tuples of edge row `e`.
#[derive(Debug, Clone, Default)]
pub struct EvIndex {
    /// Source vertex row per edge row.
    pub src_rid: Vec<RowId>,
    /// Target vertex row per edge row.
    pub dst_rid: Vec<RowId>,
}

/// CSR adjacency of one (edge label, direction): for vertex row `v`, the
/// adjacent `(edge row, neighbor row)` pairs are
/// `entries[offsets[v]..offsets[v+1]]`, sorted by neighbor row id.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    edge_rid: Vec<RowId>,
    nbr_rid: Vec<RowId>,
}

impl Csr {
    fn build(num_vertices: usize, mut triples: Vec<(RowId, RowId, RowId)>) -> Csr {
        // triples = (vertex, edge, neighbor); counting sort by vertex then
        // sort each bucket by neighbor for intersection-friendly lists.
        triples.sort_unstable_by_key(|&(v, _, n)| (v, n));
        let mut offsets = vec![0u32; num_vertices + 1];
        for &(v, _, _) in &triples {
            offsets[v as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let edge_rid = triples.iter().map(|&(_, e, _)| e).collect();
        let nbr_rid = triples.iter().map(|&(_, _, n)| n).collect();
        Csr {
            offsets,
            edge_rid,
            nbr_rid,
        }
    }

    /// Adjacent `(edges, neighbors)` slices of vertex row `v`.
    #[inline]
    pub fn neighbors(&self, v: RowId) -> (&[RowId], &[RowId]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.edge_rid[lo..hi], &self.nbr_rid[lo..hi])
    }

    /// Degree of vertex row `v`.
    #[inline]
    pub fn degree(&self, v: RowId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Total number of adjacency entries.
    pub fn len(&self) -> usize {
        self.edge_rid.len()
    }

    /// Whether the CSR holds no entries.
    pub fn is_empty(&self) -> bool {
        self.edge_rid.is_empty()
    }
}

/// The complete graph index: EV per edge label, VE (CSR) per edge label and
/// direction.
#[derive(Debug, Clone, Default)]
pub struct GraphIndex {
    ev: Vec<EvIndex>,
    ve_out: Vec<Csr>,
    ve_in: Vec<Csr>,
}

impl GraphIndex {
    /// Build both index families for every edge label of the view. Fails if
    /// any λ function is partial (dangling foreign key).
    pub fn build(view: &GraphView) -> Result<GraphIndex> {
        let n_edges = view.schema().edge_label_count();
        let mut ev = Vec::with_capacity(n_edges);
        let mut ve_out = Vec::with_capacity(n_edges);
        let mut ve_in = Vec::with_capacity(n_edges);
        for li in 0..n_edges as u16 {
            let el = LabelId(li);
            let (src_label, dst_label) = view.schema().edge_endpoints(el);
            let m = view.edge_count(el);
            let mut idx = EvIndex {
                src_rid: Vec::with_capacity(m),
                dst_rid: Vec::with_capacity(m),
            };
            let mut out_triples = Vec::with_capacity(m);
            let mut in_triples = Vec::with_capacity(m);
            for e in 0..m as RowId {
                let s = view.resolve_src(el, e)?;
                let t = view.resolve_dst(el, e)?;
                idx.src_rid.push(s);
                idx.dst_rid.push(t);
                out_triples.push((s, e, t));
                in_triples.push((t, e, s));
            }
            ve_out.push(Csr::build(view.vertex_count(src_label), out_triples));
            ve_in.push(Csr::build(view.vertex_count(dst_label), in_triples));
            ev.push(idx);
        }
        Ok(GraphIndex { ev, ve_out, ve_in })
    }

    /// EV-index lookup: source vertex row of edge row `e` (label `el`).
    #[inline]
    pub fn edge_src(&self, el: LabelId, e: RowId) -> RowId {
        self.ev[el.0 as usize].src_rid[e as usize]
    }

    /// EV-index lookup: target vertex row of edge row `e` (label `el`).
    #[inline]
    pub fn edge_dst(&self, el: LabelId, e: RowId) -> RowId {
        self.ev[el.0 as usize].dst_rid[e as usize]
    }

    /// Endpoint of edge `e` in direction `dir` (the vertex reached).
    #[inline]
    pub fn edge_endpoint(&self, el: LabelId, e: RowId, dir: Direction) -> RowId {
        match dir {
            Direction::Out => self.edge_dst(el, e),
            Direction::In => self.edge_src(el, e),
        }
    }

    /// VE-index lookup: `(edges, neighbors)` adjacent to vertex row `v`
    /// through edge label `el` in direction `dir`; sorted by neighbor.
    #[inline]
    pub fn neighbors(&self, el: LabelId, dir: Direction, v: RowId) -> (&[RowId], &[RowId]) {
        match dir {
            Direction::Out => self.ve_out[el.0 as usize].neighbors(v),
            Direction::In => self.ve_in[el.0 as usize].neighbors(v),
        }
    }

    /// Degree of vertex row `v` through `(el, dir)`.
    #[inline]
    pub fn degree(&self, el: LabelId, dir: Direction, v: RowId) -> usize {
        match dir {
            Direction::Out => self.ve_out[el.0 as usize].degree(v),
            Direction::In => self.ve_in[el.0 as usize].degree(v),
        }
    }

    /// Total adjacency entries of `(el, dir)` (= edge count; for tests).
    pub fn adjacency_len(&self, el: LabelId, dir: Direction) -> usize {
        match dir {
            Direction::Out => self.ve_out[el.0 as usize].len(),
            Direction::In => self.ve_in[el.0 as usize].len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::RGMapping;
    use crate::view::GraphView;
    use relgo_common::DataType;
    use relgo_storage::table::table_of;
    use relgo_storage::Database;

    fn setup() -> GraphView {
        let mut db = Database::new();
        db.add_table(table_of(
            "Person",
            &[("person_id", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![1.into(), "Tom".into()],
                vec![2.into(), "Bob".into()],
                vec![3.into(), "David".into()],
            ],
        ));
        db.add_table(table_of(
            "Message",
            &[("message_id", DataType::Int)],
            vec![vec![100.into()], vec![200.into()]],
        ));
        db.add_table(table_of(
            "Likes",
            &[
                ("likes_id", DataType::Int),
                ("pid", DataType::Int),
                ("mid", DataType::Int),
            ],
            vec![
                vec![1.into(), 1.into(), 100.into()],
                vec![2.into(), 2.into(), 100.into()],
                vec![3.into(), 2.into(), 200.into()],
                vec![4.into(), 3.into(), 200.into()],
            ],
        ));
        db.set_primary_key("Person", "person_id").unwrap();
        db.set_primary_key("Message", "message_id").unwrap();
        db.set_primary_key("Likes", "likes_id").unwrap();
        let mapping = RGMapping::new()
            .vertex("Person")
            .vertex("Message")
            .edge("Likes", "pid", "Person", "mid", "Message");
        let mut g = GraphView::build(&mut db, mapping).unwrap();
        g.build_index().unwrap();
        g
    }

    #[test]
    fn ev_index_matches_fig5a() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        // Fig 5(a): likes rows map to (person_rowid, message_rowid)
        // l1→(0,0), l2→(1,0), l3→(1,1), l4→(2,1).
        assert_eq!(idx.edge_src(likes, 0), 0);
        assert_eq!(idx.edge_dst(likes, 0), 0);
        assert_eq!(idx.edge_src(likes, 1), 1);
        assert_eq!(idx.edge_dst(likes, 1), 0);
        assert_eq!(idx.edge_src(likes, 3), 2);
        assert_eq!(idx.edge_dst(likes, 3), 1);
    }

    #[test]
    fn ve_index_matches_fig5b() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        // vp1 → [(l1, vm1)]
        let (es, ns) = idx.neighbors(likes, Direction::Out, 0);
        assert_eq!(es, &[0]);
        assert_eq!(ns, &[0]);
        // vp2 → [(l2, vm1), (l3, vm2)]
        let (es, ns) = idx.neighbors(likes, Direction::Out, 1);
        assert_eq!(es, &[1, 2]);
        assert_eq!(ns, &[0, 1]);
        // vp3 → [(l4, vm2)]
        assert_eq!(idx.degree(likes, Direction::Out, 2), 1);
    }

    #[test]
    fn reverse_direction_adjacency() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        // m1 is liked by p1 and p2.
        let (es, ns) = idx.neighbors(likes, Direction::In, 0);
        assert_eq!(ns, &[0, 1]);
        assert_eq!(es.len(), 2);
        // m2 is liked by p2 and p3.
        let (_, ns) = idx.neighbors(likes, Direction::In, 1);
        assert_eq!(ns, &[1, 2]);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        for v in 0..3 {
            let (_, ns) = idx.neighbors(likes, Direction::Out, v);
            assert!(ns.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn adjacency_totals_equal_edge_count() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        assert_eq!(idx.adjacency_len(likes, Direction::Out), 4);
        assert_eq!(idx.adjacency_len(likes, Direction::In), 4);
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Out.reverse(), Direction::In);
        assert_eq!(Direction::In.reverse(), Direction::Out);
    }

    #[test]
    fn edge_endpoint_by_direction() {
        let g = setup();
        let likes = g.schema().edge_label_id("Likes").unwrap();
        let idx = g.index().unwrap();
        assert_eq!(idx.edge_endpoint(likes, 1, Direction::Out), 0, "→ message");
        assert_eq!(idx.edge_endpoint(likes, 1, Direction::In), 1, "→ person");
    }
}
